/**
 * @file
 * Width-generic vectorized transcendentals.  Every function here is a
 * template over a lane type V satisfying the Vec concept from
 * simd/vec.hh, so one implementation instantiates at width 1 (tail),
 * 2 (NEON), 4 (AVX2) and 8 (AVX-512).  Because every building block
 * (add/mul/fma/sqrt/compare/select) is correctly rounded or exact at
 * every width, the lane results are bit-identical across widths: the
 * Vec1 tail of a batch computes exactly what a vector lane would
 * have, and AVX2/AVX-512/NEON agree with each other.
 *
 * Algorithms:
 *  - vexp:  Cody-Waite range reduction + degree-13 Taylor Horner,
 *    2^k scaling via exponent-bit construction (two-step below the
 *    normal range so subnormal results round only once).
 *  - vlog:  musl/fdlibm e_log.c structure (s = f/(2+f) series).
 *  - verf/verfc: fdlibm s_erf.c rational approximations; the
 *    |x| >= 1.25 erfc branch reuses vexp.
 *  - verfinv: the Giles (2010) polynomial from ar::math::erfInv plus
 *    the same two Newton corrections, built on verf/vexp.
 *  - vpowHalf: hardware sqrt with pow(x, 0.5) special-case blends.
 *
 * These are NOT the correctly-rounded std:: functions; the measured
 * worst-case error vs std:: is bounded by the ULP policy in
 * DESIGN.md section 5.6 and pinned by
 * tests/simd/test_transcendentals.cc.
 */

#ifndef AR_SIMD_MATH_INL_HH
#define AR_SIMD_MATH_INL_HH

#include "simd/vec.hh"

namespace ar::simd::detail
{

/** exp(x) with fdlibm-grade accuracy (<= 2 ULP vs std::exp). */
template <class V>
V
vexp(V x)
{
    const V log2e = V::bcast(1.4426950408889634074);
    const V ln2_hi = V::bcast(6.93147180369123816490e-01);
    const V ln2_lo = V::bcast(1.90821492927058770002e-10);

    // n = round(x / ln2); r = x - n*ln2 in two pieces so r keeps
    // full precision.
    const V n = V::roundNearest(x * log2e);
    V r = V::fma(n, V::bcast(0.0) - ln2_hi, x);
    r = V::fma(n, V::bcast(0.0) - ln2_lo, r);

    // Taylor series for exp(r), |r| <= ln2/2, degree 13 Horner.
    V p = V::bcast(1.0 / 6227020800.0);
    p = V::fma(p, r, V::bcast(1.0 / 479001600.0));
    p = V::fma(p, r, V::bcast(1.0 / 39916800.0));
    p = V::fma(p, r, V::bcast(1.0 / 3628800.0));
    p = V::fma(p, r, V::bcast(1.0 / 362880.0));
    p = V::fma(p, r, V::bcast(1.0 / 40320.0));
    p = V::fma(p, r, V::bcast(1.0 / 5040.0));
    p = V::fma(p, r, V::bcast(1.0 / 720.0));
    p = V::fma(p, r, V::bcast(1.0 / 120.0));
    p = V::fma(p, r, V::bcast(1.0 / 24.0));
    p = V::fma(p, r, V::bcast(1.0 / 6.0));
    p = V::fma(p, r, V::bcast(0.5));
    p = V::fma(p, r, V::bcast(1.0));
    p = V::fma(p, r, V::bcast(1.0));

    // Scale by 2^n.  For n < -1021 the direct construction would be
    // a denormal exponent; split the scaling so the final multiply
    // rounds into the subnormal range exactly once.  For n > 1021
    // (x just under the overflow cutoff can round to n = 1024) the
    // construction would overflow the exponent field even though
    // p * 2^n is finite, so split that side too.
    const V deep = V::cmpLT(n, V::bcast(-1021.0));
    const V high = V::cmpGT(n, V::bcast(1021.0));
    V n_adj = V::select(deep, n + V::bcast(700.0), n);
    n_adj = V::select(high, n - V::bcast(700.0), n_adj);
    const V scale_hi = V::pow2k(n_adj);
    V res = p * scale_hi;
    res = V::select(deep, res * V::bcast(0x1p-700), res);
    res = V::select(high, res * V::bcast(0x1p700), res);

    // Specials: overflow, underflow-to-zero, NaN passthrough.
    res = V::select(V::cmpGT(x, V::bcast(709.7827128933840868)),
                    V::bcast(1.0 / 0.0), res);
    res = V::select(V::cmpLT(x, V::bcast(-745.1332191019412221)),
                    V::bcast(0.0), res);
    res = V::select(V::isNaN(x), x, res);
    return res;
}

/** log(x) following musl e_log.c (<= 2 ULP vs std::log). */
template <class V>
V
vlog(V x)
{
    const V ln2_hi = V::bcast(6.93147180369123816490e-01);
    const V ln2_lo = V::bcast(1.90821492927058770002e-10);

    // Pre-scale subnormals into the normal range; the exponent
    // adjustment folds the 2^54 back out.
    const V tiny = V::cmpLT(x, V::bcast(0x1p-1022));
    const V positive = V::cmpGT(x, V::bcast(0.0));
    const V sub = V::bitAnd(tiny, positive);
    const V xs = V::select(sub, x * V::bcast(0x1p54), x);
    const V e_adj = V::select(sub, V::bcast(-54.0), V::bcast(0.0));

    V e = V::biasedExponent(xs) - V::bcast(1023.0) + e_adj;
    V m = V::mantissaToOne(xs);

    // Normalize m into [sqrt(2)/2, sqrt(2)) so f = m - 1 is small.
    const V hi = V::cmpGE(m, V::bcast(1.41421356237309504880));
    m = V::select(hi, m * V::bcast(0.5), m);
    e = V::select(hi, e + V::bcast(1.0), e);

    const V f = m - V::bcast(1.0);
    const V s = f / (V::bcast(2.0) + f);
    const V z = s * s;
    const V w = z * z;
    const V t1 =
        w * V::fma(w,
                   V::fma(w, V::bcast(1.531383769920937332e-01),
                          V::bcast(2.222219843214978396e-01)),
                   V::bcast(3.999999999940941908e-01));
    const V t2 =
        z * V::fma(w,
                   V::fma(w,
                          V::fma(w, V::bcast(1.479819860511658591e-01),
                                 V::bcast(1.818357216161805012e-01)),
                          V::bcast(2.857142874366239149e-01)),
                   V::bcast(6.666666666666735130e-01));
    const V R = t1 + t2;
    const V hfsq = V::bcast(0.5) * f * f;

    V res = e * ln2_hi -
            ((hfsq - (s * (hfsq + R) + e * ln2_lo)) - f);

    // Specials: log(0) = -inf, log(negative) = NaN, log(inf) = inf,
    // NaN passthrough.
    res = V::select(V::cmpEQ(x, V::bcast(0.0)),
                    V::bcast(-1.0 / 0.0), res);
    res = V::select(V::cmpLT(x, V::bcast(0.0)),
                    V::bcast(0.0 / 0.0), res);
    res = V::select(V::cmpEQ(x, V::bcast(1.0 / 0.0)),
                    V::bcast(1.0 / 0.0), res);
    res = V::select(V::isNaN(x), x, res);
    return res;
}

/**
 * Shared erf/erfc core following fdlibm s_erf.c.  Computes both
 * functions' branch values; callers blend the one they need.
 */
template <class V>
struct ErfParts
{
    V erf;  ///< erf(x), valid everywhere
    V erfc; ///< erfc(x), valid everywhere
};

template <class V>
ErfParts<V>
verfBoth(V x)
{
    const V one = V::bcast(1.0);
    const V two = V::bcast(2.0);
    const V ax = V::abs(x);
    const V sign_mask = V::bitAnd(
        x, V::bcast(detail::fromBits(0x8000000000000000ull)));
    // sign(x) as +-1.0 without branching.
    const V signv =
        V::select(V::cmpLT(x, V::bcast(0.0)), V::bcast(-1.0), one);

    // --- Branch 1: |x| < 0.84375 ------------------------------------
    const V z1 = x * x;
    V r1 = V::fma(z1, V::bcast(-2.37630166566501626084e-05),
                  V::bcast(-5.77027029648944159157e-03));
    r1 = V::fma(z1, r1, V::bcast(-2.84817495755985104766e-02));
    r1 = V::fma(z1, r1, V::bcast(-3.25042107247001499370e-01));
    r1 = V::fma(z1, r1, V::bcast(1.28379167095512558561e-01));
    V s1 = V::fma(z1, V::bcast(-3.96022827877536812320e-06),
                  V::bcast(1.32494738004321644526e-04));
    s1 = V::fma(z1, s1, V::bcast(5.08130628187576562776e-03));
    s1 = V::fma(z1, s1, V::bcast(6.50222499887672944485e-02));
    s1 = V::fma(z1, s1, V::bcast(3.97917223959155352819e-01));
    s1 = V::fma(z1, s1, one);
    const V y1 = r1 / s1;
    const V erf1 = V::fma(x, y1, x);        // x + x*y
    // For x >= 1/4, (x - 1/2) is exact (Sterbenz), so computing
    // 0.5 - ((x - 0.5) + x*y) rounds once where 1 - (x + x*y)
    // would round twice (fdlibm s_erf.c erfc branch 1 split).
    const V half = V::bcast(0.5);
    const V erfc1 =
        V::select(V::cmpLT(x, V::bcast(0.25)), one - erf1,
                  half - ((ax - half) + ax * y1));

    // --- Branch 2: 0.84375 <= |x| < 1.25 ----------------------------
    const V erx = V::bcast(8.45062911510467529297e-01);
    const V s2 = ax - one;
    V P = V::fma(s2, V::bcast(-2.16637559486879084300e-03),
                 V::bcast(3.54783043256182359371e-02));
    P = V::fma(s2, P, V::bcast(-1.10894694282396677476e-01));
    P = V::fma(s2, P, V::bcast(3.18346619901161753674e-01));
    P = V::fma(s2, P, V::bcast(-3.72207876035701323847e-01));
    P = V::fma(s2, P, V::bcast(4.14856118683748331666e-01));
    P = V::fma(s2, P, V::bcast(-2.36211856075265944077e-03));
    V Q = V::fma(s2, V::bcast(1.19844998467991074170e-02),
                 V::bcast(1.36370839120290507362e-02));
    Q = V::fma(s2, Q, V::bcast(1.26171219808761642112e-01));
    Q = V::fma(s2, Q, V::bcast(7.18286544141962662868e-02));
    Q = V::fma(s2, Q, V::bcast(5.40397917702171048937e-01));
    Q = V::fma(s2, Q, V::bcast(1.06420880400844228286e-01));
    Q = V::fma(s2, Q, one);
    const V pq2 = P / Q;
    const V erf2 = signv * (erx + pq2);
    // (1 - erx) is exact (Sterbenz), so the positive-x erfc rounds
    // only once; 1 - (erx + pq2) would round twice and lose ~4 ULP.
    const V erfc2 = V::select(V::cmpLT(x, V::bcast(0.0)),
                              one + (erx + pq2), (one - erx) - pq2);

    // --- Branch 3: |x| >= 1.25 (rational in 1/x^2, exp scaling) -----
    const V ss = one / (ax * ax);
    // Two coefficient sets: [1.25, 1/0.35) uses ra/sa, beyond rb/sb.
    const V far = V::cmpGE(ax, V::bcast(2.85714285714285714286));

    V R3 = V::fma(ss, V::bcast(-9.81432934416914548592e+00),
                  V::bcast(-8.12874355063065934246e+01));
    R3 = V::fma(ss, R3, V::bcast(-1.84605092906711035994e+02));
    R3 = V::fma(ss, R3, V::bcast(-1.62396669462573470355e+02));
    R3 = V::fma(ss, R3, V::bcast(-6.23753324503260060396e+01));
    R3 = V::fma(ss, R3, V::bcast(-1.05586262253232909814e+01));
    R3 = V::fma(ss, R3, V::bcast(-6.93858572707181764372e-01));
    R3 = V::fma(ss, R3, V::bcast(-9.86494403484714822705e-03));
    V S3 = V::fma(ss, V::bcast(-6.04244152148580987438e-02),
                  V::bcast(6.57024977031928170135e+00));
    S3 = V::fma(ss, S3, V::bcast(1.08635005541779435134e+02));
    S3 = V::fma(ss, S3, V::bcast(4.29008140027567833386e+02));
    S3 = V::fma(ss, S3, V::bcast(6.45387271733267880336e+02));
    S3 = V::fma(ss, S3, V::bcast(4.34565877475229228821e+02));
    S3 = V::fma(ss, S3, V::bcast(1.37657754143519042600e+02));
    S3 = V::fma(ss, S3, V::bcast(1.96512716674392571292e+01));
    S3 = V::fma(ss, S3, one);

    V Rb = V::fma(ss, V::bcast(-4.83519191608651397019e+02),
                  V::bcast(-1.02509513161107724954e+03));
    Rb = V::fma(ss, Rb, V::bcast(-6.37566443368389627722e+02));
    Rb = V::fma(ss, Rb, V::bcast(-1.60636384855821916062e+02));
    Rb = V::fma(ss, Rb, V::bcast(-1.77579549177547519889e+01));
    Rb = V::fma(ss, Rb, V::bcast(-7.99283237680523006574e-01));
    Rb = V::fma(ss, Rb, V::bcast(-9.86494292470009928597e-03));
    V Sb = V::fma(ss, V::bcast(-2.24409524465858183362e+01),
                  V::bcast(4.74528541206955367215e+02));
    Sb = V::fma(ss, Sb, V::bcast(2.55305040643316442583e+03));
    Sb = V::fma(ss, Sb, V::bcast(3.19985821950859553908e+03));
    Sb = V::fma(ss, Sb, V::bcast(1.53672958608443695994e+03));
    Sb = V::fma(ss, Sb, V::bcast(3.25792512996573918826e+02));
    Sb = V::fma(ss, Sb, V::bcast(3.03380607434824582924e+01));
    Sb = V::fma(ss, Sb, one);

    const V RS = V::select(far, Rb / Sb, R3 / S3);

    // z = ax with the low 32 mantissa bits cleared so z*z is exact;
    // r = exp(-z*z - 0.5625) * exp((z-ax)*(z+ax) + R/S).
    const V zz = V::clearLow32(ax);
    const V r3 =
        vexp(V::bcast(0.0) - zz * zz - V::bcast(0.5625)) *
        vexp(V::fma(zz - ax, zz + ax, RS));
    const V r_over_x = r3 / ax;

    const V neg = V::cmpLT(x, V::bcast(0.0));
    V erfc3 = V::select(neg, two - r_over_x, r_over_x);
    V erf3 = V::select(neg, r_over_x - one, one - r_over_x);

    // |x| >= 6: erf saturates at +-1; erfc underflows to 0 for
    // x >= 28 (handled by exp underflow) and is 2 - tiny for x <= -6.
    const V sat = V::cmpGE(ax, V::bcast(6.0));
    erf3 = V::select(sat, signv, erf3);
    erfc3 = V::select(V::bitAnd(sat, neg), two, erfc3);
    // x = +inf would reach zz - ax = inf - inf = NaN above.
    erfc3 = V::select(V::cmpGE(x, V::bcast(1.0 / 0.0)), V::bcast(0.0),
                      erfc3);

    // --- Blend branches ---------------------------------------------
    const V in1 = V::cmpLT(ax, V::bcast(0.84375));
    const V in2 = V::cmpLT(ax, V::bcast(1.25));

    V erf = V::select(in1, erf1, V::select(in2, erf2, erf3));
    V erfc = V::select(in1, erfc1, V::select(in2, erfc2, erfc3));

    // NaN passthrough; erf(+-inf) = +-1, erfc(+inf) = 0,
    // erfc(-inf) = 2 fall out of the saturation blend above.
    erf = V::select(V::isNaN(x), x, erf);
    erfc = V::select(V::isNaN(x), x, erfc);
    (void)sign_mask;
    return {erf, erfc};
}

template <class V>
V
verf(V x)
{
    return verfBoth(x).erf;
}

template <class V>
V
verfc(V x)
{
    return verfBoth(x).erfc;
}

/**
 * Inverse error function: Giles (2010) single-precision-style
 * polynomial branches refined by two Newton steps through verf/vexp,
 * mirroring ar::math::erfInv exactly in structure.
 */
template <class V>
V
verfinv(V x)
{
    const V one = V::bcast(1.0);
    V w = V::bcast(0.0) - vlog((one - x) * (one + x));

    // --- Central branch: w < 6.25 -----------------------------------
    const V wc = w - V::bcast(3.125);
    V pc = V::bcast(-3.6444120640178196996e-21);
    pc = V::fma(pc, wc, V::bcast(-1.685059138182016589e-19));
    pc = V::fma(pc, wc, V::bcast(1.2858480715256400167e-18));
    pc = V::fma(pc, wc, V::bcast(1.115787767802518096e-17));
    pc = V::fma(pc, wc, V::bcast(-1.333171662854620906e-16));
    pc = V::fma(pc, wc, V::bcast(2.0972767875968561637e-17));
    pc = V::fma(pc, wc, V::bcast(6.6376381343583238325e-15));
    pc = V::fma(pc, wc, V::bcast(-4.0545662729752068639e-14));
    pc = V::fma(pc, wc, V::bcast(-8.1519341976054721522e-14));
    pc = V::fma(pc, wc, V::bcast(2.6335093153082322977e-12));
    pc = V::fma(pc, wc, V::bcast(-1.2975133253453532498e-11));
    pc = V::fma(pc, wc, V::bcast(-5.4154120542946279317e-11));
    pc = V::fma(pc, wc, V::bcast(1.051212273321532285e-09));
    pc = V::fma(pc, wc, V::bcast(-4.1126339803469836976e-09));
    pc = V::fma(pc, wc, V::bcast(-2.9070369957882005086e-08));
    pc = V::fma(pc, wc, V::bcast(4.2347877827932403518e-07));
    pc = V::fma(pc, wc, V::bcast(-1.3654692000834678645e-06));
    pc = V::fma(pc, wc, V::bcast(-1.3882523362786468719e-05));
    pc = V::fma(pc, wc, V::bcast(0.0001867342080340571352));
    pc = V::fma(pc, wc, V::bcast(-0.00074070253416626697512));
    pc = V::fma(pc, wc, V::bcast(-0.0060336708714301490533));
    pc = V::fma(pc, wc, V::bcast(0.24015818242558961693));
    pc = V::fma(pc, wc, V::bcast(1.6536545626831027356));

    // --- Mid branch: 6.25 <= w < 16 ---------------------------------
    const V wm = V::sqrt(w) - V::bcast(3.25);
    V pm = V::bcast(2.2137376921775787049e-09);
    pm = V::fma(pm, wm, V::bcast(9.0756561938885390979e-08));
    pm = V::fma(pm, wm, V::bcast(-2.7517406297064545428e-07));
    pm = V::fma(pm, wm, V::bcast(1.8239629214389227755e-08));
    pm = V::fma(pm, wm, V::bcast(1.5027403968909827627e-06));
    pm = V::fma(pm, wm, V::bcast(-4.013867526981545969e-06));
    pm = V::fma(pm, wm, V::bcast(2.9234449089955446044e-06));
    pm = V::fma(pm, wm, V::bcast(1.2475304481671778723e-05));
    pm = V::fma(pm, wm, V::bcast(-4.7318229009055733981e-05));
    pm = V::fma(pm, wm, V::bcast(6.8284851459573175448e-05));
    pm = V::fma(pm, wm, V::bcast(2.4031110387097893999e-05));
    pm = V::fma(pm, wm, V::bcast(-0.0003550375203628474796));
    pm = V::fma(pm, wm, V::bcast(0.00095328937973738049703));
    pm = V::fma(pm, wm, V::bcast(-0.0016882755560235047313));
    pm = V::fma(pm, wm, V::bcast(0.0024914420961078508066));
    pm = V::fma(pm, wm, V::bcast(-0.0037512085075692412107));
    pm = V::fma(pm, wm, V::bcast(0.005370914553590063617));
    pm = V::fma(pm, wm, V::bcast(1.0052589676941592334));
    pm = V::fma(pm, wm, V::bcast(3.0838856104922207635));

    // --- Tail branch: w >= 16 ---------------------------------------
    // Guard sqrt(w) against the non-finite w produced by |x| = 1.
    const V wt_in = V::select(V::cmpGE(w, V::bcast(16.0)), w,
                              V::bcast(16.0));
    const V wt = V::sqrt(wt_in) - V::bcast(5.0);
    V pt = V::bcast(-2.7109920616438573243e-11);
    pt = V::fma(pt, wt, V::bcast(-2.5556418169965252055e-10));
    pt = V::fma(pt, wt, V::bcast(1.5076572693500548083e-09));
    pt = V::fma(pt, wt, V::bcast(-3.7894654401267369937e-09));
    pt = V::fma(pt, wt, V::bcast(7.6157012080783393804e-09));
    pt = V::fma(pt, wt, V::bcast(-1.4960026627149240478e-08));
    pt = V::fma(pt, wt, V::bcast(2.9147953450901080826e-08));
    pt = V::fma(pt, wt, V::bcast(-6.7711997758452339498e-08));
    pt = V::fma(pt, wt, V::bcast(2.2900482228026654717e-07));
    pt = V::fma(pt, wt, V::bcast(-9.9298272942317002539e-07));
    pt = V::fma(pt, wt, V::bcast(4.5260625972231537039e-06));
    pt = V::fma(pt, wt, V::bcast(-1.9681778105531670567e-05));
    pt = V::fma(pt, wt, V::bcast(7.5995277030017761139e-05));
    pt = V::fma(pt, wt, V::bcast(-0.00021503011930044477347));
    pt = V::fma(pt, wt, V::bcast(-0.00013871931833623122026));
    pt = V::fma(pt, wt, V::bcast(1.0103004648645343977));
    pt = V::fma(pt, wt, V::bcast(4.8499064014085844221));

    const V central = V::cmpLT(w, V::bcast(6.25));
    const V mid = V::cmpLT(w, V::bcast(16.0));
    V r = V::select(central, pc * x,
                    V::select(mid, pm * x, pt * x));

    // One Halley correction through verf; the 1.128... constant is
    // 2/sqrt(pi).  ar::math::erfInv runs two Newton steps instead;
    // with d/dr erf = (2/sqrt(pi)) exp(-r^2) and second-derivative
    // ratio f''/f' = -2r, one third-order step from the same initial
    // polynomial lands within the same ~1 ULP of the true inverse at
    // half the erf/exp evaluations, so the two implementations agree
    // inside the DESIGN.md 5.6 budget without matching bitwise.
    const V two_over_sqrt_pi = V::bcast(1.1283791670955125739);
    {
        const V err = verf(r) - x;
        const V step =
            err / (two_over_sqrt_pi * vexp(V::bcast(0.0) - r * r));
        r = r - step * V::fma(r, step, one);
    }

    // Specials: erfinv(+-1) = +-inf, |x| > 1 = NaN, NaN passthrough.
    r = V::select(V::cmpEQ(x, one), V::bcast(1.0 / 0.0), r);
    r = V::select(V::cmpEQ(x, V::bcast(-1.0)),
                  V::bcast(-1.0 / 0.0), r);
    r = V::select(V::cmpGT(V::abs(x), one), V::bcast(0.0 / 0.0), r);
    r = V::select(V::isNaN(x), x, r);
    return r;
}

/**
 * pow(x, 0.5) per IEEE pow semantics: sqrt(x) except
 * pow(-0.0, 0.5) = +0 and pow(-inf, 0.5) = +inf (sqrt would return
 * -0.0 and NaN respectively).
 */
template <class V>
V
vpowHalf(V x)
{
    V res = V::sqrt(x);
    res = V::select(V::cmpEQ(x, V::bcast(0.0)), V::bcast(0.0), res);
    res = V::select(V::cmpEQ(x, V::bcast(-1.0 / 0.0)),
                    V::bcast(1.0 / 0.0), res);
    return res;
}

} // namespace ar::simd::detail

#endif // AR_SIMD_MATH_INL_HH
