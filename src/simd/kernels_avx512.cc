/**
 * @file
 * AVX-512F kernel table.  This TU (alone) is compiled with
 * -mavx512f (and -ffp-contract=off like all kernel TUs); nothing
 * here may be called unless runtime dispatch confirmed AVX-512F
 * support.  Only foundation (F) intrinsics are used, so the table
 * works on every AVX-512 part including Knights Landing.
 */

#include "simd/kernels_impl.hh"

namespace ar::simd
{

const KernelTable &
kernelsAvx512()
{
    static const KernelTable t =
        detail::makeVectorTable<detail::Vec8>("avx512");
    return t;
}

} // namespace ar::simd
