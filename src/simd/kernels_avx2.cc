/**
 * @file
 * AVX2 + FMA kernel table.  This TU (alone) is compiled with
 * -mavx2 -mfma (and -ffp-contract=off like all kernel TUs); nothing
 * here may be called unless runtime dispatch confirmed AVX2 support.
 */

#include "simd/kernels_impl.hh"

namespace ar::simd
{

const KernelTable &
kernelsAvx2()
{
    static const KernelTable t =
        detail::makeVectorTable<detail::Vec4>("avx2");
    return t;
}

} // namespace ar::simd
