/**
 * @file
 * Width-generic kernel bodies.  Included ONLY by the per-ISA kernel
 * translation units (kernels_avx2.cc, kernels_avx512.cc,
 * kernels_neon.cc), each of which is compiled with its own -m flags
 * plus -ffp-contract=off, and instantiates makeVectorTable<V> for
 * its lane type.
 *
 * Every kernel runs a full-width main loop followed by a Vec1 tail
 * that instantiates the SAME generic template, so tail lanes compute
 * bit-identically to vector lanes (Vec1 uses std::fma and scalar
 * IEEE ops; contraction is disabled so the compiler cannot fuse what
 * the intrinsics would not fuse).  Consequently results do not
 * depend on where the vector/tail boundary falls, and all vector
 * widths agree bit-for-bit.
 */

#ifndef AR_SIMD_KERNELS_IMPL_HH
#define AR_SIMD_KERNELS_IMPL_HH

#include <cmath>
#include <cstddef>

#include "simd/kernels.hh"
#include "simd/math_inl.hh"
#include "simd/vec.hh"

namespace ar::simd::detail
{

template <class V, class F>
inline void
unaryLoop(const double *a, double *dst, std::size_t n, F f)
{
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth)
        f(V::load(a + i)).store(dst + i);
    for (; i < n; ++i)
        f(Vec1::load(a + i)).store(dst + i);
}

template <class V, class F>
inline void
binaryLoop(const double *a, const double *b, double *dst,
           std::size_t n, F f)
{
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth)
        f(V::load(a + i), V::load(b + i)).store(dst + i);
    for (; i < n; ++i)
        f(Vec1::load(a + i), Vec1::load(b + i)).store(dst + i);
}

template <class V>
void
addK(const double *a, const double *b, double *dst, std::size_t n)
{
    binaryLoop<V>(a, b, dst, n,
                  [](auto x, auto y) { return x + y; });
}

template <class V>
void
mulK(const double *a, const double *b, double *dst, std::size_t n)
{
    binaryLoop<V>(a, b, dst, n,
                  [](auto x, auto y) { return x * y; });
}

/** Per-lane std::pow at every level: general pow stays exact. */
template <class V>
void
powK(const double *a, const double *b, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::pow(a[i], b[i]);
}

template <class V>
void
maxK(const double *a, const double *b, double *dst, std::size_t n)
{
    binaryLoop<V>(a, b, dst, n, [](auto x, auto y) {
        using T = decltype(x);
        return T::max(x, y);
    });
}

template <class V>
void
minK(const double *a, const double *b, double *dst, std::size_t n)
{
    binaryLoop<V>(a, b, dst, n, [](auto x, auto y) {
        using T = decltype(x);
        return T::min(x, y);
    });
}

template <class V>
void
sqK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) { return x * x; });
}

template <class V>
void
recipK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) {
        using T = decltype(x);
        return T::bcast(1.0) / x;
    });
}

template <class V>
void
gtzK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) {
        using T = decltype(x);
        return T::select(T::cmpGT(x, T::bcast(0.0)), T::bcast(1.0),
                         T::bcast(0.0));
    });
}

template <class V>
void
powHalfK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) { return vpowHalf(x); });
}

template <class V>
void
logK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) { return vlog(x); });
}

template <class V>
void
expK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) { return vexp(x); });
}

template <class V>
void
sqrtK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) {
        using T = decltype(x);
        return T::sqrt(x);
    });
}

template <class V>
void
erfK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) { return verf(x); });
}

template <class V>
void
erfcK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) { return verfc(x); });
}

template <class V>
void
erfinvK(const double *a, double *dst, std::size_t n)
{
    unaryLoop<V>(a, dst, n, [](auto x) { return verfinv(x); });
}

/**
 * mu + sigma * Phi^-1(u) with the propagator's (1e-15, 1 - 1e-15)
 * clamp; Phi^-1(u) = sqrt(2) * erfinv(2u - 1).
 */
template <class V>
inline V
normalQuantileLane(V u, V mu, V sigma)
{
    const V p = V::min(V::max(u, V::bcast(1e-15)),
                       V::bcast(1.0 - 1e-15));
    const V z = V::bcast(1.4142135623730950488) *
                verfinv(V::bcast(2.0) * p - V::bcast(1.0));
    return V::fma(sigma, z, mu);
}

template <class V>
void
normalQuantileK(const double *u, double *dst, std::size_t n,
                double mu, double sigma)
{
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth)
        normalQuantileLane(V::load(u + i), V::bcast(mu),
                           V::bcast(sigma))
            .store(dst + i);
    for (; i < n; ++i)
        normalQuantileLane(Vec1::load(u + i), Vec1::bcast(mu),
                           Vec1::bcast(sigma))
            .store(dst + i);
}

template <class V>
void
lognormalQuantileK(const double *u, double *dst, std::size_t n,
                   double mu, double sigma)
{
    std::size_t i = 0;
    for (; i + V::kWidth <= n; i += V::kWidth)
        vexp(normalQuantileLane(V::load(u + i), V::bcast(mu),
                                V::bcast(sigma)))
            .store(dst + i);
    for (; i < n; ++i)
        vexp(normalQuantileLane(Vec1::load(u + i), Vec1::bcast(mu),
                                Vec1::bcast(sigma)))
            .store(dst + i);
}

template <class V>
KernelTable
makeVectorTable(const char *name)
{
    KernelTable t;
    t.name = name;
    t.width = V::kWidth;
    t.add = &addK<V>;
    t.mul = &mulK<V>;
    t.pow = &powK<V>;
    t.max = &maxK<V>;
    t.min = &minK<V>;
    t.sq = &sqK<V>;
    t.recip = &recipK<V>;
    t.gtz = &gtzK<V>;
    t.pow_half = &powHalfK<V>;
    t.log = &logK<V>;
    t.exp = &expK<V>;
    t.sqrt = &sqrtK<V>;
    t.erf = &erfK<V>;
    t.erfc = &erfcK<V>;
    t.erfinv = &erfinvK<V>;
    t.normal_quantile = &normalQuantileK<V>;
    t.lognormal_quantile = &lognormalQuantileK<V>;
    return t;
}

} // namespace ar::simd::detail

#endif // AR_SIMD_KERNELS_IMPL_HH
