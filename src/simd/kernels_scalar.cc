/**
 * @file
 * Scalar reference kernel table.  These are the exact loops the tape
 * interpreters ran before the SIMD layer existed (plain std:: calls,
 * no polynomial approximations), so Level::Scalar reproduces the
 * pre-SIMD results bit-for-bit — that equivalence is pinned by the
 * original golden_outputs.txt and by the AR_SIMD=scalar CI job.
 */

#include "simd/kernels.hh"

#include <cmath>
#include <limits>

#include "math/numeric.hh"
#include "math/special.hh"

namespace ar::simd
{

namespace
{

void
addS(const double *a, const double *b, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] + b[i];
}

void
mulS(const double *a, const double *b, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] * b[i];
}

void
powS(const double *a, const double *b, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::pow(a[i], b[i]);
}

void
maxS(const double *a, const double *b, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::max(a[i], b[i]);
}

void
minS(const double *a, const double *b, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::min(a[i], b[i]);
}

void
sqS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] * a[i];
}

void
recipS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = 1.0 / a[i];
}

void
gtzS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] > 0.0 ? 1.0 : 0.0;
}

void
powHalfS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::pow(a[i], 0.5);
}

void
logS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::log(a[i]);
}

void
expS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::exp(a[i]);
}

void
sqrtS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::sqrt(a[i]);
}

void
erfS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::erf(a[i]);
}

void
erfcS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::erfc(a[i]);
}

void
erfinvS(const double *a, double *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        // ar::math::erfInv fatals outside [-1, 1]; a kernel must
        // yield NaN instead (matching the vector backends).
        if (a[i] < -1.0 || a[i] > 1.0)
            dst[i] = std::numeric_limits<double>::quiet_NaN();
        else
            dst[i] = ar::math::erfInv(a[i]);
    }
}

void
normalQuantileS(const double *u, double *dst, std::size_t n,
                double mu, double sigma)
{
    // Must match Normal::sampleFromUniform's scalar path exactly.
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = mu + sigma * ar::math::normalQuantile(
                                  ar::math::clamp(u[i], 1e-15,
                                                  1.0 - 1e-15));
}

void
lognormalQuantileS(const double *u, double *dst, std::size_t n,
                   double mu, double sigma)
{
    // Must match LogNormal::quantile's scalar path exactly.
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = std::exp(
            mu + sigma * ar::math::normalQuantile(
                             ar::math::clamp(u[i], 1e-15,
                                             1.0 - 1e-15)));
}

} // namespace

const KernelTable &
kernelsScalar()
{
    static const KernelTable t = [] {
        KernelTable k;
        k.name = "scalar";
        k.width = 1;
        k.add = &addS;
        k.mul = &mulS;
        k.pow = &powS;
        k.max = &maxS;
        k.min = &minS;
        k.sq = &sqS;
        k.recip = &recipS;
        k.gtz = &gtzS;
        k.pow_half = &powHalfS;
        k.log = &logS;
        k.exp = &expS;
        k.sqrt = &sqrtS;
        k.erf = &erfS;
        k.erfc = &erfcS;
        k.erfinv = &erfinvS;
        k.normal_quantile = &normalQuantileS;
        k.lognormal_quantile = &lognormalQuantileS;
        return k;
    }();
    return t;
}

} // namespace ar::simd
