/**
 * @file
 * ARMv8 NEON (AdvSIMD) kernel table.  Compiled only on aarch64,
 * where NEON is architecturally guaranteed; no extra -m flags are
 * needed (but -ffp-contract=off still applies, like all kernel TUs).
 */

#include "simd/kernels_impl.hh"

namespace ar::simd
{

const KernelTable &
kernelsNeon()
{
    static const KernelTable t =
        detail::makeVectorTable<detail::Vec2>("neon");
    return t;
}

} // namespace ar::simd
