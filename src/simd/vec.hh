/**
 * @file
 * Fixed-width SIMD lane wrappers over double.  Each wrapper exposes
 * the same static interface (the "Vec concept" consumed by
 * simd/math_inl.hh), so one set of polynomial kernels instantiates at
 * every lane width:
 *
 *  - Vec1: one lane, plain scalar code.  Always available; it is the
 *    tail type of every vector backend, and the ops below are chosen
 *    so a Vec1 lane computes bit-identically to the same lane of a
 *    wide vector (std::fma is correctly rounded like vfmadd, bitwise
 *    select mirrors blendv, and so on).
 *  - Vec4: __m256d, compiled only into the AVX2 kernel TU.
 *  - Vec8: __m512d, compiled only into the AVX-512 kernel TU.
 *  - Vec2: float64x2_t, compiled only into the NEON kernel TU.
 *
 * Semantics contracts shared by all widths (the cross-width
 * bit-identity of golden_outputs_simd.txt rests on these):
 *
 *  - max/min follow std::max/std::min exactly: max(a, b) returns b
 *    only when a < b, so a NaN or matching-magnitude zero in `a` wins.
 *    On x86 this is _mm*_max_pd with SWAPPED operands (maxpd returns
 *    its second operand on NaN/equal); NEON and Vec1 use an explicit
 *    compare + select.
 *  - Comparisons are ordered and quiet (NaN compares false) and
 *    return an all-ones/all-zeros double mask.
 *  - roundNearest rounds half to even (the default FP environment).
 *  - pow2k(k) builds 2^k from exponent bits for integer-valued k in
 *    [-1022, 1023]; exact at every width.
 *
 * The kernel TUs that include this header are compiled with
 * -ffp-contract=off so the compiler cannot fuse Vec1's separate
 * multiply and add into an FMA the intrinsic lanes would not have
 * performed.
 */

#ifndef AR_SIMD_VEC_HH
#define AR_SIMD_VEC_HH

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(AR_SIMD_BUILD_AVX2) || defined(AR_SIMD_BUILD_AVX512)
#include <immintrin.h>
#endif
#if defined(AR_SIMD_BUILD_NEON)
#include <arm_neon.h>
#endif

namespace ar::simd::detail
{

inline std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

inline double
fromBits(std::uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof v);
    return v;
}

/** One scalar lane.  Reference semantics for every vector backend. */
struct Vec1
{
    double v;

    static constexpr std::size_t kWidth = 1;

    static Vec1 load(const double *p) { return {*p}; }
    static Vec1 bcast(double x) { return {x}; }
    void store(double *p) const { *p = v; }

    friend Vec1 operator+(Vec1 a, Vec1 b) { return {a.v + b.v}; }
    friend Vec1 operator-(Vec1 a, Vec1 b) { return {a.v - b.v}; }
    friend Vec1 operator*(Vec1 a, Vec1 b) { return {a.v * b.v}; }
    friend Vec1 operator/(Vec1 a, Vec1 b) { return {a.v / b.v}; }

    static Vec1 fma(Vec1 a, Vec1 b, Vec1 c)
    {
        return {std::fma(a.v, b.v, c.v)};
    }

    static Vec1 max(Vec1 a, Vec1 b) { return {a.v < b.v ? b.v : a.v}; }
    static Vec1 min(Vec1 a, Vec1 b) { return {b.v < a.v ? b.v : a.v}; }
    static Vec1 sqrt(Vec1 a) { return {std::sqrt(a.v)}; }
    static Vec1 abs(Vec1 a) { return {fromBits(bitsOf(a.v) & ~(1ull << 63))}; }
    static Vec1 roundNearest(Vec1 a) { return {std::nearbyint(a.v)}; }

    static Vec1 maskAll() { return {fromBits(~0ull)}; }
    static Vec1 cmpLT(Vec1 a, Vec1 b) { return {fromBits(a.v < b.v ? ~0ull : 0)}; }
    static Vec1 cmpLE(Vec1 a, Vec1 b) { return {fromBits(a.v <= b.v ? ~0ull : 0)}; }
    static Vec1 cmpGT(Vec1 a, Vec1 b) { return {fromBits(a.v > b.v ? ~0ull : 0)}; }
    static Vec1 cmpGE(Vec1 a, Vec1 b) { return {fromBits(a.v >= b.v ? ~0ull : 0)}; }
    static Vec1 cmpEQ(Vec1 a, Vec1 b) { return {fromBits(a.v == b.v ? ~0ull : 0)}; }
    static Vec1 isNaN(Vec1 a) { return {fromBits(a.v != a.v ? ~0ull : 0)}; }

    /** mask ? a : b, bitwise per lane (mask lanes are all-ones/zeros). */
    static Vec1 select(Vec1 mask, Vec1 a, Vec1 b)
    {
        const std::uint64_t m = bitsOf(mask.v);
        return {fromBits((bitsOf(a.v) & m) | (bitsOf(b.v) & ~m))};
    }

    static Vec1 bitAnd(Vec1 a, Vec1 b)
    {
        return {fromBits(bitsOf(a.v) & bitsOf(b.v))};
    }

    static bool anyTrue(Vec1 mask) { return bitsOf(mask.v) != 0; }

    /** Biased exponent field as a double: (bits >> 52) & 0x7ff. */
    static Vec1 biasedExponent(Vec1 a)
    {
        return {static_cast<double>((bitsOf(a.v) >> 52) & 0x7ff)};
    }

    /** Replace the exponent so the mantissa lands in [1, 2). */
    static Vec1 mantissaToOne(Vec1 a)
    {
        return {fromBits((bitsOf(a.v) & 0x000fffffffffffffull) |
                         0x3ff0000000000000ull)};
    }

    /** 2^k for integer-valued k in [-1022, 1023]. */
    static Vec1 pow2k(Vec1 k)
    {
        const auto i = static_cast<std::int64_t>(k.v);
        return {fromBits(static_cast<std::uint64_t>(i + 1023) << 52)};
    }

    /** Zero the low 32 mantissa bits (fdlibm's erfc splitting). */
    static Vec1 clearLow32(Vec1 a)
    {
        return {fromBits(bitsOf(a.v) & 0xffffffff00000000ull)};
    }
};

#if defined(AR_SIMD_BUILD_AVX2)

/** Four lanes: AVX2 + FMA. */
struct Vec4
{
    __m256d v;

    static constexpr std::size_t kWidth = 4;

    static Vec4 load(const double *p) { return {_mm256_loadu_pd(p)}; }
    static Vec4 bcast(double x) { return {_mm256_set1_pd(x)}; }
    void store(double *p) const { _mm256_storeu_pd(p, v); }

    friend Vec4 operator+(Vec4 a, Vec4 b) { return {_mm256_add_pd(a.v, b.v)}; }
    friend Vec4 operator-(Vec4 a, Vec4 b) { return {_mm256_sub_pd(a.v, b.v)}; }
    friend Vec4 operator*(Vec4 a, Vec4 b) { return {_mm256_mul_pd(a.v, b.v)}; }
    friend Vec4 operator/(Vec4 a, Vec4 b) { return {_mm256_div_pd(a.v, b.v)}; }

    static Vec4 fma(Vec4 a, Vec4 b, Vec4 c)
    {
        return {_mm256_fmadd_pd(a.v, b.v, c.v)};
    }

    // maxpd/minpd return their SECOND operand on NaN or equal values;
    // swapping the operands reproduces std::max/std::min exactly.
    static Vec4 max(Vec4 a, Vec4 b) { return {_mm256_max_pd(b.v, a.v)}; }
    static Vec4 min(Vec4 a, Vec4 b) { return {_mm256_min_pd(b.v, a.v)}; }
    static Vec4 sqrt(Vec4 a) { return {_mm256_sqrt_pd(a.v)}; }
    static Vec4 abs(Vec4 a)
    {
        return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
    }
    static Vec4 roundNearest(Vec4 a)
    {
        return {_mm256_round_pd(
            a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
    }

    static Vec4 cmpLT(Vec4 a, Vec4 b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)}; }
    static Vec4 cmpLE(Vec4 a, Vec4 b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)}; }
    static Vec4 cmpGT(Vec4 a, Vec4 b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)}; }
    static Vec4 cmpGE(Vec4 a, Vec4 b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)}; }
    static Vec4 cmpEQ(Vec4 a, Vec4 b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)}; }
    static Vec4 isNaN(Vec4 a) { return {_mm256_cmp_pd(a.v, a.v, _CMP_UNORD_Q)}; }

    static Vec4 select(Vec4 mask, Vec4 a, Vec4 b)
    {
        return {_mm256_blendv_pd(b.v, a.v, mask.v)};
    }

    static Vec4 bitAnd(Vec4 a, Vec4 b) { return {_mm256_and_pd(a.v, b.v)}; }

    static bool anyTrue(Vec4 mask)
    {
        return _mm256_movemask_pd(mask.v) != 0;
    }

    static Vec4 biasedExponent(Vec4 a)
    {
        const __m256i e = _mm256_srli_epi64(_mm256_castpd_si256(a.v), 52);
        const __m256i masked =
            _mm256_and_si256(e, _mm256_set1_epi64x(0x7ff));
        // Exact int -> double for 0 <= v < 2^52: set the 2^52
        // exponent onto the integer bits and subtract 2^52.
        const __m256d biased = _mm256_castsi256_pd(_mm256_or_si256(
            masked, _mm256_set1_epi64x(0x4330000000000000ll)));
        return {_mm256_sub_pd(biased, _mm256_set1_pd(0x1p52))};
    }

    static Vec4 mantissaToOne(Vec4 a)
    {
        const __m256i m = _mm256_and_si256(
            _mm256_castpd_si256(a.v),
            _mm256_set1_epi64x(0x000fffffffffffffll));
        return {_mm256_castsi256_pd(_mm256_or_si256(
            m, _mm256_set1_epi64x(0x3ff0000000000000ll)))};
    }

    static Vec4 pow2k(Vec4 k)
    {
        // Round-trip double -> int64 via the 1.5 * 2^52 magic-number
        // trick (valid for |k| < 2^51, far beyond the exponent range).
        const __m256d magic = _mm256_set1_pd(0x1.8p52);
        const __m256i ik = _mm256_sub_epi64(
            _mm256_castpd_si256(_mm256_add_pd(k.v, magic)),
            _mm256_castpd_si256(magic));
        const __m256i bits = _mm256_slli_epi64(
            _mm256_add_epi64(ik, _mm256_set1_epi64x(1023)), 52);
        return {_mm256_castsi256_pd(bits)};
    }

    static Vec4 clearLow32(Vec4 a)
    {
        return {_mm256_castsi256_pd(_mm256_and_si256(
            _mm256_castpd_si256(a.v),
            _mm256_set1_epi64x(
                static_cast<long long>(0xffffffff00000000ull))))};
    }
};

#endif // AR_SIMD_BUILD_AVX2

#if defined(AR_SIMD_BUILD_AVX512)

/** Eight lanes: AVX-512F. */
struct Vec8
{
    __m512d v;

    static constexpr std::size_t kWidth = 8;

    static Vec8 load(const double *p) { return {_mm512_loadu_pd(p)}; }
    static Vec8 bcast(double x) { return {_mm512_set1_pd(x)}; }
    void store(double *p) const { _mm512_storeu_pd(p, v); }

    friend Vec8 operator+(Vec8 a, Vec8 b) { return {_mm512_add_pd(a.v, b.v)}; }
    friend Vec8 operator-(Vec8 a, Vec8 b) { return {_mm512_sub_pd(a.v, b.v)}; }
    friend Vec8 operator*(Vec8 a, Vec8 b) { return {_mm512_mul_pd(a.v, b.v)}; }
    friend Vec8 operator/(Vec8 a, Vec8 b) { return {_mm512_div_pd(a.v, b.v)}; }

    static Vec8 fma(Vec8 a, Vec8 b, Vec8 c)
    {
        return {_mm512_fmadd_pd(a.v, b.v, c.v)};
    }

    static Vec8 max(Vec8 a, Vec8 b) { return {_mm512_max_pd(b.v, a.v)}; }
    static Vec8 min(Vec8 a, Vec8 b) { return {_mm512_min_pd(b.v, a.v)}; }
    static Vec8 sqrt(Vec8 a) { return {_mm512_sqrt_pd(a.v)}; }
    static Vec8 abs(Vec8 a) { return {_mm512_abs_pd(a.v)}; }
    static Vec8 roundNearest(Vec8 a)
    {
        return {_mm512_roundscale_pd(
            a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)};
    }

    static Vec8 maskFrom(__mmask8 m)
    {
        return {_mm512_castsi512_pd(
            _mm512_maskz_set1_epi64(m, -1ll))};
    }
    static Vec8 cmpLT(Vec8 a, Vec8 b)
    {
        return maskFrom(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ));
    }
    static Vec8 cmpLE(Vec8 a, Vec8 b)
    {
        return maskFrom(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ));
    }
    static Vec8 cmpGT(Vec8 a, Vec8 b)
    {
        return maskFrom(_mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ));
    }
    static Vec8 cmpGE(Vec8 a, Vec8 b)
    {
        return maskFrom(_mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ));
    }
    static Vec8 cmpEQ(Vec8 a, Vec8 b)
    {
        return maskFrom(_mm512_cmp_pd_mask(a.v, b.v, _CMP_EQ_OQ));
    }
    static Vec8 isNaN(Vec8 a)
    {
        return maskFrom(_mm512_cmp_pd_mask(a.v, a.v, _CMP_UNORD_Q));
    }

    static Vec8 select(Vec8 mask, Vec8 a, Vec8 b)
    {
        const __m512i m = _mm512_castpd_si512(mask.v);
        return {_mm512_castsi512_pd(_mm512_or_si512(
            _mm512_and_si512(m, _mm512_castpd_si512(a.v)),
            _mm512_andnot_si512(m, _mm512_castpd_si512(b.v))))};
    }

    static Vec8 bitAnd(Vec8 a, Vec8 b)
    {
        return {_mm512_castsi512_pd(
            _mm512_and_si512(_mm512_castpd_si512(a.v),
                             _mm512_castpd_si512(b.v)))};
    }

    static bool anyTrue(Vec8 mask)
    {
        return _mm512_cmpneq_epi64_mask(_mm512_castpd_si512(mask.v),
                                        _mm512_setzero_si512()) != 0;
    }

    static Vec8 biasedExponent(Vec8 a)
    {
        const __m512i e = _mm512_srli_epi64(_mm512_castpd_si512(a.v), 52);
        const __m512i masked =
            _mm512_and_si512(e, _mm512_set1_epi64(0x7ff));
        const __m512d biased = _mm512_castsi512_pd(_mm512_or_si512(
            masked, _mm512_set1_epi64(0x4330000000000000ll)));
        return {_mm512_sub_pd(biased, _mm512_set1_pd(0x1p52))};
    }

    static Vec8 mantissaToOne(Vec8 a)
    {
        const __m512i m = _mm512_and_si512(
            _mm512_castpd_si512(a.v),
            _mm512_set1_epi64(0x000fffffffffffffll));
        return {_mm512_castsi512_pd(_mm512_or_si512(
            m, _mm512_set1_epi64(0x3ff0000000000000ll)))};
    }

    static Vec8 pow2k(Vec8 k)
    {
        const __m512d magic = _mm512_set1_pd(0x1.8p52);
        const __m512i ik = _mm512_sub_epi64(
            _mm512_castpd_si512(_mm512_add_pd(k.v, magic)),
            _mm512_castpd_si512(magic));
        const __m512i bits = _mm512_slli_epi64(
            _mm512_add_epi64(ik, _mm512_set1_epi64(1023)), 52);
        return {_mm512_castsi512_pd(bits)};
    }

    static Vec8 clearLow32(Vec8 a)
    {
        return {_mm512_castsi512_pd(_mm512_and_si512(
            _mm512_castpd_si512(a.v),
            _mm512_set1_epi64(
                static_cast<long long>(0xffffffff00000000ull))))};
    }
};

#endif // AR_SIMD_BUILD_AVX512

#if defined(AR_SIMD_BUILD_NEON)

/** Two lanes: ARMv8 NEON (AdvSIMD). */
struct Vec2
{
    float64x2_t v;

    static constexpr std::size_t kWidth = 2;

    static Vec2 load(const double *p) { return {vld1q_f64(p)}; }
    static Vec2 bcast(double x) { return {vdupq_n_f64(x)}; }
    void store(double *p) const { vst1q_f64(p, v); }

    friend Vec2 operator+(Vec2 a, Vec2 b) { return {vaddq_f64(a.v, b.v)}; }
    friend Vec2 operator-(Vec2 a, Vec2 b) { return {vsubq_f64(a.v, b.v)}; }
    friend Vec2 operator*(Vec2 a, Vec2 b) { return {vmulq_f64(a.v, b.v)}; }
    friend Vec2 operator/(Vec2 a, Vec2 b) { return {vdivq_f64(a.v, b.v)}; }

    static Vec2 fma(Vec2 a, Vec2 b, Vec2 c)
    {
        return {vfmaq_f64(c.v, a.v, b.v)};
    }

    // vmaxq propagates NaN from either operand, unlike std::max; use
    // the explicit compare + select formulation instead.
    static Vec2 max(Vec2 a, Vec2 b)
    {
        return {vbslq_f64(vcltq_f64(a.v, b.v), b.v, a.v)};
    }
    static Vec2 min(Vec2 a, Vec2 b)
    {
        return {vbslq_f64(vcltq_f64(b.v, a.v), b.v, a.v)};
    }
    static Vec2 sqrt(Vec2 a) { return {vsqrtq_f64(a.v)}; }
    static Vec2 abs(Vec2 a) { return {vabsq_f64(a.v)}; }
    static Vec2 roundNearest(Vec2 a) { return {vrndnq_f64(a.v)}; }

    static Vec2 maskFrom(uint64x2_t m)
    {
        return {vreinterpretq_f64_u64(m)};
    }
    static Vec2 cmpLT(Vec2 a, Vec2 b) { return maskFrom(vcltq_f64(a.v, b.v)); }
    static Vec2 cmpLE(Vec2 a, Vec2 b) { return maskFrom(vcleq_f64(a.v, b.v)); }
    static Vec2 cmpGT(Vec2 a, Vec2 b) { return maskFrom(vcgtq_f64(a.v, b.v)); }
    static Vec2 cmpGE(Vec2 a, Vec2 b) { return maskFrom(vcgeq_f64(a.v, b.v)); }
    static Vec2 cmpEQ(Vec2 a, Vec2 b) { return maskFrom(vceqq_f64(a.v, b.v)); }
    static Vec2 isNaN(Vec2 a)
    {
        // NaN is the only value not equal to itself.
        return maskFrom(vmvnq_u32_as_u64(vceqq_f64(a.v, a.v)));
    }
    static uint64x2_t vmvnq_u32_as_u64(uint64x2_t m)
    {
        return vreinterpretq_u64_u32(
            vmvnq_u32(vreinterpretq_u32_u64(m)));
    }

    static Vec2 select(Vec2 mask, Vec2 a, Vec2 b)
    {
        return {vbslq_f64(vreinterpretq_u64_f64(mask.v), a.v, b.v)};
    }

    static Vec2 bitAnd(Vec2 a, Vec2 b)
    {
        return {vreinterpretq_f64_u64(
            vandq_u64(vreinterpretq_u64_f64(a.v),
                      vreinterpretq_u64_f64(b.v)))};
    }

    static bool anyTrue(Vec2 mask)
    {
        const uint64x2_t m = vreinterpretq_u64_f64(mask.v);
        return (vgetq_lane_u64(m, 0) | vgetq_lane_u64(m, 1)) != 0;
    }

    static Vec2 biasedExponent(Vec2 a)
    {
        const uint64x2_t e = vandq_u64(
            vshrq_n_u64(vreinterpretq_u64_f64(a.v), 52),
            vdupq_n_u64(0x7ff));
        return {vcvtq_f64_u64(e)};
    }

    static Vec2 mantissaToOne(Vec2 a)
    {
        const uint64x2_t m = vorrq_u64(
            vandq_u64(vreinterpretq_u64_f64(a.v),
                      vdupq_n_u64(0x000fffffffffffffull)),
            vdupq_n_u64(0x3ff0000000000000ull));
        return {vreinterpretq_f64_u64(m)};
    }

    static Vec2 pow2k(Vec2 k)
    {
        const int64x2_t ik = vcvtnq_s64_f64(k.v);
        const uint64x2_t bits = vshlq_n_u64(
            vreinterpretq_u64_s64(
                vaddq_s64(ik, vdupq_n_s64(1023))),
            52);
        return {vreinterpretq_f64_u64(bits)};
    }

    static Vec2 clearLow32(Vec2 a)
    {
        return {vreinterpretq_f64_u64(
            vandq_u64(vreinterpretq_u64_f64(a.v),
                      vdupq_n_u64(0xffffffff00000000ull)))};
    }
};

#endif // AR_SIMD_BUILD_NEON

} // namespace ar::simd::detail

#endif // AR_SIMD_VEC_HH
