/**
 * @file
 * Runtime SIMD dispatch.  The process picks one dispatch level at
 * startup — the widest ISA the CPU supports among the backends this
 * binary was built with — and every batch kernel call goes through
 * the KernelTable for that level.
 *
 * Selection order (first match wins):
 *  1. The AR_SIMD environment variable ("scalar", "neon", "avx2",
 *     "avx512"), read once on first use.  Requesting a level the
 *     host or build cannot provide logs a warning and falls back to
 *     auto-detection; an unrecognized value does the same.
 *  2. CPU feature detection (__builtin_cpu_supports on x86-64; NEON
 *     is architecturally guaranteed on aarch64).
 *
 * setActiveLevel()/ScopedLevel exist so tests and benchmarks can
 * pin a level mid-process; they accept only levels reported by
 * availableLevels().
 *
 * Determinism: at a fixed dispatch level, results are bit-identical
 * across runs and thread counts.  All vector levels produce
 * bit-identical results to each other (tails run one-lane versions
 * of the same generic kernels); Level::Scalar is the pre-SIMD
 * std::-exact path and may differ from the vector levels within the
 * ULP policy of DESIGN.md section 5.6.
 */

#ifndef AR_SIMD_DISPATCH_HH
#define AR_SIMD_DISPATCH_HH

#include <cstdint>
#include <vector>

#include "simd/kernels.hh"

namespace ar::simd
{

/** Dispatch levels, ordered by preference (higher = wider). */
enum class Level : int
{
    Scalar = 0,
    Neon = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/** @return lowercase name ("scalar", "neon", "avx2", "avx512"). */
const char *levelName(Level level);

/**
 * @return every level this binary can run on this host, ascending;
 * always contains Level::Scalar.
 */
std::vector<Level> availableLevels();

/**
 * @return the level kernels() dispatches to.  First call resolves
 * AR_SIMD / CPU detection and publishes the simd.dispatch_level
 * gauge.
 */
Level activeLevel();

/**
 * Pin the dispatch level (tests, benchmarks, the AR_SIMD=scalar CI
 * job).  Fatal if @p level is not in availableLevels().
 */
void setActiveLevel(Level level);

/** RAII level pin: restores the previous level on destruction. */
class ScopedLevel
{
  public:
    explicit ScopedLevel(Level level);
    ~ScopedLevel();

    ScopedLevel(const ScopedLevel &) = delete;
    ScopedLevel &operator=(const ScopedLevel &) = delete;

  private:
    Level prev_;
};

/** @return the kernel table for activeLevel(). */
const KernelTable &kernels();

/**
 * Telemetry hook for batch callers: adds @p ops to the simd.ops
 * counter and refreshes the simd.dispatch_level gauge.  Call once
 * per evalBatch when obs::metricsEnabled().
 */
void recordBatch(std::uint64_t ops);

} // namespace ar::simd

#endif // AR_SIMD_DISPATCH_HH
