#include "explore/pareto.hh"

#include <algorithm>
#include <limits>
#include <numeric>

namespace ar::explore
{

bool
dominates(const DesignOutcome &a, const DesignOutcome &b)
{
    const bool no_worse = a.expected >= b.expected && a.risk <= b.risk;
    const bool better = a.expected > b.expected || a.risk < b.risk;
    return no_worse && better;
}

std::vector<std::size_t>
paretoFront(const std::vector<DesignOutcome> &outcomes)
{
    std::vector<std::size_t> order(outcomes.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Sort by expected performance descending, risk ascending.
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (outcomes[a].expected != outcomes[b].expected)
                      return outcomes[a].expected >
                             outcomes[b].expected;
                  return outcomes[a].risk < outcomes[b].risk;
              });
    std::vector<std::size_t> front;
    double best_risk = std::numeric_limits<double>::infinity();
    for (std::size_t idx : order) {
        if (outcomes[idx].risk < best_risk) {
            front.push_back(idx);
            best_risk = outcomes[idx].risk;
        }
    }
    return front;
}

} // namespace ar::explore
