/**
 * @file
 * Optimality analysis over a design-space sweep: locate the
 * conventional (risk-oblivious), expected-performance-optimal, and
 * risk-optimal designs, and classify the conventional design the way
 * Figure 10 of the paper does.
 */

#ifndef AR_EXPLORE_OPTIMALITY_HH
#define AR_EXPLORE_OPTIMALITY_HH

#include <string>
#include <vector>

#include "explore/evaluate.hh"

namespace ar::explore
{

/** Figure-10 classification of the conventional design. */
enum class DesignClass
{
    Opt,            ///< Conventional optimal in perf AND risk.
    PerfOptOnly,    ///< Conventional optimal only in expected perf.
    SubOpt,         ///< Strictly sub-optimal, no perf/risk trade-off.
    SubOptTradeoff, ///< Sub-optimal AND a trade-off space exists.
};

/** @return a short display label for a classification. */
std::string toString(DesignClass cls);

/** Result of classifying one (sigma_app, sigma_arch) grid point. */
struct OptimalityResult
{
    std::size_t conventional = 0; ///< Risk-oblivious optimal design.
    std::size_t perf_opt = 0;     ///< Expected-performance optimum.
    std::size_t risk_opt = 0;     ///< Architectural-risk optimum.
    DesignClass cls = DesignClass::Opt;
    double conv_expected = 0.0;
    double best_expected = 0.0;
    double conv_risk = 0.0;
    double best_risk = 0.0;
};

/**
 * Classify the conventional design against a sweep's outcomes.
 *
 * @param outcomes Per-design outcomes from DesignSpaceEvaluator.
 * @param conventional Index of the risk-oblivious optimal design.
 * @param rel_tol Relative tolerance for treating two designs as tied
 *        (absorbs residual Monte-Carlo noise).
 */
OptimalityResult classifyDesigns(
    const std::vector<DesignOutcome> &outcomes,
    std::size_t conventional, double rel_tol = 2e-3);

/**
 * @return the index of the expected-performance-optimal design.
 */
std::size_t argmaxExpected(const std::vector<DesignOutcome> &outcomes);

/** @return the index of the risk-optimal design. */
std::size_t argminRisk(const std::vector<DesignOutcome> &outcomes);

} // namespace ar::explore

#endif // AR_EXPLORE_OPTIMALITY_HH
