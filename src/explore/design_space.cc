#include "explore/design_space.hh"

#include <map>
#include <set>
#include <string>

#include "util/logging.hh"

namespace ar::explore
{

namespace
{

using ar::model::CoreConfig;
using ar::model::CoreType;

void
recurse(const std::vector<double> &sizes, std::size_t next_size,
        double remaining, std::vector<CoreType> &chosen,
        std::set<std::string> &seen, std::vector<CoreConfig> &out)
{
    // Option 1: stop here; group any remaining area into one core.
    {
        std::vector<CoreType> cfg = chosen;
        if (remaining > 0.0)
            cfg.push_back({remaining, 1});
        if (!cfg.empty()) {
            CoreConfig config(std::move(cfg));
            if (seen.insert(config.describe()).second)
                out.push_back(std::move(config));
        }
    }
    // Option 2: add more power-of-two cores (non-increasing sizes to
    // avoid revisiting permutations).
    for (std::size_t s = next_size; s < sizes.size(); ++s) {
        const double size = sizes[s];
        if (size > remaining)
            continue;
        unsigned count = 1;
        std::vector<CoreType> &mut = chosen;
        double left = remaining;
        while (size * count <= remaining) {
            mut.push_back({size, 1});
            left = remaining - size * count;
            recurse(sizes, s + 1, left, mut, seen, out);
            ++count;
        }
        // Undo the pushes for this size.
        for (unsigned i = 1; i < count; ++i)
            mut.pop_back();
    }
}

} // namespace

std::vector<ar::model::CoreConfig>
enumerateDesigns(const DesignSpaceParams &params)
{
    if (params.total_area <= 0.0 || params.min_core <= 0.0 ||
        params.max_core < params.min_core) {
        ar::util::fatal("enumerateDesigns: invalid parameters");
    }
    // Power-of-two sizes, largest first.
    std::vector<double> sizes;
    for (double s = params.max_core; s >= params.min_core; s /= 2.0)
        sizes.push_back(s);

    std::vector<ar::model::CoreConfig> out;
    std::set<std::string> seen;
    std::vector<ar::model::CoreType> chosen;
    recurse(sizes, 0, params.total_area, chosen, seen, out);
    return out;
}

} // namespace ar::explore
