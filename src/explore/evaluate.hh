/**
 * @file
 * Fast whole-design-space evaluation under the ground-truth
 * uncertainty models.
 *
 * Because the paper's per-type distributions depend only on core size
 * (never on which configuration the type sits in), sample pools can
 * be shared across the hundreds of enumerated designs: one f/c pool
 * per application, one performance pool per distinct core size, and
 * per-instance survival draws per size for fabrication yield.  Shared
 * pools are also common-random-number variance reduction, making
 * cross-design comparisons (arg-max selection) far less noisy than
 * independent runs.  Tests verify this path agrees with the generic
 * symbolic Propagator pipeline.
 */

#ifndef AR_EXPLORE_EVALUATE_HH
#define AR_EXPLORE_EVALUATE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "model/app.hh"
#include "model/core_config.hh"
#include "model/uncertainty.hh"
#include "risk/risk_function.hh"
#include "symbolic/program.hh"
#include "util/cancel.hh"
#include "util/fault.hh"

namespace ar::explore
{

/** Per-design evaluation outcome. */
struct DesignOutcome
{
    std::size_t design_index = 0; ///< Index into the design list.
    double expected = 0.0;        ///< Mean normalized performance.
    double stddev = 0.0;          ///< Stddev of normalized perf.
    double risk = 0.0;            ///< Architectural risk (Eq. 2).

    std::size_t faults = 0;       ///< Trials with a non-finite sample.
    std::size_t effective_trials = 0; ///< Trials behind the stats.
};

/** How the per-trial speedup samples are computed. */
enum class SweepBackend
{
    /** Hand-written closed-form Hill-Marty evaluator per trial. */
    Direct,

    /**
     * All designs compiled into one fused CompiledProgram (one
     * output per design) evaluated in trial blocks.  Per-size
     * performance and per-(size, count) survivor columns are bound
     * once and shared across every design that references them, and
     * the optimizer CSEs any structure the designs have in common.
     * Agrees with Direct to floating-point reassociation (the
     * symbolic model folds in a different order than the closed
     * form); tests pin the agreement.
     */
    FusedProgram,
};

/** Settings for one design-space sweep. */
struct SweepConfig
{
    std::size_t trials = 2000;    ///< MC trials per design.
    std::uint64_t seed = 1;       ///< Pool sampling seed.
    bool keep_samples = false;    ///< Retain per-design samples.

    /**
     * When non-zero, run the sweep the way an analyst with limited
     * data would (Section 4.3 of the paper): each primitive input
     * distribution is observed only approx_k times and re-estimated
     * through the Figure-2 extraction pipeline before sampling.
     */
    std::size_t approx_k = 0;

    /**
     * Worker threads for pool construction and the per-design loop;
     * 0 means hardware concurrency.  Outcomes are bit-identical for
     * any value (parallel draws use counter-derived RNG substreams).
     */
    std::size_t threads = 0;

    /**
     * Handling of trials whose normalized speedup is non-finite.
     * Policies apply per design (pools are shared, so trial t can
     * fault for one design and not another); the sweep-level report
     * is assembled serially in (trial, design) order after the
     * parallel phase, hence bit-identical for any thread count.
     */
    ar::util::FaultPolicy fault_policy = ar::util::FaultPolicy::FailFast;

    /** Sample-computation backend; outcomes are bit-identical for
     * any thread count under either. */
    SweepBackend backend = SweepBackend::Direct;

    /**
     * Cooperative cancellation / deadline token, polled at block
     * boundaries of the evaluateAll() loops; a tripped token raises
     * ar::util::CancelledError within one block.  Cancellation has no
     * effect on the RNG contract: re-running the same seed afterwards
     * is bit-identical.  Null by default.
     */
    ar::util::CancelToken cancel{};
};

/**
 * Evaluate every design of a list under one (app, uncertainty) point.
 *
 * Performance samples are normalized by @p reference_speedup and risk
 * is computed against normalized reference 1.0, matching the paper's
 * presentation (performance relative to the conventional design).
 */
class DesignSpaceEvaluator
{
  public:
    /**
     * @param designs Enumerated configurations (borrowed; must
     *        outlive the evaluator).
     * @param app Application class.
     * @param spec Injected uncertainty levels.
     * @param cfg Trial count / seed / retention.
     */
    DesignSpaceEvaluator(const std::vector<ar::model::CoreConfig> &designs,
                         const ar::model::AppParams &app,
                         const ar::model::UncertaintySpec &spec,
                         const SweepConfig &cfg = {});

    /**
     * Run the sweep.
     *
     * @param fn Risk function.
     * @param reference_speedup Reference performance P in raw speedup
     *        units (typically the conventional design's certain
     *        speedup).
     * @return one outcome per design, same order as the design list.
     */
    std::vector<DesignOutcome>
    evaluateAll(const ar::risk::RiskFunction &fn,
                double reference_speedup);

    /**
     * Normalized performance samples of one design from the last
     * evaluateAll() call; requires cfg.keep_samples.  Post-policy:
     * discarded trials are absent, saturated trials hold the clamped
     * values.
     */
    const std::vector<double> &samples(std::size_t design_index) const;

    /**
     * Fault accounting of the last evaluateAll() call.  Output index
     * is the design index; effective_trials is the minimum surviving
     * trial count across designs.
     */
    const ar::util::FaultReport &faultReport() const { return report_; }

  private:
    void buildPools();

    /**
     * Compile every design's symbolic speedup into one fused program
     * (memoized; SweepBackend::FusedProgram only).  Per-type symbols
     * are renamed onto shared pool columns -- "P@<size idx>" for core
     * performance and "N@<size idx>x<designed count>" for working
     * counts -- so designs sharing a core type share its columns and
     * any common subexpressions.
     */
    void buildFusedProgram();

    /** Materialized double column of working counts for one
     * (size index, designed count) pair (memoized). */
    const std::vector<double> &countColumn(std::size_t s, unsigned m);

    /**
     * Ground-truth pool, or -- in approximate mode -- a pool drawn
     * from the distribution extracted from approx_k observations of
     * the ground truth.
     */
    std::vector<double> makePool(const ar::dist::Distribution &truth,
                                 ar::util::Rng &rng, double clamp_lo,
                                 double clamp_hi) const;

    const std::vector<ar::model::CoreConfig> &designs;
    ar::model::AppParams app;
    ar::model::UncertaintySpec spec;
    SweepConfig cfg;

    // Shared sample pools, one entry per trial.
    std::vector<double> f_pool;
    std::vector<double> c_pool;
    std::vector<double> size_values;              ///< Distinct sizes.
    std::vector<std::vector<double>> perf_pools;  ///< [size][trial]
    /// survivors[size][m * trials + t] = working cores among the
    /// first (m + 1) instances of this size in trial t (exact mode).
    std::vector<std::vector<std::uint16_t>> survivor_prefix;
    std::vector<unsigned> max_count;              ///< Per size.
    /// Approximate mode: N pools per (size index, designed count).
    std::map<std::pair<std::size_t, unsigned>, std::vector<double>>
        n_pools;

    std::vector<std::vector<double>> kept;        ///< Optional samples.
    ar::util::FaultReport report_;                ///< Last sweep.

    // Fused-program backend state (built lazily, memoized).
    std::unique_ptr<ar::symbolic::CompiledProgram> fused_prog_;
    std::vector<const double *> fused_cols_;      ///< Per program arg.
    std::map<std::pair<std::size_t, unsigned>, std::vector<double>>
        fused_count_cols_;
};

} // namespace ar::explore

#endif // AR_EXPLORE_EVALUATE_HH
