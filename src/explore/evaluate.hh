/**
 * @file
 * Fast whole-design-space evaluation under the ground-truth
 * uncertainty models.
 *
 * Because the paper's per-type distributions depend only on core size
 * (never on which configuration the type sits in), sample pools can
 * be shared across the hundreds of enumerated designs: one f/c pool
 * per application, one performance pool per distinct core size, and
 * per-instance survival draws per size for fabrication yield.  Shared
 * pools are also common-random-number variance reduction, making
 * cross-design comparisons (arg-max selection) far less noisy than
 * independent runs.  Tests verify this path agrees with the generic
 * symbolic Propagator pipeline.
 */

#ifndef AR_EXPLORE_EVALUATE_HH
#define AR_EXPLORE_EVALUATE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "model/app.hh"
#include "model/core_config.hh"
#include "model/uncertainty.hh"
#include "risk/risk_function.hh"
#include "symbolic/program.hh"
#include "util/cancel.hh"
#include "util/fault.hh"
#include "util/rng.hh"

namespace ar::explore
{

/** Per-design evaluation outcome. */
struct DesignOutcome
{
    std::size_t design_index = 0; ///< Index into the design list.
    double expected = 0.0;        ///< Mean normalized performance.
    double stddev = 0.0;          ///< Stddev of normalized perf.
    double risk = 0.0;            ///< Architectural risk (Eq. 2).

    std::size_t faults = 0;       ///< Trials with a non-finite sample.
    std::size_t effective_trials = 0; ///< Trials behind the stats.
};

/** How the per-trial speedup samples are computed. */
enum class SweepBackend
{
    /** Hand-written closed-form Hill-Marty evaluator per trial. */
    Direct,

    /**
     * All designs compiled into one fused CompiledProgram (one
     * output per design) evaluated in trial blocks.  Per-size
     * performance and per-(size, count) survivor columns are bound
     * once and shared across every design that references them, and
     * the optimizer CSEs any structure the designs have in common.
     * Agrees with Direct to floating-point reassociation (the
     * symbolic model folds in a different order than the closed
     * form); tests pin the agreement.
     */
    FusedProgram,
};

/** Settings for one design-space sweep. */
struct SweepConfig
{
    std::size_t trials = 2000;    ///< MC trials per design.
    std::uint64_t seed = 1;       ///< Pool sampling seed.
    bool keep_samples = false;    ///< Retain per-design samples.

    /**
     * When non-zero, run the sweep the way an analyst with limited
     * data would (Section 4.3 of the paper): each primitive input
     * distribution is observed only approx_k times and re-estimated
     * through the Figure-2 extraction pipeline before sampling.
     */
    std::size_t approx_k = 0;

    /**
     * Worker threads for pool construction and the per-design loop;
     * 0 means hardware concurrency.  Outcomes are bit-identical for
     * any value (parallel draws use counter-derived RNG substreams).
     */
    std::size_t threads = 0;

    /**
     * Handling of trials whose normalized speedup is non-finite.
     * Policies apply per design (pools are shared, so trial t can
     * fault for one design and not another); the sweep-level report
     * is assembled serially in (trial, design) order after the
     * parallel phase, hence bit-identical for any thread count.
     */
    ar::util::FaultPolicy fault_policy = ar::util::FaultPolicy::FailFast;

    /** Sample-computation backend; outcomes are bit-identical for
     * any thread count under either. */
    SweepBackend backend = SweepBackend::Direct;

    /**
     * Stream per-design statistics through the block-pipelined
     * engine instead of materializing every design's sample column:
     * memory drops from O(trials * designs) to O(block * designs).
     * Honored by the FusedProgram backend only (Direct computes
     * whole columns per design and keeps the materializing path).
     * Streamed moments use Welford/Chan accumulation rather than the
     * materializing two-pass sums, so outcomes agree to ~1e-12
     * relative tolerance, not bitwise; the what-if outcome cache is
     * bypassed for the same reason.  Incompatible with keep_samples
     * and with fault_policy saturate.
     */
    bool stream = false;

    /**
     * Cooperative cancellation / deadline token, polled at block
     * boundaries of the evaluateAll() loops; a tripped token raises
     * ar::util::CancelledError within one block.  Cancellation has no
     * effect on the RNG contract: re-running the same seed afterwards
     * is bit-identical.  Null by default.
     */
    ar::util::CancelToken cancel{};
};

/**
 * Evaluate every design of a list under one (app, uncertainty) point.
 *
 * Performance samples are normalized by @p reference_speedup and risk
 * is computed against normalized reference 1.0, matching the paper's
 * presentation (performance relative to the conventional design).
 */
class DesignSpaceEvaluator
{
  public:
    /**
     * @param designs Enumerated configurations (copied; the
     *        evaluator owns its design list so what-if edits can
     *        mutate it).
     * @param app Application class.
     * @param spec Injected uncertainty levels.
     * @param cfg Trial count / seed / retention.
     */
    DesignSpaceEvaluator(const std::vector<ar::model::CoreConfig> &designs,
                         const ar::model::AppParams &app,
                         const ar::model::UncertaintySpec &spec,
                         const SweepConfig &cfg = {});

    /**
     * What-if edit: new application parameters.  Only the pool
     * stages the change actually feeds (f and/or c) are marked
     * dirty; the next evaluateAll() rebuilds exactly those and
     * replays every later stage from its RNG checkpoint, so results
     * are bit-identical to a fresh evaluator built on @p new_app.
     */
    void editApp(const ar::model::AppParams &new_app);

    /**
     * What-if edit: new uncertainty levels.  Stage dirtying follows
     * the fields that changed (sigma_f -> f pool, sigma_c -> c pool,
     * sigma_perf / sigma_design / gamma -> performance pools,
     * fab -> fabrication pools); results are bit-identical to a
     * fresh evaluator built on @p new_spec.
     */
    void editUncertainty(const ar::model::UncertaintySpec &new_spec);

    /**
     * What-if edit: replace one design.  When the new configuration
     * only uses core sizes (and, under fabrication uncertainty,
     * instance counts) the shared pools already cover, the edit is
     * applied without touching any pool: the fused program, if
     * built, recompiles just the edited output's cone through its
     * warm builder.  Otherwise the affected pool stages are marked
     * dirty and the fused program is rebuilt on the next
     * evaluateAll().  Shared pools are preserved either way
     * (common-random-number semantics: unchanged designs keep their
     * exact samples); outputs match a fresh evaluator bit-for-bit
     * whenever the edit preserves the pool layout (same size set,
     * first-occurrence order, and per-size maximum count).
     */
    void editDesign(std::size_t design_index,
                    const ar::model::CoreConfig &config);

    /** Replace the cancellation token for subsequent evaluateAll()
     * calls (a tripped token never untrips, so a retry after a
     * cancelled sweep installs a fresh one here). */
    void setCancel(ar::util::CancelToken cancel);

    /**
     * Run the sweep.
     *
     * Per-design outcomes of the last fault-free pass are cached:
     * when no pool stage is dirty and the call repeats the previous
     * risk-function object and reference, only designs touched by
     * editDesign() since that pass are recomputed (through the same
     * backend, so the bits match a full sweep) and everything else
     * is served from the cache.  The cache keys on the risk
     * function's object identity (address and dynamic type), so pass
     * the same object across what-if iterations to hit it; a
     * different object -- even an equal-valued one -- forces a full
     * resweep, never a wrong answer from a stale key.
     *
     * @param fn Risk function.
     * @param reference_speedup Reference performance P in raw speedup
     *        units (typically the conventional design's certain
     *        speedup).
     * @return one outcome per design, same order as the design list.
     */
    std::vector<DesignOutcome>
    evaluateAll(const ar::risk::RiskFunction &fn,
                double reference_speedup);

    /**
     * Normalized performance samples of one design from the last
     * evaluateAll() call; requires cfg.keep_samples.  Post-policy:
     * discarded trials are absent, saturated trials hold the clamped
     * values.
     */
    const std::vector<double> &samples(std::size_t design_index) const;

    /**
     * Fault accounting of the last evaluateAll() call.  Output index
     * is the design index; effective_trials is the minimum surviving
     * trial count across designs.
     */
    const ar::util::FaultReport &faultReport() const { return report_; }

  private:
    /// Pool construction is staged so what-if edits can rebuild one
    /// stage and replay the rest.  Stages are ordered by the master
    /// RNG stream: f pool, c pool, per-size performance pools,
    /// fabrication pools, per-size multi-state pools.  StageState
    /// draws nothing when the spec declares no states, so the master
    /// stream (and therefore every earlier golden output) is
    /// unchanged for single-state models.
    enum Stage : std::size_t
    {
        StageF = 0,
        StageC = 1,
        StagePerf = 2,
        StageFab = 3,
        StageState = 4,
        kNumStages = 5,
    };

    /**
     * RNG stream checkpoint around one pool stage.  A stage may be
     * skipped when it is not dirty and the master stream arrives at
     * the same state as last time (proving every earlier stage
     * consumed an identical segment); the stream then jumps to the
     * recorded exit, exactly as if the stage had re-drawn its pools.
     */
    struct StageCkpt
    {
        ar::util::Rng entry{0};
        ar::util::Rng exit{0};
        bool valid = false;
    };

    void buildPools();
    void buildStage(std::size_t stage, ar::util::Rng &rng);

    /**
     * Compile every design's symbolic speedup into one fused program
     * (memoized; SweepBackend::FusedProgram only).  Per-type symbols
     * are renamed onto shared pool columns -- "P@<size idx>" for core
     * performance and "N@<size idx>x<designed count>" for working
     * counts -- so designs sharing a core type share its columns and
     * any common subexpressions.
     */
    void buildFusedProgram();

    /** Materialized double column of working counts for one
     * (size index, designed count) pair (memoized). */
    const std::vector<double> &countColumn(std::size_t s, unsigned m);

    /**
     * Ground-truth pool, or -- in approximate mode -- a pool drawn
     * from the distribution extracted from approx_k observations of
     * the ground truth.  @p u_out, when non-null, receives the
     * stratified uniform of each trial (no extra RNG is consumed).
     */
    std::vector<double> makePool(const ar::dist::Distribution &truth,
                                 ar::util::Rng &rng, double clamp_lo,
                                 double clamp_hi,
                                 std::vector<double> *u_out = nullptr)
        const;

    /** Re-point fused_cols_ at the current pool storage (pool
     * rebuilds may reallocate the vectors the program reads). */
    void rebindFusedColumns();

    /** Pool column a program argument name refers to ("f", "c",
     * "P@<size>", "N@<size>x<count>"); fatal on anything else. */
    const double *columnFor(const std::string &name);

    /**
     * Recompute one design's normalized samples in isolation,
     * bit-identical to the column a full sweep would produce for it.
     * The Direct backend re-runs the closed form; the fused backend
     * compiles a one-output tape from the same renamed expression
     * (every tape op is elementwise, so dropping the other outputs
     * and the block structure cannot change the bits).
     */
    void computeDesignSamples(std::size_t d, double reference_speedup,
                              std::vector<double> &samples);

    /**
     * Serve a sweep from the outcome cache, recomputing only the
     * designs edited since the last full pass.  Returns nullopt when
     * a recomputed design faults: fault accounting is arbitrated
     * across designs, so the full pass must run.
     */
    std::optional<std::vector<DesignOutcome>>
    tryIncrementalSweep(const ar::risk::RiskFunction &fn,
                        double reference_speedup);

    /** Record a completed full pass in the outcome cache. */
    void rememberOutcomes(const std::vector<DesignOutcome> &outcomes,
                          const ar::risk::RiskFunction &fn,
                          double reference_speedup, bool fault_free);

    /** Resolved + renamed symbolic speedup of one configuration,
     * mapping its per-type symbols onto the shared pool columns. */
    ar::symbolic::ExprPtr
    designExpr(const ar::model::CoreConfig &config);

    /** @return true when the shared pools already cover every
     * (size, count) the configuration needs. */
    bool poolsCover(const ar::model::CoreConfig &config) const;

    std::vector<ar::model::CoreConfig> designs;
    ar::model::AppParams app;
    ar::model::UncertaintySpec spec;
    SweepConfig cfg;

    /**
     * Impose (or clear) the spec's f/c rank correlation on the
     * shared pools by Iman-Conover reordering of the pool *values*
     * against the captured uniform columns.  Deterministic in the
     * captured uniforms and the sorted value multiset, so re-running
     * it after any subset of stage rebuilds is idempotent; called at
     * the end of every buildPools().
     */
    void applyPoolCorrelations();

    StageCkpt ckpt_[kNumStages];
    bool dirty_[kNumStages] = {true, true, true, true, true};

    // Shared sample pools, one entry per trial.
    std::vector<double> f_pool;
    std::vector<double> c_pool;
    /// Stratified uniforms behind f_pool / c_pool in natural (trial)
    /// order; empty when the pool is a constant fill.  Captured so
    /// applyPoolCorrelations() can reorder without consuming RNG.
    std::vector<double> f_u_;
    std::vector<double> c_u_;
    std::vector<double> size_values;              ///< Distinct sizes.
    std::vector<std::vector<double>> perf_pools;  ///< [size][trial]
    /// Per-size multi-state multiplier pools (empty without states).
    std::vector<std::vector<double>> state_pools;
    /// survivors[size][m * trials + t] = working cores among the
    /// first (m + 1) instances of this size in trial t (exact mode).
    std::vector<std::vector<std::uint16_t>> survivor_prefix;
    std::vector<unsigned> max_count;              ///< Per size.
    /// Approximate mode: N pools per (size index, designed count).
    std::map<std::pair<std::size_t, unsigned>, std::vector<double>>
        n_pools;

    std::vector<std::vector<double>> kept;        ///< Optional samples.
    ar::util::FaultReport report_;                ///< Last sweep.

    // Fused-program backend state (built lazily, memoized).
    std::unique_ptr<ar::symbolic::CompiledProgram> fused_prog_;
    /// Design outputs edited since the program last compiled; the
    /// cone recompile is deferred to the next full pass (incremental
    /// sweeps read a one-output tape and never touch the program).
    std::set<std::size_t> fused_pending_;
    std::vector<const double *> fused_cols_;      ///< Per program arg.
    std::map<std::pair<std::size_t, unsigned>, std::vector<double>>
        fused_count_cols_;
    /// Resolved symbolic speedup per distinct type count (k-keyed;
    /// survives design edits, which only change the renaming).
    std::map<std::size_t, ar::symbolic::ExprPtr> resolved_by_k_;

    // What-if outcome cache: per-design results of the last full
    // pass, served back when only a subset of designs changed.
    std::vector<DesignOutcome> cached_outcomes_;
    std::vector<bool> design_dirty_;    ///< Edited since last pass.
    bool outcomes_valid_ = false;
    bool last_fault_free_ = false;
    const void *last_fn_ = nullptr;     ///< Risk-function identity...
    std::size_t last_fn_type_ = 0;      ///< ...address + dynamic type.
    std::uint64_t last_ref_bits_ = 0;   ///< Reference, bit pattern.
};

} // namespace ar::explore

#endif // AR_EXPLORE_EVALUATE_HH
