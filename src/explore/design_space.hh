/**
 * @file
 * CMP design-space enumeration (Section 4.2 of the paper): every
 * configuration filling a fixed chip area with cores of power-of-two
 * sizes, where leftover area is grouped into one additional core
 * ("e.g. 8 cores of size 8 plus one core of size 192 is also valid").
 */

#ifndef AR_EXPLORE_DESIGN_SPACE_HH
#define AR_EXPLORE_DESIGN_SPACE_HH

#include <vector>

#include "model/core_config.hh"

namespace ar::explore
{

/** Enumeration bounds. */
struct DesignSpaceParams
{
    double total_area = 256.0; ///< Chip budget (the paper uses 256).
    double min_core = 8.0;     ///< Smallest power-of-two core size.
    double max_core = 256.0;   ///< Largest power-of-two core size.
};

/**
 * Enumerate all valid configurations: multisets of power-of-two core
 * sizes in [min_core, max_core] with total at most the chip budget;
 * any remaining area becomes one extra core.  Duplicates arising from
 * remainder grouping are removed; every returned configuration
 * consumes the budget exactly.
 */
std::vector<ar::model::CoreConfig>
enumerateDesigns(const DesignSpaceParams &params = {});

} // namespace ar::explore

#endif // AR_EXPLORE_DESIGN_SPACE_HH
