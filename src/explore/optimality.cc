#include "explore/optimality.hh"

#include <cmath>

#include "util/logging.hh"

namespace ar::explore
{

std::string
toString(DesignClass cls)
{
    switch (cls) {
      case DesignClass::Opt:
        return "Opt";
      case DesignClass::PerfOptOnly:
        return "PerfOptOnly";
      case DesignClass::SubOpt:
        return "SubOpt";
      case DesignClass::SubOptTradeoff:
        return "SubOpt+Tradeoff";
    }
    ar::util::panic("toString: invalid DesignClass");
}

std::size_t
argmaxExpected(const std::vector<DesignOutcome> &outcomes)
{
    if (outcomes.empty())
        ar::util::fatal("argmaxExpected: empty outcome list");
    std::size_t best = 0;
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
        if (outcomes[i].expected > outcomes[best].expected)
            best = i;
    }
    return best;
}

std::size_t
argminRisk(const std::vector<DesignOutcome> &outcomes)
{
    if (outcomes.empty())
        ar::util::fatal("argminRisk: empty outcome list");
    std::size_t best = 0;
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
        if (outcomes[i].risk < outcomes[best].risk)
            best = i;
    }
    return best;
}

OptimalityResult
classifyDesigns(const std::vector<DesignOutcome> &outcomes,
                std::size_t conventional, double rel_tol)
{
    if (conventional >= outcomes.size())
        ar::util::fatal("classifyDesigns: conventional index out of "
                        "range");

    OptimalityResult res;
    res.conventional = conventional;
    res.perf_opt = argmaxExpected(outcomes);
    res.risk_opt = argminRisk(outcomes);
    res.conv_expected = outcomes[conventional].expected;
    res.best_expected = outcomes[res.perf_opt].expected;
    res.conv_risk = outcomes[conventional].risk;
    res.best_risk = outcomes[res.risk_opt].risk;

    // Ties within tolerance count as optimal: with common random
    // numbers most noise cancels, but arg-max over hundreds of
    // designs still needs a little slack.
    const bool perf_optimal =
        res.conv_expected >= res.best_expected * (1.0 - rel_tol);
    const bool risk_optimal =
        res.conv_risk <=
        res.best_risk + rel_tol * std::max(1e-12, res.best_risk) +
            1e-12;
    const bool tradeoff =
        outcomes[res.perf_opt].risk >
            res.best_risk * (1.0 + rel_tol) + 1e-12 &&
        res.best_expected >
            outcomes[res.risk_opt].expected * (1.0 + rel_tol);

    if (perf_optimal && risk_optimal)
        res.cls = DesignClass::Opt;
    else if (perf_optimal)
        res.cls = DesignClass::PerfOptOnly;
    else if (tradeoff)
        res.cls = DesignClass::SubOptTradeoff;
    else
        res.cls = DesignClass::SubOpt;
    return res;
}

} // namespace ar::explore
