#include "explore/select.hh"

#include <cmath>
#include <limits>

#include "explore/pareto.hh"
#include "util/logging.hh"

namespace ar::explore
{

std::optional<std::size_t>
minRiskWithPerfFloor(const std::vector<DesignOutcome> &outcomes,
                     double perf_floor)
{
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].expected < perf_floor)
            continue;
        if (!best || outcomes[i].risk < outcomes[*best].risk)
            best = i;
    }
    return best;
}

std::optional<std::size_t>
maxPerfWithRiskCap(const std::vector<DesignOutcome> &outcomes,
                   double risk_cap)
{
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].risk > risk_cap)
            continue;
        if (!best ||
            outcomes[i].expected > outcomes[*best].expected) {
            best = i;
        }
    }
    return best;
}

std::size_t
kneePoint(const std::vector<DesignOutcome> &outcomes)
{
    if (outcomes.empty())
        ar::util::fatal("kneePoint: empty outcome list");
    const auto front = paretoFront(outcomes);

    double best_e = -std::numeric_limits<double>::infinity();
    double worst_e = std::numeric_limits<double>::infinity();
    double best_r = std::numeric_limits<double>::infinity();
    double worst_r = -std::numeric_limits<double>::infinity();
    for (std::size_t idx : front) {
        best_e = std::max(best_e, outcomes[idx].expected);
        worst_e = std::min(worst_e, outcomes[idx].expected);
        best_r = std::min(best_r, outcomes[idx].risk);
        worst_r = std::max(worst_r, outcomes[idx].risk);
    }
    const double e_span = std::max(best_e - worst_e, 1e-12);
    const double r_span = std::max(worst_r - best_r, 1e-12);

    std::size_t knee = front.front();
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t idx : front) {
        const double de =
            (best_e - outcomes[idx].expected) / e_span;
        const double dr = (outcomes[idx].risk - best_r) / r_span;
        const double d = std::sqrt(de * de + dr * dr);
        if (d < best_d) {
            best_d = d;
            knee = idx;
        }
    }
    return knee;
}

} // namespace ar::explore
