#include "explore/evaluate.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <typeinfo>

#include "dist/discrete.hh"
#include "extract/extract.hh"
#include "math/numeric.hh"
#include "math/special.hh"
#include "mc/stream_engine.hh"
#include "model/hill_marty.hh"
#include "model/yield.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "risk/arch_risk.hh"
#include "symbolic/compile.hh"
#include "symbolic/substitute.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace ar::explore
{

namespace
{

struct SweepMetrics
{
    obs::Counter runs =
        obs::MetricsRegistry::global().counter("sweep.runs");
    obs::Counter designs =
        obs::MetricsRegistry::global().counter("sweep.designs");
    obs::Counter designs_done =
        obs::MetricsRegistry::global().counter("sweep.designs_done");
    obs::Counter trials =
        obs::MetricsRegistry::global().counter("sweep.trials");
    obs::Counter program_ops =
        obs::MetricsRegistry::global().counter("sweep.program_ops");
    obs::Counter cse_saved_ops =
        obs::MetricsRegistry::global().counter("sweep.cse_saved_ops");
    obs::Counter pools_ns =
        obs::MetricsRegistry::global().counter("sweep.pools_ns");
    obs::Counter compile_ns =
        obs::MetricsRegistry::global().counter("sweep.compile_ns");
    obs::Counter eval_ns =
        obs::MetricsRegistry::global().counter("sweep.eval_ns");
    obs::Counter stats_ns =
        obs::MetricsRegistry::global().counter("sweep.stats_ns");
    obs::Counter incr_edits = obs::MetricsRegistry::global().counter(
        "explore.incremental.edits");
    obs::Counter incr_cone_nodes =
        obs::MetricsRegistry::global().counter(
            "explore.incremental.cone_nodes");
    obs::Counter pools_rebuilt =
        obs::MetricsRegistry::global().counter(
            "explore.incremental.pools_rebuilt");
    obs::Counter pools_reused =
        obs::MetricsRegistry::global().counter(
            "explore.incremental.pools_reused");
};

SweepMetrics &
sweepMetrics()
{
    static SweepMetrics m;
    return m;
}

/** Stratified (one-dimensional Latin hypercube) pool of draws.
 * @p u_out, when non-null, receives each trial's uniform. */
std::vector<double>
stratifiedPool(const ar::dist::Distribution &dist, std::size_t trials,
               ar::util::Rng &rng,
               std::vector<double> *u_out = nullptr)
{
    std::vector<double> pool(trials);
    if (u_out)
        u_out->resize(trials);
    const auto perm = rng.permutation(trials);
    const double n = static_cast<double>(trials);
    for (std::size_t t = 0; t < trials; ++t) {
        const double u =
            (static_cast<double>(perm[t]) + rng.uniform()) / n;
        if (u_out)
            (*u_out)[t] = u;
        pool[t] = dist.sampleFromUniform(u);
    }
    return pool;
}

/** Reorder @p pool so its j-th smallest value lands on the trial
 * holding the j-th smallest score (index tiebreak). */
void
reorderByScores(std::vector<double> &pool,
                const std::vector<double> &scores)
{
    const std::size_t n = pool.size();
    std::vector<std::size_t> ord(n);
    for (std::size_t t = 0; t < n; ++t)
        ord[t] = t;
    std::sort(ord.begin(), ord.end(),
              [&](std::size_t a, std::size_t b) {
                  if (scores[a] != scores[b])
                      return scores[a] < scores[b];
                  return a < b;
              });
    std::vector<double> sorted = pool;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t j = 0; j < n; ++j)
        pool[ord[j]] = sorted[j];
}

} // namespace

DesignSpaceEvaluator::DesignSpaceEvaluator(
    const std::vector<ar::model::CoreConfig> &designs_in,
    const ar::model::AppParams &app_in,
    const ar::model::UncertaintySpec &spec_in, const SweepConfig &cfg_in)
    : designs(designs_in), app(app_in), spec(spec_in), cfg(cfg_in)
{
    if (cfg.trials == 0)
        ar::util::fatal("DesignSpaceEvaluator: trials must be positive");
    if (designs.empty())
        ar::util::fatal("DesignSpaceEvaluator: empty design list");
    if (cfg.approx_k == 1)
        ar::util::fatal("DesignSpaceEvaluator: approx_k must be 0 "
                        "(exact) or >= 2");
    design_dirty_.assign(designs.size(), false);
    buildPools();
}

std::vector<double>
DesignSpaceEvaluator::makePool(const ar::dist::Distribution &truth,
                               ar::util::Rng &rng, double clamp_lo,
                               double clamp_hi,
                               std::vector<double> *u_out) const
{
    std::vector<double> pool;
    if (cfg.approx_k == 0) {
        pool = stratifiedPool(truth, cfg.trials, rng, u_out);
    } else {
        // Limited-data analyst: observe k samples, re-estimate the
        // distribution (Figure 2), then sample the estimate.
        const auto observed = truth.sampleMany(cfg.approx_k, rng);
        const auto est =
            ar::extract::extractUncertainty(observed).distribution;
        pool = stratifiedPool(*est, cfg.trials, rng, u_out);
    }
    for (auto &v : pool)
        v = ar::math::clamp(v, clamp_lo, clamp_hi);
    return pool;
}

void
DesignSpaceEvaluator::buildPools()
{
    obs::ScopedPhase phase("sweep.pools", sweepMetrics().pools_ns);
    ar::util::Rng rng(cfg.seed);
    for (std::size_t k = 0; k < kNumStages; ++k) {
        if (ckpt_[k].valid && !dirty_[k] && rng == ckpt_[k].entry) {
            // The master stream arrives exactly where it did last
            // time, so a rebuild would re-draw the identical pools;
            // jump the stream to the recorded exit instead.
            rng = ckpt_[k].exit;
            if (obs::metricsEnabled())
                sweepMetrics().pools_reused.add();
            continue;
        }
        ckpt_[k].entry = rng;
        buildStage(k, rng);
        ckpt_[k].exit = rng;
        ckpt_[k].valid = true;
        dirty_[k] = false;
        if (k == StagePerf || k == StageFab)
            fused_count_cols_.clear();
        if (obs::metricsEnabled())
            sweepMetrics().pools_rebuilt.add();
    }
    // Impose (or clear) the f/c rank correlation.  Deterministic in
    // the captured uniforms and the pool value multisets, so running
    // it after every (partial) rebuild is idempotent.
    applyPoolCorrelations();
}

void
DesignSpaceEvaluator::applyPoolCorrelations()
{
    // Resolve the effective f/c correlation; only that pair exists
    // at the pool level.
    double rho = 0.0;
    for (const auto &corr : spec.correlations) {
        const bool fc = (corr.a == "f" && corr.b == "c") ||
                        (corr.a == "c" && corr.b == "f");
        if (!fc) {
            ar::util::fatal("DesignSpaceEvaluator: pool correlations "
                            "support only the f/c pair, got '",
                            corr.a, "'/'", corr.b, "'");
        }
        if (corr.rho <= -1.0 || corr.rho >= 1.0) {
            ar::util::fatal("DesignSpaceEvaluator: correlation must "
                            "lie in (-1, 1), got ", corr.rho);
        }
        rho = corr.rho;
    }

    // A degenerate (constant-fill) pool has no uniforms and nothing
    // to reorder; the pair is inactive.
    if (f_u_.empty() || c_u_.empty())
        return;

    if (rho == 0.0) {
        // Restore natural order: the quantile transform is monotone,
        // so ranking by the captured uniforms reproduces the
        // stage-built pools exactly.
        reorderByScores(f_pool, f_u_);
        reorderByScores(c_pool, c_u_);
        return;
    }

    // Two-dimensional Iman-Conover: normal scores of the uniform
    // columns, de-correlated by their own empirical correlation e,
    // then mixed to the target rho.  The f target score is z_f
    // itself (monotone in u_f), so the f pool keeps its natural
    // order bit-for-bit; only the c pool is permuted.
    const std::size_t n = cfg.trials;
    std::vector<double> zf(n), zc(n);
    for (std::size_t t = 0; t < n; ++t) {
        zf[t] = ar::math::normalQuantile(
            ar::math::clamp(f_u_[t], 1e-12, 1.0 - 1e-12));
        zc[t] = ar::math::normalQuantile(
            ar::math::clamp(c_u_[t], 1e-12, 1.0 - 1e-12));
    }
    double mf = 0.0, mc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
        mf += zf[t];
        mc += zc[t];
    }
    mf /= static_cast<double>(n);
    mc /= static_cast<double>(n);
    double sff = 0.0, scc = 0.0, sfc = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
        const double df = zf[t] - mf;
        const double dc = zc[t] - mc;
        sff += df * df;
        scc += dc * dc;
        sfc += df * dc;
    }
    const double denom = std::sqrt(sff * scc);
    double e = denom > 0.0 ? sfc / denom : 0.0;
    e = ar::math::clamp(e, -0.999999, 0.999999);

    // Target c score: rho * y1 + sqrt(1 - rho^2) * y2 with
    // y1 = z_f, y2 = (z_c - e z_f) / sqrt(1 - e^2); its empirical
    // correlation with z_f is exactly rho.
    const double w = std::sqrt(1.0 - rho * rho) /
                     std::sqrt(1.0 - e * e);
    std::vector<double> tc(n);
    for (std::size_t t = 0; t < n; ++t)
        tc[t] = rho * zf[t] + w * (zc[t] - e * zf[t]);

    reorderByScores(f_pool, f_u_); // natural order (z_f monotone)
    reorderByScores(c_pool, tc);
}

void
DesignSpaceEvaluator::buildStage(std::size_t stage,
                                 ar::util::Rng &rng)
{
    const std::size_t trials = cfg.trials;
    const double inf = std::numeric_limits<double>::infinity();
    switch (stage) {
      case StageF:
        if (spec.sigma_f > 0.0) {
            f_pool = makePool(
                *ar::model::groundTruthF(app, spec.sigma_f), rng, 0.0,
                1.0, &f_u_);
        } else {
            f_pool.assign(trials, app.f);
            f_u_.clear();
        }
        return;
      case StageC:
        if (spec.sigma_c > 0.0) {
            c_pool = makePool(
                *ar::model::groundTruthC(app, spec.sigma_c), rng, 0.0,
                1.0, &c_u_);
        } else {
            c_pool.assign(trials, app.c);
            c_u_.clear();
        }
        return;
      case StagePerf:
        {
            // Distinct core sizes and the largest per-size instance
            // count (rediscovered from scratch: a design edit may
            // have changed the union).
            size_values.clear();
            max_count.clear();
            perf_pools.clear();
            for (const auto &config : designs) {
                for (const auto &t : config.types()) {
                    auto it = std::find(size_values.begin(),
                                        size_values.end(), t.area);
                    std::size_t idx;
                    if (it == size_values.end()) {
                        size_values.push_back(t.area);
                        max_count.push_back(t.count);
                        idx = size_values.size() - 1;
                    } else {
                        idx = static_cast<std::size_t>(
                            it - size_values.begin());
                        max_count[idx] =
                            std::max(max_count[idx], t.count);
                    }
                }
            }

            // Per-size core-performance pools (one type-level draw
            // per trial).  Declared states replace the Bernoulli
            // severe-design-bug factor, so sigma_design is inert
            // while core_states is non-empty.
            const double sd_design = spec.core_states.empty()
                                         ? spec.sigma_design
                                         : 0.0;
            perf_pools.resize(size_values.size());
            for (std::size_t s = 0; s < size_values.size(); ++s) {
                const double area = size_values[s];
                if (spec.sigma_perf > 0.0 || sd_design > 0.0) {
                    const auto dist = ar::model::groundTruthCorePerf(
                        area, spec.sigma_perf, sd_design,
                        spec.gamma);
                    perf_pools[s] = makePool(*dist, rng, 0.0, inf);
                } else {
                    perf_pools[s].assign(trials, std::sqrt(area));
                }
            }
            return;
        }
      case StageState:
        {
            state_pools.clear();
            if (spec.core_states.empty())
                return;
            // One multiplier pool per distinct core size, sampled
            // from the shared Categorical (independent across
            // sizes).  No clamping: an unmodeled-state gap samples
            // NaN and must reach the fault policy intact.
            std::vector<double> values, probs;
            values.reserve(spec.core_states.size());
            probs.reserve(spec.core_states.size());
            for (const auto &st : spec.core_states) {
                values.push_back(st.multiplier);
                probs.push_back(st.probability);
            }
            const ar::dist::Categorical dist(std::move(values),
                                             std::move(probs));
            state_pools.resize(size_values.size());
            for (std::size_t s = 0; s < size_values.size(); ++s)
                state_pools[s] = stratifiedPool(dist, trials, rng);
            return;
        }
      case StageFab:
        break;
      default:
        ar::util::panic("DesignSpaceEvaluator: bad pool stage");
    }

    survivor_prefix.clear();
    n_pools.clear();
    if (!spec.fab)
        return;

    if (cfg.approx_k == 0) {
        // Exact mode: per-size, per-instance survival prefix counts.
        // Summing independent Bernoulli draws reproduces the
        // Binomial(N, yield) of Table 2 exactly while letting every
        // design share the same pools.  Pool construction stays on
        // the master stream (draw-for-draw reproducible across
        // versions); the parallel phase is evaluateAll(), which only
        // reads the finished pools.
        survivor_prefix.resize(size_values.size());
        for (std::size_t s = 0; s < size_values.size(); ++s) {
            const double yield = ar::model::yieldRate(size_values[s]);
            const unsigned m_max = max_count[s];
            auto &prefix = survivor_prefix[s];
            prefix.assign(static_cast<std::size_t>(m_max) * trials, 0);
            for (std::size_t t = 0; t < trials; ++t) {
                std::uint16_t acc = 0;
                for (unsigned m = 0; m < m_max; ++m) {
                    if (rng.uniform() < yield)
                        ++acc;
                    prefix[static_cast<std::size_t>(m) * trials + t] =
                        acc;
                }
            }
        }
        return;
    }

    // Approximate mode: the analyst observes working-core counts per
    // (size, designed count) pair -- the quantity Table 2 actually
    // models -- and re-estimates each.
    for (const auto &config : designs) {
        for (const auto &t : config.types()) {
            const auto it = std::find(size_values.begin(),
                                      size_values.end(), t.area);
            const auto key = std::make_pair(
                static_cast<std::size_t>(it - size_values.begin()),
                t.count);
            if (n_pools.count(key))
                continue;
            const auto truth =
                ar::model::groundTruthCoreCount(t.area, t.count);
            auto pool = makePool(*truth, rng, 0.0,
                                 static_cast<double>(t.count));
            // Working-core counts are physical integers.
            for (auto &v : pool)
                v = std::round(v);
            n_pools.emplace(key, std::move(pool));
        }
    }
}

void
DesignSpaceEvaluator::editApp(const ar::model::AppParams &new_app)
{
    if (obs::metricsEnabled())
        sweepMetrics().incr_edits.add();
    if (new_app.f != app.f)
        dirty_[StageF] = true;
    if (new_app.c != app.c)
        dirty_[StageC] = true;
    app = new_app;
}

void
DesignSpaceEvaluator::editUncertainty(
    const ar::model::UncertaintySpec &new_spec)
{
    if (obs::metricsEnabled())
        sweepMetrics().incr_edits.add();
    if (new_spec.sigma_f != spec.sigma_f)
        dirty_[StageF] = true;
    if (new_spec.sigma_c != spec.sigma_c)
        dirty_[StageC] = true;
    // sigma_design only feeds the performance pools while no states
    // are declared (states replace the Bernoulli design-bug factor).
    const double old_sd = spec.core_states.empty() ? spec.sigma_design
                                                   : 0.0;
    const double new_sd = new_spec.core_states.empty()
                              ? new_spec.sigma_design
                              : 0.0;
    if (new_spec.sigma_perf != spec.sigma_perf || new_sd != old_sd ||
        new_spec.gamma != spec.gamma)
        dirty_[StagePerf] = true;
    if (new_spec.fab != spec.fab)
        dirty_[StageFab] = true;
    if (!(new_spec.core_states == spec.core_states)) {
        dirty_[StageState] = true;
        if (new_spec.core_states.empty() !=
            spec.core_states.empty()) {
            // The designs' expressions gain or lose the S@ columns.
            fused_prog_.reset();
            fused_pending_.clear();
            fused_cols_.clear();
        }
    }
    if (!(new_spec.correlations == spec.correlations)) {
        // The pools are re-ranked without re-drawing, so no stage is
        // dirty, but every cached outcome moved with them.
        outcomes_valid_ = false;
    }
    spec = new_spec;
}

bool
DesignSpaceEvaluator::poolsCover(
    const ar::model::CoreConfig &config) const
{
    for (const auto &t : config.types()) {
        const auto it = std::find(size_values.begin(),
                                  size_values.end(), t.area);
        if (it == size_values.end())
            return false;
        const auto s =
            static_cast<std::size_t>(it - size_values.begin());
        if (spec.fab) {
            if (cfg.approx_k == 0) {
                if (t.count > max_count[s])
                    return false;
            } else if (!n_pools.count({s, t.count})) {
                return false;
            }
        }
    }
    return true;
}

void
DesignSpaceEvaluator::editDesign(std::size_t design_index,
                                 const ar::model::CoreConfig &config)
{
    if (design_index >= designs.size()) {
        ar::util::fatal("DesignSpaceEvaluator::editDesign: index ",
                        design_index, " out of range");
    }
    if (config == designs[design_index])
        return;
    if (obs::metricsEnabled())
        sweepMetrics().incr_edits.add();

    if (poolsCover(config)) {
        // Single-knob path: no pool moves at all.  The fused
        // program, if built, will re-lower just the edited outputs'
        // cones through its warm builder -- deferred to the next
        // full pass, since incremental sweeps recompute the edited
        // design through a one-output tape and never evaluate the
        // program.  The Direct backend reads the design list and
        // needs nothing else.
        designs[design_index] = config;
        if (fused_prog_)
            fused_pending_.insert(design_index);
        design_dirty_[design_index] = true;
        return;
    }

    // The new configuration needs sizes or counts the shared pools
    // do not cover: regrow the design-dependent stages and rebuild
    // the fused program (renames may shift onto new columns).
    designs[design_index] = config;
    dirty_[StagePerf] = true;
    dirty_[StageFab] = true;
    dirty_[StageState] = true; // per-size pools track size_values
    fused_prog_.reset();
    fused_pending_.clear();
    fused_cols_.clear();
    outcomes_valid_ = false;
}

void
DesignSpaceEvaluator::setCancel(ar::util::CancelToken cancel)
{
    cfg.cancel = std::move(cancel);
}

const std::vector<double> &
DesignSpaceEvaluator::countColumn(std::size_t s, unsigned m)
{
    const auto key = std::make_pair(s, m);
    const auto it = fused_count_cols_.find(key);
    if (it != fused_count_cols_.end())
        return it->second;

    std::vector<double> col(cfg.trials);
    if (!spec.fab) {
        std::fill(col.begin(), col.end(), static_cast<double>(m));
    } else if (cfg.approx_k == 0) {
        const auto &prefix = survivor_prefix[s];
        for (std::size_t t = 0; t < cfg.trials; ++t) {
            col[t] = static_cast<double>(
                prefix[static_cast<std::size_t>(m - 1) * cfg.trials +
                       t]);
        }
    } else {
        col = n_pools.at(key);
    }
    return fused_count_cols_.emplace(key, std::move(col))
        .first->second;
}

ar::symbolic::ExprPtr
DesignSpaceEvaluator::designExpr(const ar::model::CoreConfig &config)
{
    // Resolved symbolic speedup per distinct type count; designs
    // with the same k share the resolved tree and differ only in
    // which shared columns their symbols are renamed onto.
    const auto &types = config.types();
    const std::size_t k = types.size();
    auto rit = resolved_by_k_.find(k);
    if (rit == resolved_by_k_.end()) {
        rit = resolved_by_k_
                  .emplace(k, ar::model::buildHillMartySystem(k)
                                  .resolve("Speedup"))
                  .first;
    }
    std::map<std::string, std::string> renames;
    std::set<std::size_t> sizes_used;
    for (std::size_t i = 0; i < k; ++i) {
        const auto it = std::find(size_values.begin(),
                                  size_values.end(), types[i].area);
        const std::size_t s =
            static_cast<std::size_t>(it - size_values.begin());
        sizes_used.insert(s);
        renames[ar::model::names::corePerf(i)] =
            "P@" + std::to_string(s);
        renames[ar::model::names::coreCount(i)] =
            "N@" + std::to_string(s) + "x" +
            std::to_string(types[i].count);
    }
    ar::symbolic::ExprPtr expr =
        ar::symbolic::renameSymbols(rit->second, renames);
    if (!spec.core_states.empty()) {
        // Multi-state degradation: every per-size performance column
        // is scaled by that size's sampled state multiplier.
        // substitute() is single-pass, so the self-reference in
        // P@s -> P@s * S@s cannot recurse.
        ar::symbolic::Bindings subs;
        for (const std::size_t s : sizes_used) {
            const std::string p = "P@" + std::to_string(s);
            subs[p] = ar::symbolic::Expr::mul(
                ar::symbolic::Expr::symbol(p),
                ar::symbolic::Expr::symbol("S@" + std::to_string(s)));
        }
        expr = ar::symbolic::substitute(expr, subs);
    }
    return expr;
}

void
DesignSpaceEvaluator::buildFusedProgram()
{
    if (fused_prog_) {
        if (fused_pending_.empty())
            return;
        // Absorb deferred design edits: unedited outputs keep their
        // compiled source, edited ones re-lower their cone through
        // the program's warm builder.
        obs::ScopedPhase phase("sweep.compile",
                               sweepMetrics().compile_ns);
        std::vector<ar::symbolic::ExprPtr> forest;
        forest.reserve(designs.size());
        for (std::size_t o = 0; o < designs.size(); ++o) {
            forest.push_back(fused_pending_.count(o)
                                 ? designExpr(designs[o])
                                 : fused_prog_->source(o));
        }
        const std::size_t cone =
            fused_prog_->recompile(std::move(forest));
        if (obs::metricsEnabled())
            sweepMetrics().incr_cone_nodes.add(cone);
        fused_pending_.clear();
        return;
    }
    obs::ScopedPhase phase("sweep.compile",
                           sweepMetrics().compile_ns);
    std::vector<ar::symbolic::ExprPtr> forest;
    forest.reserve(designs.size());
    for (const auto &config : designs)
        forest.push_back(designExpr(config));
    fused_prog_ = std::make_unique<ar::symbolic::CompiledProgram>(
        std::move(forest));
    if (obs::metricsEnabled()) {
        const auto &stats = fused_prog_->stats();
        sweepMetrics().program_ops.add(stats.program_ops);
        sweepMetrics().cse_saved_ops.add(stats.naive_ops -
                                         stats.program_ops);
    }
}

const double *
DesignSpaceEvaluator::columnFor(const std::string &name)
{
    if (name == "f")
        return f_pool.data();
    if (name == "c")
        return c_pool.data();
    if (name.rfind("P@", 0) == 0) {
        const auto s =
            static_cast<std::size_t>(std::stoul(name.substr(2)));
        return perf_pools.at(s).data();
    }
    if (name.rfind("S@", 0) == 0) {
        const auto s =
            static_cast<std::size_t>(std::stoul(name.substr(2)));
        return state_pools.at(s).data();
    }
    if (name.rfind("N@", 0) == 0) {
        const auto x = name.find('x');
        const auto s = static_cast<std::size_t>(
            std::stoul(name.substr(2, x - 2)));
        const auto m =
            static_cast<unsigned>(std::stoul(name.substr(x + 1)));
        return countColumn(s, m).data();
    }
    ar::util::fatal("DesignSpaceEvaluator: unexpected program "
                    "argument '", name, "'");
}

void
DesignSpaceEvaluator::rebindFusedColumns()
{
    // Pool rebuilds (and count-column invalidation) may move the
    // storage the program's argument columns alias, so the pointers
    // are re-derived from the argument names before every sweep.
    fused_cols_.clear();
    fused_cols_.reserve(fused_prog_->argNames().size());
    for (const auto &name : fused_prog_->argNames())
        fused_cols_.push_back(columnFor(name));
}

void
DesignSpaceEvaluator::computeDesignSamples(std::size_t d,
                                           double reference_speedup,
                                           std::vector<double> &samples)
{
    const std::size_t trials = cfg.trials;
    samples.resize(trials);

    if (cfg.backend == SweepBackend::FusedProgram) {
        // A one-output tape over the same renamed expression the
        // fused program holds for this design.  Every tape op is
        // elementwise, so dropping the other outputs and the block
        // structure of the full sweep cannot change the bits.
        const ar::symbolic::CompiledExpr fn(designExpr(designs[d]));
        std::vector<ar::symbolic::BatchArg> bargs;
        bargs.reserve(fn.argNames().size());
        for (const auto &name : fn.argNames())
            bargs.push_back({columnFor(name), false});
        fn.evalBatch(bargs, trials, samples.data());
        for (std::size_t t = 0; t < trials; ++t)
            samples[t] /= reference_speedup;
        return;
    }

    std::vector<std::size_t> size_index;
    std::vector<const double *> n_pool_ptr;
    std::vector<double> perf_buf;
    std::vector<double> count_buf;

    const auto &config = designs[d];
    const auto &types = config.types();
    const std::size_t k = types.size();

    size_index.resize(k);
    n_pool_ptr.assign(k, nullptr);
    perf_buf.resize(k);
    count_buf.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
        const auto it = std::find(size_values.begin(),
                                  size_values.end(), types[i].area);
        size_index[i] =
            static_cast<std::size_t>(it - size_values.begin());
        if (spec.fab && cfg.approx_k > 0) {
            n_pool_ptr[i] =
                n_pools.at({size_index[i], types[i].count}).data();
        }
    }

    const bool has_states = !spec.core_states.empty();
    for (std::size_t t = 0; t < trials; ++t) {
        for (std::size_t i = 0; i < k; ++i) {
            const std::size_t s = size_index[i];
            perf_buf[i] = has_states
                              ? perf_pools[s][t] * state_pools[s][t]
                              : perf_pools[s][t];
            if (!spec.fab) {
                count_buf[i] = static_cast<double>(types[i].count);
            } else if (cfg.approx_k == 0) {
                const unsigned m = types[i].count;
                count_buf[i] = static_cast<double>(
                    survivor_prefix[s][static_cast<std::size_t>(
                                           m - 1) *
                                           trials +
                                       t]);
            } else {
                count_buf[i] = n_pool_ptr[i][t];
            }
        }
        const double speedup =
            ar::model::HillMartyEvaluator::speedup(
                f_pool[t], c_pool[t], perf_buf, count_buf);
        samples[t] = speedup / reference_speedup;
    }
}

std::optional<std::vector<DesignOutcome>>
DesignSpaceEvaluator::tryIncrementalSweep(
    const ar::risk::RiskFunction &fn, double reference_speedup)
{
    obs::TraceSpan span("sweep.incremental");
    obs::ScopedPhase phase("sweep.eval", sweepMetrics().eval_ns);
    const std::size_t trials = cfg.trials;
    std::vector<double> samples;
    for (std::size_t d = 0; d < designs.size(); ++d) {
        if (!design_dirty_[d])
            continue;
        cfg.cancel.throwIfExpired("design sweep");
        computeDesignSamples(d, reference_speedup, samples);
        for (std::size_t t = 0; t < trials; ++t) {
            // A fault anywhere sends the sweep through the full
            // pass: policy application and the report are arbitrated
            // across all designs, not per design.
            if (!std::isfinite(samples[t]))
                return std::nullopt;
        }
        DesignOutcome &out = cached_outcomes_[d];
        out = {};
        out.design_index = d;
        out.effective_trials = trials;
        out.expected = ar::math::mean(samples);
        out.stddev = trials > 1 ? ar::math::stddev(samples) : 0.0;
        out.risk = ar::risk::archRisk(samples, 1.0, fn);
        if (cfg.keep_samples)
            kept[d] = samples;
        if (obs::metricsEnabled())
            sweepMetrics().designs_done.add();
        design_dirty_[d] = false;
    }
    // The cached pass was fault-free and the recomputed designs are
    // too, so the report is the clean one a full pass would build.
    report_ = {};
    report_.policy = cfg.fault_policy;
    report_.trials = trials;
    report_.by_output.assign(designs.size(), 0);
    report_.effective_trials = trials;
    return cached_outcomes_;
}

void
DesignSpaceEvaluator::rememberOutcomes(
    const std::vector<DesignOutcome> &outcomes,
    const ar::risk::RiskFunction &fn, double reference_speedup,
    bool fault_free)
{
    cached_outcomes_ = outcomes;
    design_dirty_.assign(designs.size(), false);
    outcomes_valid_ = true;
    last_fault_free_ = fault_free;
    last_fn_ = &fn;
    last_fn_type_ = typeid(fn).hash_code();
    std::memcpy(&last_ref_bits_, &reference_speedup,
                sizeof last_ref_bits_);
}

std::vector<DesignOutcome>
DesignSpaceEvaluator::evaluateAll(const ar::risk::RiskFunction &fn,
                                  double reference_speedup)
{
    if (reference_speedup <= 0.0)
        ar::util::fatal("DesignSpaceEvaluator: reference speedup must "
                        "be positive, got ", reference_speedup);
    obs::TraceSpan run_span("sweep.evaluate_all");
    cfg.cancel.throwIfExpired("design sweep");
    if (obs::metricsEnabled()) {
        sweepMetrics().runs.add();
        sweepMetrics().designs.add(designs.size());
        sweepMetrics().trials.add(cfg.trials);
    }
    // Revalidate the shared pools: a no-op replay of the RNG
    // checkpoints when nothing is dirty, a targeted rebuild of just
    // the dirtied stages after a what-if edit.  A rebuilt stage
    // moves samples under every design, so the outcome cache dies
    // with it.
    for (std::size_t st = 0; st < kNumStages; ++st) {
        if (dirty_[st]) {
            outcomes_valid_ = false;
            break;
        }
    }
    buildPools();

    if (cfg.stream) {
        if (cfg.keep_samples) {
            ar::util::fatal("DesignSpaceEvaluator: stream drops the "
                            "per-design sample columns; disable "
                            "keep_samples to stream");
        }
        if (cfg.fault_policy == ar::util::FaultPolicy::Saturate) {
            ar::util::fatal("DesignSpaceEvaluator: stream mode is "
                            "incompatible with the saturate policy "
                            "(saturation needs the materialized "
                            "sample columns)");
        }
    }

    std::uint64_t ref_bits;
    std::memcpy(&ref_bits, &reference_speedup, sizeof ref_bits);
    if (!cfg.stream && outcomes_valid_ && last_fault_free_ &&
        last_fn_ == static_cast<const void *>(&fn) &&
        last_fn_type_ == typeid(fn).hash_code() &&
        last_ref_bits_ == ref_bits) {
        if (auto cached = tryIncrementalSweep(fn, reference_speedup))
            return std::move(*cached);
    }
    outcomes_valid_ = false; // Invalid until the pass completes.

    const std::size_t trials = cfg.trials;
    std::vector<DesignOutcome> outcomes(designs.size());
    if (cfg.keep_samples)
        kept.assign(designs.size(), {});

    // Faulty designs park their raw samples here; stats for them are
    // deferred to the serial post-pass so policy application and the
    // report are independent of thread scheduling.
    std::vector<std::vector<double>> deferred(designs.size());
    std::vector<std::vector<std::size_t>> bad_trials(designs.size());

    // Phase 1: normalized speedup samples per design, through the
    // block-pipelined engine (FusedProgram backend).  Keep mode
    // retains every design column and leaves fault arbitration to
    // the bespoke phases below; stream mode accumulates per-design
    // statistics block by block (PerOutput skip: pools are shared,
    // so trial t can fault for one design and not another) and never
    // materializes the trials x designs matrix.
    std::vector<std::vector<double>> all(designs.size());
    if (cfg.backend == SweepBackend::FusedProgram) {
        buildFusedProgram();
        rebindFusedColumns();
        ar::mc::StreamEngine::Spec espec;
        espec.trials = trials;
        espec.dims = 0; // Blocks read the shared pools directly.
        espec.outputs = designs.size();
        espec.threads = cfg.threads;
        espec.policy = cfg.fault_policy;
        espec.cancel = cfg.cancel;
        espec.stream.keep_samples = !cfg.stream;
        espec.fault_skip = ar::mc::StreamEngine::FaultSkip::PerOutput;
        espec.accumulate = cfg.stream;
        espec.apply_policy = false;
        std::size_t pool_bytes =
            (f_pool.size() + c_pool.size()) * sizeof(double);
        for (const auto &p : perf_pools)
            pool_bytes += p.size() * sizeof(double);
        for (const auto &p : state_pools)
            pool_bytes += p.size() * sizeof(double);
        for (const auto &p : survivor_prefix)
            pool_bytes += p.size() * sizeof(std::uint16_t);
        for (const auto &kv : n_pools)
            pool_bytes += kv.second.size() * sizeof(double);
        for (const auto &kv : fused_count_cols_)
            pool_bytes += kv.second.size() * sizeof(double);
        espec.extra_bytes = pool_bytes;

        ar::mc::StreamEngine::Hooks hooks;
        // One fused pass per trial block computes every design.
        hooks.eval = [&](std::size_t t0, std::size_t len,
                         const std::vector<std::vector<double>> &,
                         const std::vector<double *> &outs) {
            std::vector<ar::symbolic::BatchArg> bargs(
                fused_cols_.size());
            for (std::size_t a = 0; a < fused_cols_.size(); ++a)
                bargs[a] = {fused_cols_[a] + t0, false};
            fused_prog_->evalBatch(bargs, len, outs);
            for (std::size_t d = 0; d < designs.size(); ++d) {
                for (std::size_t i = 0; i < len; ++i)
                    outs[d][i] /= reference_speedup;
            }
        };
        if (cfg.stream) {
            espec.risk_scope = ar::mc::StreamEngine::RiskScope::All;
            espec.risk_reference = 1.0;
            hooks.cost = [&fn](std::size_t, double x) {
                return fn.cost(x, 1.0);
            };
            hooks.diagnose =
                [](std::size_t, std::size_t,
                   const std::vector<std::vector<double>> &,
                   std::size_t, double value,
                   ar::util::FaultKind &kind, std::string &op) {
                    kind = ar::util::classifyNonFinite(value);
                    op = "hill-marty speedup";
                };
        }

        ar::mc::StreamEngine::Result er;
        {
            obs::ScopedPhase phase("sweep.eval",
                                   sweepMetrics().eval_ns);
            er = ar::mc::StreamEngine::run(espec, hooks);
        }

        if (cfg.stream) {
            // The engine's fault report already matches the bespoke
            // serial pass below: per-block (trial, design) events
            // merged in block order, by_output keyed by design.
            report_ = std::move(er.faults);
            if (report_.faulty_trials > 0 &&
                cfg.fault_policy ==
                    ar::util::FaultPolicy::FailFast) {
                report_.effective_trials =
                    trials - report_.faulty_trials;
                throw ar::util::FaultError(report_);
            }
            std::size_t min_effective = trials;
            for (std::size_t d = 0; d < designs.size(); ++d) {
                const auto &s = er.stats[d];
                DesignOutcome &out = outcomes[d];
                out.design_index = d;
                out.faults = report_.by_output[d];
                out.effective_trials = s.moments.count();
                if (out.effective_trials == 0)
                    throw ar::util::FaultError(report_);
                min_effective =
                    std::min(min_effective, out.effective_trials);
                out.expected = s.moments.mean();
                out.stddev = out.effective_trials > 1
                                 ? s.moments.stddev()
                                 : 0.0;
                out.risk = s.risk.risk();
                if (obs::metricsEnabled())
                    sweepMetrics().designs_done.add();
            }
            report_.effective_trials = min_effective;
            return outcomes;
        }
        for (std::size_t d = 0; d < designs.size(); ++d)
            all[d] = std::move(er.samples[d]);
    } else {
        // Designs only read the shared pools, so the sweep
        // parallelizes over designs; every buffer is per-design.
        obs::ScopedPhase phase("sweep.eval", sweepMetrics().eval_ns);
        ar::util::parallelFor(cfg.threads, designs.size(),
                              [&](std::size_t d) {
            std::vector<double> samples;
            computeDesignSamples(d, reference_speedup, samples);
            all[d] = std::move(samples);
        }, cfg.cancel);
    }

    // Phase 2: per-design fault scan and statistics (shared by both
    // backends).
    {
        obs::ScopedPhase phase("sweep.stats",
                               sweepMetrics().stats_ns);
        ar::util::parallelFor(cfg.threads, designs.size(),
                              [&](std::size_t d) {
            auto &samples = all[d];
            DesignOutcome &out = outcomes[d];
            out.design_index = d;
            out.effective_trials = trials;
            for (std::size_t t = 0; t < trials; ++t) {
                if (!std::isfinite(samples[t]))
                    bad_trials[d].push_back(t);
            }
            if (obs::metricsEnabled())
                sweepMetrics().designs_done.add();
            if (!bad_trials[d].empty()) {
                // Stats deferred to the serial fault post-pass.
                deferred[d] = std::move(samples);
                return;
            }
            out.expected = ar::math::mean(samples);
            out.stddev = trials > 1 ? ar::math::stddev(samples) : 0.0;
            out.risk = ar::risk::archRisk(samples, 1.0, fn);
            if (cfg.keep_samples)
                kept[d] = std::move(samples);
        }, cfg.cancel);
    }

    // Serial fault post-pass: assemble the report in (trial, design)
    // order from the materialized per-design results, then apply the
    // policy per design.
    cfg.cancel.throwIfExpired("design sweep");
    report_ = {};
    report_.policy = cfg.fault_policy;
    report_.trials = trials;
    report_.by_output.assign(designs.size(), 0);
    report_.effective_trials = trials;

    struct Event
    {
        std::size_t trial;
        std::size_t design;
        ar::util::FaultKind kind;
    };
    std::vector<Event> events;
    std::vector<std::size_t> distinct_trials;
    for (std::size_t d = 0; d < designs.size(); ++d) {
        for (std::size_t t : bad_trials[d]) {
            events.push_back(
                {t, d, ar::util::classifyNonFinite(deferred[d][t])});
            distinct_trials.push_back(t);
        }
    }
    if (events.empty()) {
        rememberOutcomes(outcomes, fn, reference_speedup, true);
        return outcomes;
    }

    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.trial != b.trial ? a.trial < b.trial
                                            : a.design < b.design;
              });
    for (const auto &ev : events)
        report_.record(ev.trial, ev.design, ev.kind, "hill-marty speedup");
    std::sort(distinct_trials.begin(), distinct_trials.end());
    distinct_trials.erase(
        std::unique(distinct_trials.begin(), distinct_trials.end()),
        distinct_trials.end());
    report_.faulty_trials = distinct_trials.size();

    if (cfg.fault_policy == ar::util::FaultPolicy::FailFast) {
        report_.effective_trials = trials - report_.faulty_trials;
        throw ar::util::FaultError(report_);
    }

    std::size_t min_effective = trials;
    for (std::size_t d = 0; d < designs.size(); ++d) {
        if (bad_trials[d].empty())
            continue;
        auto &samples = deferred[d];
        if (cfg.fault_policy == ar::util::FaultPolicy::Discard)
            ar::util::discardSamples(samples, bad_trials[d]);
        else
            ar::util::saturateSamples(samples, report_);
        if (samples.empty())
            throw ar::util::FaultError(report_);
        DesignOutcome &out = outcomes[d];
        out.faults = bad_trials[d].size();
        out.effective_trials = samples.size();
        min_effective = std::min(min_effective, samples.size());
        out.expected = ar::math::mean(samples);
        out.stddev = samples.size() > 1 ? ar::math::stddev(samples)
                                        : 0.0;
        out.risk = ar::risk::archRisk(samples, 1.0, fn);
        if (cfg.keep_samples)
            kept[d] = std::move(samples);
    }
    report_.effective_trials = min_effective;
    rememberOutcomes(outcomes, fn, reference_speedup, false);
    return outcomes;
}

const std::vector<double> &
DesignSpaceEvaluator::samples(std::size_t design_index) const
{
    if (!cfg.keep_samples)
        ar::util::fatal("DesignSpaceEvaluator::samples: enable "
                        "keep_samples in SweepConfig first");
    return kept.at(design_index);
}

} // namespace ar::explore
