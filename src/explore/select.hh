/**
 * @file
 * Constrained design selection queries over sweep outcomes: the
 * questions a project manager actually asks once the performance/
 * risk plane is populated ("cheapest risk at no more than X%
 * performance loss", "fastest design under a risk budget").
 */

#ifndef AR_EXPLORE_SELECT_HH
#define AR_EXPLORE_SELECT_HH

#include <optional>
#include <vector>

#include "explore/evaluate.hh"

namespace ar::explore
{

/**
 * Minimum-risk design whose expected performance is at least
 * @p perf_floor.
 *
 * @param outcomes Sweep outcomes.
 * @param perf_floor Expected-performance lower bound (same units as
 *        DesignOutcome::expected).
 * @return index of the best design, or std::nullopt when no design
 *         meets the floor.
 */
std::optional<std::size_t>
minRiskWithPerfFloor(const std::vector<DesignOutcome> &outcomes,
                     double perf_floor);

/**
 * Maximum-expected-performance design whose risk does not exceed
 * @p risk_cap.
 *
 * @return index of the best design, or std::nullopt when no design
 *         fits the budget.
 */
std::optional<std::size_t>
maxPerfWithRiskCap(const std::vector<DesignOutcome> &outcomes,
                   double risk_cap);

/**
 * The "knee" of the Pareto front: the front point minimizing
 * normalized distance to the utopia point (best expected, best
 * risk).  A reasonable single recommendation when no explicit
 * constraint is given.
 *
 * @param outcomes Sweep outcomes (must be non-empty).
 */
std::size_t kneePoint(const std::vector<DesignOutcome> &outcomes);

} // namespace ar::explore

#endif // AR_EXPLORE_SELECT_HH
