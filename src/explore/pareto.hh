/**
 * @file
 * Pareto-front extraction in the (expected performance, risk) plane
 * (Figure 11 of the paper): a design is Pareto-optimal when no other
 * design has both higher expected performance and lower risk.
 */

#ifndef AR_EXPLORE_PARETO_HH
#define AR_EXPLORE_PARETO_HH

#include <vector>

#include "explore/evaluate.hh"

namespace ar::explore
{

/**
 * Indices of the Pareto-optimal outcomes, ordered by descending
 * expected performance (equivalently ascending risk along the front).
 *
 * @param outcomes Design outcomes (expected maximized, risk
 *        minimized).
 */
std::vector<std::size_t>
paretoFront(const std::vector<DesignOutcome> &outcomes);

/**
 * @return true when outcome @p a dominates @p b (at least as good in
 * both objectives and strictly better in one).
 */
bool dominates(const DesignOutcome &a, const DesignOutcome &b);

} // namespace ar::explore

#endif // AR_EXPLORE_PARETO_HH
