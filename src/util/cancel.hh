/**
 * @file
 * Cooperative cancellation and deadlines.
 *
 * A CancelToken is a cheap, copyable handle to shared cancellation
 * state: long-running engines (the Monte-Carlo trial loop, design
 * sweeps, Sobol estimation) poll it at batch boundaries and abandon
 * work by throwing CancelledError, leaving the worker that ran them
 * healthy.  Two things can trip a token:
 *
 *  - an explicit cancel() -- a single relaxed atomic store, safe to
 *    call from any thread and from asynchronous signal handlers
 *    (SIGINT/SIGTERM drain paths), and
 *  - an absolute deadline fixed at construction, checked against the
 *    monotonic clock on every poll.
 *
 * A default-constructed token is *null*: it never cancels and its
 * checks compile down to one pointer test, so the hot paths pay
 * nothing when nobody asked for cancellation.  Cancellation is
 * strictly cooperative and has no effect on results: a cancelled run
 * throws instead of returning, and re-running the same seed from
 * scratch yields bit-identical output (tokens are polled, never woven
 * into RNG streams or trial scheduling).
 */

#ifndef AR_UTIL_CANCEL_HH
#define AR_UTIL_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "util/logging.hh"

namespace ar::util
{

/** Why a token tripped (None = still live). */
enum class CancelReason : std::uint8_t
{
    None = 0,        ///< Not cancelled.
    Cancelled,       ///< Explicit cancel() (user abort, server drain).
    DeadlineExpired, ///< The construction-time deadline passed.
};

/** @return stable lowercase name ("cancelled", "deadline-expired"). */
const char *cancelReasonName(CancelReason reason);

/**
 * Raised by cancellable engines when their token trips.  Derives from
 * FatalError so existing catch sites recover; new code can catch the
 * narrow type to distinguish "asked to stop" from real failures.
 */
class CancelledError : public FatalError
{
  public:
    CancelledError(CancelReason reason, const std::string &detail);

    /** @return what tripped the token. */
    CancelReason reason() const { return reason_; }

  private:
    CancelReason reason_;
};

/** Copyable handle to shared cancellation state (see file comment). */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Null token: cancellable() is false, check() is always None. */
    CancelToken() = default;

    /** @return a live token with no deadline (manual cancel only). */
    static CancelToken create();

    /** @return a live token that expires at @p deadline. */
    static CancelToken withDeadline(Clock::time_point deadline);

    /** @return a live token that expires @p budget from now. */
    static CancelToken withTimeout(std::chrono::nanoseconds budget);

    /** @return true when this token can ever cancel (non-null). */
    bool cancellable() const { return state_ != nullptr; }

    /**
     * Trip the token (idempotent).  One relaxed store: safe from any
     * thread and from signal handlers.  No-op on a null token.
     */
    void
    cancel() const
    {
        if (state_)
            state_->cancelled.store(true, std::memory_order_relaxed);
    }

    /** Poll: explicit cancel wins over deadline expiry. */
    CancelReason
    check() const
    {
        if (!state_)
            return CancelReason::None;
        if (state_->cancelled.load(std::memory_order_relaxed))
            return CancelReason::Cancelled;
        if (state_->has_deadline && Clock::now() >= state_->deadline)
            return CancelReason::DeadlineExpired;
        return CancelReason::None;
    }

    /** @return true when the token has tripped. */
    bool expired() const { return check() != CancelReason::None; }

    /**
     * @param what Context for the error message ("propagation", ...).
     * @throws CancelledError when the token has tripped.
     */
    void throwIfExpired(const char *what) const;

    /** @return true when a deadline was set at construction. */
    bool
    hasDeadline() const
    {
        return state_ && state_->has_deadline;
    }

    /** @return the deadline; only meaningful when hasDeadline(). */
    Clock::time_point
    deadline() const
    {
        return state_ ? state_->deadline : Clock::time_point{};
    }

  private:
    struct State
    {
        std::atomic<bool> cancelled{false};
        bool has_deadline = false;
        Clock::time_point deadline{};
    };

    explicit CancelToken(std::shared_ptr<State> state)
        : state_(std::move(state))
    {}

    std::shared_ptr<State> state_;
};

} // namespace ar::util

#endif // AR_UTIL_CANCEL_HH
