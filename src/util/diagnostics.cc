#include "util/diagnostics.hh"

#include <sstream>

namespace ar::util
{

std::string
Diagnostic::render() const
{
    std::ostringstream oss;
    if (line > 0 && column > 0)
        oss << "line " << line << ", column " << column << ": ";
    else if (line > 0)
        oss << "line " << line << ": ";
    oss << message;
    if (!source.empty()) {
        oss << "\n  " << source;
        if (column > 0 && column <= source.size() + 1) {
            oss << "\n  ";
            // The caret aligns under 1-based `column`; tabs in the
            // source keep their width so the caret stays under the
            // offending character.
            for (std::size_t i = 0; i + 1 < column; ++i)
                oss << (source[i] == '\t' ? '\t' : ' ');
            oss << '^';
        }
    }
    return oss.str();
}

void
raiseDiagnostic(std::string message)
{
    throw DiagnosticError(Diagnostic{std::move(message), 0, 0, {}});
}

void
raiseParse(std::string message, std::size_t line, std::size_t column,
           std::string source)
{
    throw ParseError(
        Diagnostic{std::move(message), line, column, std::move(source)});
}

} // namespace ar::util
