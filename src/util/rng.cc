#include "util/rng.hh"

#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace ar::util
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &word : s)
        word = sm.next();
}

std::uint64_t
Rng::nextU64()
{
    const std::uint64_t result = rotl(s[0] + s[3], 23) + s[0];
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::uniformInt: bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
    std::uint64_t draw;
    do {
        draw = nextU64();
    } while (draw >= limit);
    return draw % n;
}

double
Rng::gaussian()
{
    if (have_spare) {
        have_spare = false;
        return spare;
    }
    double u, v, r2;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        r2 = u * u + v * v;
    } while (r2 >= 1.0 || r2 == 0.0);
    const double scale = std::sqrt(-2.0 * std::log(r2) / r2);
    spare = v * scale;
    have_spare = true;
    return u * scale;
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

Rng
Rng::fork()
{
    // Seed the child from two fresh draws mixed through SplitMix64.
    SplitMix64 sm(nextU64() ^ rotl(nextU64(), 29));
    return Rng(sm.next());
}

void
Rng::jump()
{
    static constexpr std::uint64_t kJump[] = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
        0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};

    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (const std::uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (std::uint64_t{1} << b)) {
                s0 ^= s[0];
                s1 ^= s[1];
                s2 ^= s[2];
                s3 ^= s[3];
            }
            nextU64();
        }
    }
    s[0] = s0;
    s[1] = s1;
    s[2] = s2;
    s[3] = s3;
    have_spare = false;
}

Rng
Rng::substream(std::uint64_t master_seed, std::uint64_t index)
{
    // Lift the master seed out of the user's seed domain, then spread
    // the counter with an odd multiplier; the Rng constructor mixes
    // the combination through SplitMix64 into the full 256-bit state.
    SplitMix64 mix(master_seed);
    const std::uint64_t base = mix.next();
    return Rng(base ^ ((index + 1) * 0xd1342543de82ef95ULL));
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    shuffle(idx);
    return idx;
}

} // namespace ar::util
