/**
 * @file
 * Small file-IO helpers: reading whitespace/comma/newline separated
 * numeric samples (the form measurement data usually arrives in for
 * the extraction pipeline).
 */

#ifndef AR_UTIL_IO_HH
#define AR_UTIL_IO_HH

#include <string>
#include <vector>

namespace ar::util
{

/**
 * Read all numbers from a text file.  Values may be separated by
 * whitespace, commas, or newlines; lines starting with '#' are
 * comments.  Fatal on unreadable files or non-numeric tokens.
 *
 * @param path File to read.
 */
std::vector<double> readNumbers(const std::string &path);

/** Parse numbers from a string with the same rules as readNumbers. */
std::vector<double> parseNumbers(const std::string &text);

/** Write one number per line; fatal when the file cannot be opened. */
void writeNumbers(const std::string &path,
                  const std::vector<double> &values);

} // namespace ar::util

#endif // AR_UTIL_IO_HH
