#include "util/cancel.hh"

namespace ar::util
{

const char *
cancelReasonName(CancelReason reason)
{
    switch (reason) {
      case CancelReason::None:
        return "none";
      case CancelReason::Cancelled:
        return "cancelled";
      case CancelReason::DeadlineExpired:
        return "deadline-expired";
    }
    return "unknown";
}

CancelledError::CancelledError(CancelReason reason,
                               const std::string &detail)
    : FatalError(detail), reason_(reason)
{
}

void
CancelToken::throwIfExpired(const char *what) const
{
    const CancelReason reason = check();
    if (reason == CancelReason::None)
        return;
    throw CancelledError(
        reason, std::string(what) + ": " +
                    (reason == CancelReason::DeadlineExpired
                         ? "deadline expired"
                         : "cancelled"));
}

CancelToken
CancelToken::create()
{
    return CancelToken(std::make_shared<State>());
}

CancelToken
CancelToken::withDeadline(Clock::time_point deadline)
{
    auto state = std::make_shared<State>();
    state->has_deadline = true;
    state->deadline = deadline;
    return CancelToken(std::move(state));
}

CancelToken
CancelToken::withTimeout(std::chrono::nanoseconds budget)
{
    return withDeadline(Clock::now() + budget);
}

} // namespace ar::util
