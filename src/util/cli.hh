/**
 * @file
 * Minimal command-line option parser used by examples and benches.
 *
 * Supports `--name value`, `--name=value` and boolean `--flag` options.
 * Unknown options are fatal; positional arguments are collected.
 */

#ifndef AR_UTIL_CLI_HH
#define AR_UTIL_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace ar::util
{

/** Parsed command line with typed accessors and defaults. */
class CliOptions
{
  public:
    /**
     * Declare an option before parsing.
     *
     * @param name Option name without leading dashes.
     * @param def Default value (empty string for none).
     * @param help One-line description for usage output.
     * @param is_flag True for boolean options taking no value.
     */
    void declare(const std::string &name, const std::string &def,
                 const std::string &help, bool is_flag = false);

    /**
     * Parse argv.  `--help` prints usage and returns false.
     *
     * @return true when execution should continue.
     */
    bool parse(int argc, const char *const *argv);

    /** @return string value of an option (declared default if unset). */
    std::string getString(const std::string &name) const;

    /** @return option parsed as double. */
    double getDouble(const std::string &name) const;

    /** @return option parsed as long. */
    long getInt(const std::string &name) const;

    /** @return true when a boolean flag was passed. */
    bool getFlag(const std::string &name) const;

    /** @return positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const { return pos_args; }

    /** Render a usage message for all declared options. */
    std::string usage(const std::string &prog) const;

  private:
    struct Option
    {
        std::string value;
        std::string help;
        bool is_flag = false;
        bool seen = false;
    };

    const Option &find(const std::string &name) const;

    std::map<std::string, Option> opts;
    std::vector<std::string> pos_args;
};

} // namespace ar::util

#endif // AR_UTIL_CLI_HH
