#include "util/cli.hh"

#include <cstdio>
#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ar::util
{

void
CliOptions::declare(const std::string &name, const std::string &def,
                    const std::string &help, bool is_flag)
{
    Option opt;
    opt.value = def;
    opt.help = help;
    opt.is_flag = is_flag;
    opts[name] = opt;
}

bool
CliOptions::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage(argv[0]).c_str(), stdout);
            return false;
        }
        if (!startsWith(arg, "--")) {
            pos_args.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        if (auto eq = name.find('='); eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        auto it = opts.find(name);
        if (it == opts.end())
            fatal("unknown option --", name);
        Option &opt = it->second;
        if (opt.is_flag) {
            if (has_value)
                fatal("flag --", name, " does not take a value");
            opt.value = "1";
        } else {
            if (!has_value) {
                if (i + 1 >= argc)
                    fatal("option --", name, " requires a value");
                value = argv[++i];
            }
            opt.value = value;
        }
        opt.seen = true;
    }
    return true;
}

const CliOptions::Option &
CliOptions::find(const std::string &name) const
{
    auto it = opts.find(name);
    if (it == opts.end())
        panic("undeclared option queried: ", name);
    return it->second;
}

std::string
CliOptions::getString(const std::string &name) const
{
    return find(name).value;
}

double
CliOptions::getDouble(const std::string &name) const
{
    double out = 0.0;
    if (!parseDouble(find(name).value, out))
        fatal("option --", name, " is not a number: ", find(name).value);
    return out;
}

long
CliOptions::getInt(const std::string &name) const
{
    return static_cast<long>(getDouble(name));
}

bool
CliOptions::getFlag(const std::string &name) const
{
    return find(name).value == "1";
}

std::string
CliOptions::usage(const std::string &prog) const
{
    std::ostringstream oss;
    oss << "usage: " << prog << " [options]\n";
    for (const auto &[name, opt] : opts) {
        oss << "  --" << name;
        if (!opt.is_flag)
            oss << " <value>";
        oss << "  " << opt.help;
        if (!opt.is_flag && !opt.value.empty())
            oss << " (default: " << opt.value << ")";
        oss << "\n";
    }
    return oss.str();
}

} // namespace ar::util
