/**
 * @file
 * Error-reporting and logging primitives for archrisk++.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad input,
 * impossible configuration) and panic() is for internal invariant
 * violations (library bugs).  Both throw exceptions rather than abort so
 * that library users and tests can recover.
 */

#ifndef AR_UTIL_LOGGING_HH
#define AR_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ar::util
{

/** Exception raised by fatal(): the caller supplied invalid input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Exception raised by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

namespace detail
{

/** Fold a pack of streamable values into a single string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an unrecoverable user-level error.
 *
 * @param args Streamable message fragments.
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an internal library bug.
 *
 * @param args Streamable message fragments.
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/**
 * Emit a non-fatal warning on stderr.
 *
 * @param args Streamable message fragments.
 */
void warnStr(const std::string &msg);

template <typename... Args>
void
warn(Args &&...args)
{
    warnStr(detail::concat(std::forward<Args>(args)...));
}

/**
 * Emit an informational message on stderr.
 *
 * @param args Streamable message fragments.
 */
void informStr(const std::string &msg);

template <typename... Args>
void
inform(Args &&...args)
{
    informStr(detail::concat(std::forward<Args>(args)...));
}

/** Globally silence warn()/inform() output (used by tests). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool isQuiet();

} // namespace ar::util

#endif // AR_UTIL_LOGGING_HH
