/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in archrisk++ flows through ar::util::Rng so
 * that every experiment is exactly reproducible from a seed.  The core
 * generator is xoshiro256++ seeded via SplitMix64; both are implemented
 * here rather than relying on <random> engines whose stream definitions
 * (for the distributions) vary across standard libraries.
 */

#ifndef AR_UTIL_RNG_HH
#define AR_UTIL_RNG_HH

#include <cstdint>
#include <vector>

namespace ar::util
{

/**
 * SplitMix64 generator.  Used for seeding and as a cheap stateless
 * mixing function.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** @return the next 64-bit value in the stream. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256++ pseudo-random generator with convenience draws for the
 * distributions the library needs internally (uniform, Gaussian,
 * integers, permutations).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded through SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9d2c5680u);

    /** @return next raw 64-bit draw. */
    std::uint64_t nextU64();

    /** @return a double uniform on [0, 1). */
    double uniform();

    /** @return a double uniform on [lo, hi). */
    double uniform(double lo, double hi);

    /**
     * @param n Exclusive upper bound; must be > 0.
     * @return an integer uniform on [0, n).
     */
    std::uint64_t uniformInt(std::uint64_t n);

    /** @return a standard Gaussian draw (Marsaglia polar method). */
    double gaussian();

    /** @return a Gaussian draw with the given mean and stddev. */
    double gaussian(double mean, double stddev);

    /**
     * Derive an independent child generator.  Streams of parent and
     * child do not overlap for any practical draw count.
     */
    Rng fork();

    /**
     * Advance the state by 2^128 steps (the canonical xoshiro256++
     * jump polynomial), yielding a stream disjoint from the original
     * for any practical draw count.
     */
    void jump();

    /**
     * The @p index -th independent substream of a master seed,
     * derived purely by counter: the stream depends only on
     * (master_seed, index), never on call order or thread count.
     * This is what parallel code uses to stay bit-reproducible for
     * any degree of concurrency.
     */
    static Rng substream(std::uint64_t master_seed,
                         std::uint64_t index);

    /** Fisher-Yates shuffle of an index vector [0, n). */
    std::vector<std::size_t> permutation(std::size_t n);

    /**
     * Exact state equality (xoshiro words plus the Gaussian spare).
     * Two equal generators produce identical draw streams forever;
     * incremental re-evaluation uses this to prove a skipped pool
     * stage would have consumed the same stream segment.
     */
    bool
    operator==(const Rng &o) const
    {
        if (have_spare != o.have_spare)
            return false;
        if (have_spare && spare != o.spare)
            return false;
        return s[0] == o.s[0] && s[1] == o.s[1] && s[2] == o.s[2] &&
               s[3] == o.s[3];
    }

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s[4];
    bool have_spare = false;
    double spare = 0.0;
};

} // namespace ar::util

#endif // AR_UTIL_RNG_HH
