/**
 * @file
 * Small string helpers shared across the library.
 */

#ifndef AR_UTIL_STRING_UTILS_HH
#define AR_UTIL_STRING_UTILS_HH

#include <string>
#include <string_view>
#include <vector>

namespace ar::util
{

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Join strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** @return true when @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** @return true when @p s ends with @p suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Render a double compactly (%.6g). */
std::string formatDouble(double v);

/**
 * Render a double with fixed precision.
 *
 * @param v Value to render.
 * @param digits Digits after the decimal point.
 */
std::string formatFixed(double v, int digits);

/** @return true when the string parses fully as a double. */
bool parseDouble(std::string_view s, double &out);

} // namespace ar::util

#endif // AR_UTIL_STRING_UTILS_HH
