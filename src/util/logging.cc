#include "util/logging.hh"

#include <atomic>
#include <iostream>

namespace ar::util
{

namespace
{

std::atomic<bool> quiet_flag{false};

} // namespace

void
warnStr(const std::string &msg)
{
    if (!quiet_flag.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << "\n";
}

void
informStr(const std::string &msg)
{
    if (!quiet_flag.load(std::memory_order_relaxed))
        std::cerr << "info: " << msg << "\n";
}

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

} // namespace ar::util
