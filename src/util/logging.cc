#include "util/logging.hh"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ar::util
{

namespace
{

std::atomic<bool> quiet_flag{false};

std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

/**
 * Compose the whole line first, then emit it as a single insertion
 * under a mutex.  warn()/inform() are called from parallelFor worker
 * threads (e.g. degenerate-stats guards), and unsynchronized
 * multi-part stream insertions interleave mid-line.
 */
void
emitLine(const char *prefix, const std::string &msg)
{
    if (quiet_flag.load(std::memory_order_relaxed))
        return;
    std::string line;
    line.reserve(std::char_traits<char>::length(prefix) + msg.size() +
                 1);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lk(emitMutex());
    std::cerr << line;
}

} // namespace

void
warnStr(const std::string &msg)
{
    emitLine("warn: ", msg);
}

void
informStr(const std::string &msg)
{
    emitLine("info: ", msg);
}

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

} // namespace ar::util
