#include "util/thread_pool.hh"

#include <algorithm>

#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace ar::util
{

namespace
{

/// Set while a thread executes a job body; nested parallelFor calls
/// detect it and run inline instead of re-entering the pool.
thread_local bool tl_in_job = false;

struct PoolMetrics
{
    obs::Counter jobs =
        obs::MetricsRegistry::global().counter("pool.jobs");
    obs::Counter indices =
        obs::MetricsRegistry::global().counter("pool.indices");
    obs::Histogram task_us = obs::MetricsRegistry::global().histogram(
        "pool.task_us",
        {10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0, 50000.0,
         100000.0});
    obs::Gauge queue_depth =
        obs::MetricsRegistry::global().gauge("pool.queue_depth");
    obs::Gauge threads =
        obs::MetricsRegistry::global().gauge("pool.threads");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m;
    return m;
}

/// Jobs submitted but not yet finished (waiting on job_serial_m or
/// running); feeds the pool.queue_depth gauge.
std::atomic<std::int64_t> g_pool_queue{0};

/// Balances g_pool_queue even when the job body throws.  Armed only
/// when metrics were enabled at submit time, so a flag flip mid-job
/// cannot unbalance the count.
struct QueueDepthGuard
{
    bool armed;

    explicit QueueDepthGuard(bool on) : armed(on)
    {
        if (armed) {
            const auto depth =
                g_pool_queue.fetch_add(1, std::memory_order_relaxed) +
                1;
            poolMetrics().queue_depth.set(
                static_cast<double>(depth));
        }
    }

    ~QueueDepthGuard()
    {
        if (armed) {
            const auto depth =
                g_pool_queue.fetch_sub(1, std::memory_order_relaxed) -
                1;
            poolMetrics().queue_depth.set(
                static_cast<double>(depth));
        }
    }
};

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t total = resolveThreads(threads);
    workers.reserve(total - 1);
    for (std::size_t i = 0; i + 1 < total; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(m);
        shutting_down = true;
    }
    cv_start.notify_all();
    for (auto &w : workers)
        w.join();
}

std::size_t
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t
ThreadPool::resolveThreads(std::size_t requested)
{
    return requested == 0 ? hardwareThreads() : requested;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(0);
    return pool;
}

void
ThreadPool::runJob()
{
    tl_in_job = true;
    const bool metrics = obs::metricsEnabled();
    for (;;) {
        const std::size_t i =
            next_index.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_n || aborted.load(std::memory_order_relaxed))
            break;
        const std::uint64_t t0 = metrics ? obs::detail::nowNs() : 0;
        try {
            (*job_body)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(err_m);
            if (!first_error)
                first_error = std::current_exception();
            aborted.store(true, std::memory_order_relaxed);
        }
        if (metrics) {
            poolMetrics().task_us.observe(
                static_cast<double>(obs::detail::nowNs() - t0) /
                1000.0);
        }
    }
    tl_in_job = false;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(m);
    std::uint64_t seen = 0;
    for (;;) {
        cv_start.wait(lk, [&] {
            return shutting_down || generation != seen;
        });
        if (shutting_down)
            return;
        seen = generation;
        if (workers_joined >= workers_wanted)
            continue; // this job already has enough hands
        ++workers_joined;
        ++workers_active;
        lk.unlock();
        runJob();
        lk.lock();
        --workers_active;
        cv_done.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body,
                        std::size_t max_concurrency)
{
    if (n == 0)
        return;
    std::size_t effective = size();
    if (max_concurrency != 0)
        effective = std::min(effective, max_concurrency);
    effective = std::min(effective, n);

    if (effective <= 1 || tl_in_job) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    const bool metrics = obs::metricsEnabled();
    if (metrics) {
        auto &pm = poolMetrics();
        pm.jobs.add();
        pm.indices.add(n);
        pm.threads.set(static_cast<double>(size()));
    }
    QueueDepthGuard depth_guard(metrics);
    obs::TraceSpan span("pool.parallel_for");

    // One job at a time per pool; callers queue here.
    std::lock_guard<std::mutex> serial(job_serial_m);
    {
        std::lock_guard<std::mutex> lk(m);
        job_body = &body;
        job_n = n;
        workers_wanted = effective - 1;
        workers_joined = 0;
        workers_active = 0;
        next_index.store(0, std::memory_order_relaxed);
        aborted.store(false, std::memory_order_relaxed);
        first_error = nullptr;
        ++generation;
    }
    cv_start.notify_all();
    runJob(); // the caller is one of the job's threads

    std::unique_lock<std::mutex> lk(m);
    cv_done.wait(lk, [&] {
        return workers_joined == workers_wanted &&
               workers_active == 0;
    });
    job_body = nullptr;
    if (first_error) {
        std::exception_ptr err = first_error;
        first_error = nullptr;
        lk.unlock();
        std::rethrow_exception(err);
    }
}

void
parallelFor(std::size_t threads, std::size_t n,
            const std::function<void(std::size_t)> &body)
{
    ThreadPool::global().parallelFor(
        n, body, ThreadPool::resolveThreads(threads));
}

} // namespace ar::util
