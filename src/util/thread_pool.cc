#include "util/thread_pool.hh"

#include <algorithm>
#include <string>

#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace ar::util
{

namespace
{

/// Set while a thread executes a job or task body; nested parallelFor
/// calls detect it and run inline instead of re-entering the pool.
thread_local bool tl_in_job = false;

struct PoolMetrics
{
    obs::Counter jobs =
        obs::MetricsRegistry::global().counter("pool.jobs");
    obs::Counter indices =
        obs::MetricsRegistry::global().counter("pool.indices");
    obs::Counter tasks =
        obs::MetricsRegistry::global().counter("pool.tasks");
    obs::Counter task_errors =
        obs::MetricsRegistry::global().counter("pool.task_errors");
    obs::Histogram task_us = obs::MetricsRegistry::global().histogram(
        "pool.task_us",
        {10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0, 50000.0,
         100000.0});
    obs::Gauge queue_depth =
        obs::MetricsRegistry::global().gauge("pool.queue_depth");
    obs::Gauge threads =
        obs::MetricsRegistry::global().gauge("pool.threads");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m;
    return m;
}

/// Jobs submitted but not yet finished (waiting on job_serial_m or
/// running); feeds the pool.queue_depth gauge.
std::atomic<std::int64_t> g_pool_queue{0};

/// Balances g_pool_queue even when the job body throws.  Armed only
/// when metrics were enabled at submit time, so a flag flip mid-job
/// cannot unbalance the count.
struct QueueDepthGuard
{
    bool armed;

    explicit QueueDepthGuard(bool on) : armed(on)
    {
        if (armed) {
            const auto depth =
                g_pool_queue.fetch_add(1, std::memory_order_relaxed) +
                1;
            poolMetrics().queue_depth.set(
                static_cast<double>(depth));
        }
    }

    ~QueueDepthGuard()
    {
        if (armed) {
            const auto depth =
                g_pool_queue.fetch_sub(1, std::memory_order_relaxed) -
                1;
            poolMetrics().queue_depth.set(
                static_cast<double>(depth));
        }
    }
};

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t total = resolveThreads(threads);
    workers.reserve(total - 1);
    for (std::size_t i = 0; i + 1 < total; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    std::size_t dropped = 0;
    {
        std::lock_guard<std::mutex> lk(m);
        shutting_down = true;
        dropped = tasks.size();
        tasks.clear();
    }
    if (dropped > 0) {
        warn("ThreadPool: destroyed with ", dropped,
             " queued task(s) never run");
    }
    cv_start.notify_all();
    for (auto &w : workers)
        w.join();
}

std::size_t
ThreadPool::hardwareThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t
ThreadPool::resolveThreads(std::size_t requested)
{
    return requested == 0 ? hardwareThreads() : requested;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(0);
    return pool;
}

void
ThreadPool::recordCancellation(CancelReason reason)
{
    const std::size_t done =
        done_count.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(err_m);
    if (!first_error) {
        first_error = std::make_exception_ptr(CancelledError(
            reason,
            std::string("parallel loop ") +
                (reason == CancelReason::DeadlineExpired
                     ? "deadline expired"
                     : "cancelled") +
                " after " + std::to_string(done) + " of " +
                std::to_string(job_n) + " work items"));
    }
    aborted.store(true, std::memory_order_relaxed);
}

void
ThreadPool::runJob()
{
    tl_in_job = true;
    const bool metrics = obs::metricsEnabled();
    const bool cancellable = job_cancel.cancellable();
    for (;;) {
        if (cancellable) {
            const CancelReason reason = job_cancel.check();
            if (reason != CancelReason::None) {
                recordCancellation(reason);
                break;
            }
        }
        const std::size_t i =
            next_index.fetch_add(1, std::memory_order_relaxed);
        if (i >= job_n || aborted.load(std::memory_order_relaxed))
            break;
        const std::uint64_t t0 = metrics ? obs::detail::nowNs() : 0;
        try {
            (*job_body)(i);
            if (cancellable)
                done_count.fetch_add(1, std::memory_order_relaxed);
        } catch (...) {
            std::lock_guard<std::mutex> lk(err_m);
            if (!first_error)
                first_error = std::current_exception();
            aborted.store(true, std::memory_order_relaxed);
        }
        if (metrics) {
            poolMetrics().task_us.observe(
                static_cast<double>(obs::detail::nowNs() - t0) /
                1000.0);
        }
    }
    tl_in_job = false;
}

void
ThreadPool::runTask(std::function<void()> &task)
{
    // Submitted tasks are independent units of work (e.g. server
    // requests); nothing upstream can catch what they throw, so the
    // pool contains escaping exceptions instead of letting them
    // std::terminate the process.  Tasks that care about errors must
    // handle them internally.
    tl_in_job = true;
    if (obs::metricsEnabled())
        poolMetrics().tasks.add();
    try {
        task();
    } catch (const std::exception &e) {
        if (obs::metricsEnabled())
            poolMetrics().task_errors.add();
        warn("ThreadPool: submitted task failed: ", e.what());
    } catch (...) {
        if (obs::metricsEnabled())
            poolMetrics().task_errors.add();
        warn("ThreadPool: submitted task failed with a non-standard "
             "exception");
    }
    tl_in_job = false;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lk(m);
    std::uint64_t seen = 0;
    for (;;) {
        cv_start.wait(lk, [&] {
            return shutting_down ||
                   (job_open && generation != seen &&
                    workers_joined < workers_wanted) ||
                   !tasks.empty();
        });
        if (shutting_down)
            return;
        if (job_open && generation != seen &&
            workers_joined < workers_wanted) {
            seen = generation;
            ++workers_joined;
            ++workers_active;
            lk.unlock();
            runJob();
            lk.lock();
            --workers_active;
            cv_done.notify_all();
            continue;
        }
        if (!tasks.empty()) {
            std::function<void()> task = std::move(tasks.front());
            tasks.pop_front();
            ++tasks_running;
            lk.unlock();
            runTask(task);
            lk.lock();
            --tasks_running;
            cv_tasks.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body,
                        std::size_t max_concurrency,
                        CancelToken cancel)
{
    if (n == 0)
        return;
    std::size_t effective = size();
    if (max_concurrency != 0)
        effective = std::min(effective, max_concurrency);
    effective = std::min(effective, n);

    if (effective <= 1 || tl_in_job) {
        const bool cancellable = cancel.cancellable();
        for (std::size_t i = 0; i < n; ++i) {
            if (cancellable) {
                const CancelReason reason = cancel.check();
                if (reason != CancelReason::None) {
                    throw CancelledError(
                        reason,
                        std::string("parallel loop ") +
                            (reason ==
                                     CancelReason::DeadlineExpired
                                 ? "deadline expired"
                                 : "cancelled") +
                            " after " + std::to_string(i) + " of " +
                            std::to_string(n) + " work items");
                }
            }
            body(i);
        }
        return;
    }

    const bool metrics = obs::metricsEnabled();
    if (metrics) {
        auto &pm = poolMetrics();
        pm.jobs.add();
        pm.indices.add(n);
        pm.threads.set(static_cast<double>(size()));
    }
    QueueDepthGuard depth_guard(metrics);
    obs::TraceSpan span("pool.parallel_for");

    // One job at a time per pool; callers queue here.
    std::lock_guard<std::mutex> serial(job_serial_m);
    {
        std::lock_guard<std::mutex> lk(m);
        job_open = true;
        job_body = &body;
        job_n = n;
        job_cancel = cancel;
        workers_wanted = effective - 1;
        workers_joined = 0;
        workers_active = 0;
        next_index.store(0, std::memory_order_relaxed);
        done_count.store(0, std::memory_order_relaxed);
        aborted.store(false, std::memory_order_relaxed);
        first_error = nullptr;
        ++generation;
    }
    cv_start.notify_all();
    runJob(); // the caller is one of the job's threads

    // Workers that were busy with queued tasks when the job opened
    // may never join; completion is "every index claimed (or the job
    // aborted) and no joined worker still running", not "all wanted
    // workers joined".  A straggler that joins afterwards sees
    // job_open false (or an exhausted index counter) and backs off
    // without touching stale job state.
    std::unique_lock<std::mutex> lk(m);
    cv_done.wait(lk, [&] {
        return (aborted.load(std::memory_order_relaxed) ||
                next_index.load(std::memory_order_relaxed) >= job_n) &&
               workers_active == 0;
    });
    job_open = false;
    job_body = nullptr;
    job_cancel = CancelToken();
    if (first_error) {
        std::exception_ptr err = first_error;
        first_error = nullptr;
        lk.unlock();
        std::rethrow_exception(err);
    }
}

ThreadPool::Submit
ThreadPool::trySubmit(std::function<void()> task)
{
    if (workers.empty()) {
        fatal("ThreadPool::trySubmit: pool has no worker threads "
              "(size() must be >= 2), task would never run");
    }
    {
        std::lock_guard<std::mutex> lk(m);
        if (shutting_down)
            return Submit::ShuttingDown;
        if (tasks.size() >= task_capacity)
            return Submit::Overloaded;
        tasks.push_back(std::move(task));
    }
    cv_start.notify_one();
    return Submit::Queued;
}

void
ThreadPool::setTaskCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lk(m);
    task_capacity = capacity == 0 ? 1 : capacity;
}

std::size_t
ThreadPool::pendingTasks() const
{
    std::lock_guard<std::mutex> lk(m);
    return tasks.size();
}

std::size_t
ThreadPool::runningTasks() const
{
    std::lock_guard<std::mutex> lk(m);
    return tasks_running;
}

std::size_t
ThreadPool::cancelPendingTasks()
{
    std::lock_guard<std::mutex> lk(m);
    const std::size_t dropped = tasks.size();
    tasks.clear();
    cv_tasks.notify_all();
    return dropped;
}

void
ThreadPool::waitTasksIdle()
{
    std::unique_lock<std::mutex> lk(m);
    cv_tasks.wait(lk, [&] {
        return tasks.empty() && tasks_running == 0;
    });
}

void
parallelFor(std::size_t threads, std::size_t n,
            const std::function<void(std::size_t)> &body)
{
    ThreadPool::global().parallelFor(
        n, body, ThreadPool::resolveThreads(threads));
}

void
parallelFor(std::size_t threads, std::size_t n,
            const std::function<void(std::size_t)> &body,
            CancelToken cancel)
{
    ThreadPool::global().parallelFor(
        n, body, ThreadPool::resolveThreads(threads),
        std::move(cancel));
}

} // namespace ar::util
