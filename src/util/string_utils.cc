#include "util/string_utils.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ar::util
{

std::string
trim(std::string_view s)
{
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out.append(sep);
        out.append(parts[i]);
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
formatFixed(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

bool
parseDouble(std::string_view s, double &out)
{
    const std::string str = trim(s);
    if (str.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(str.c_str(), &end);
    return end != nullptr && *end == '\0';
}

} // namespace ar::util
