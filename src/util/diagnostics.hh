/**
 * @file
 * Recoverable, source-located diagnostics.
 *
 * fatal()/FatalError (logging.hh) carry only a flat message, which is
 * fine for programmatic misuse but not for user *input*: a malformed
 * equation or spec file should come back to library embedders with
 * the offending line, column, and a caret snippet, so the host can
 * render it, log it, or retry -- never die.  Diagnostic is that
 * carrier; DiagnosticError/ParseError are the exceptions that wrap it.
 *
 * Both derive from FatalError, so every existing catch site (the CLI,
 * tests, embedders) keeps working; new code can catch the narrower
 * types to access the structured payload.
 */

#ifndef AR_UTIL_DIAGNOSTICS_HH
#define AR_UTIL_DIAGNOSTICS_HH

#include <cstddef>
#include <string>

#include "util/logging.hh"

namespace ar::util
{

/**
 * One structured, user-facing problem report.  line/column are
 * 1-based; 0 means unknown.  `source` holds the offending input line
 * verbatim so render() can show a caret snippet.
 */
struct Diagnostic
{
    std::string message;     ///< What went wrong.
    std::size_t line = 0;    ///< 1-based source line; 0 = unknown.
    std::size_t column = 0;  ///< 1-based source column; 0 = unknown.
    std::string source;      ///< Offending source line text.

    /**
     * Render for humans:
     *
     *   line 3, column 14: unknown function 'sqqt'
     *     Speedup = 1 / sqqt(s)
     *                   ^
     */
    std::string render() const;
};

/**
 * Recoverable user-input error carrying a structured Diagnostic.
 * what() is the rendered diagnostic.
 */
class DiagnosticError : public FatalError
{
  public:
    explicit DiagnosticError(Diagnostic d)
        : FatalError(d.render()), diag_(std::move(d))
    {}

    /** @return the structured payload. */
    const Diagnostic &diagnostic() const { return diag_; }

  private:
    Diagnostic diag_;
};

/** A syntax/semantic error in parsed user input (equations, specs). */
class ParseError : public DiagnosticError
{
  public:
    using DiagnosticError::DiagnosticError;
};

/** Shorthand: throw a DiagnosticError with just a message. */
[[noreturn]] void raiseDiagnostic(std::string message);

/** Shorthand: throw a ParseError locating @p column in @p source. */
[[noreturn]] void raiseParse(std::string message, std::size_t line,
                             std::size_t column, std::string source);

} // namespace ar::util

#endif // AR_UTIL_DIAGNOSTICS_HH
