#include "util/io.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ar::util
{

std::vector<double>
parseNumbers(const std::string &text)
{
    std::vector<double> out;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        const std::string stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#')
            continue;
        for (const auto &field : split(stripped, ',')) {
            std::istringstream tokens(field);
            std::string token;
            while (tokens >> token) {
                double v = 0.0;
                if (!parseDouble(token, v))
                    fatal("parseNumbers: non-numeric token '", token,
                          "'");
                out.push_back(v);
            }
        }
    }
    return out;
}

std::vector<double>
readNumbers(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("readNumbers: cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseNumbers(buffer.str());
}

void
writeNumbers(const std::string &path, const std::vector<double> &values)
{
    std::ofstream out(path);
    if (!out)
        fatal("writeNumbers: cannot open '", path, "'");
    for (double v : values)
        out << formatDouble(v) << "\n";
}

} // namespace ar::util
