#include "util/fault.hh"

#include <algorithm>
#include <limits>
#include <sstream>

namespace ar::util
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Nan:
        return "nan";
      case FaultKind::PosInf:
        return "+inf";
      case FaultKind::NegInf:
        return "-inf";
      case FaultKind::LogDomain:
        return "log-domain";
      case FaultKind::PowDomain:
        return "pow-domain";
      case FaultKind::DivByZero:
        return "div-by-zero";
    }
    return "unknown";
}

std::size_t
countNonFinite(std::span<const double> xs)
{
    std::size_t n = 0;
    for (double x : xs)
        n += std::isfinite(x) ? 0 : 1;
    return n;
}

const char *
faultPolicyName(FaultPolicy policy)
{
    switch (policy) {
      case FaultPolicy::FailFast:
        return "fail_fast";
      case FaultPolicy::Discard:
        return "discard";
      case FaultPolicy::Saturate:
        return "saturate";
    }
    return "unknown";
}

bool
parseFaultPolicy(const std::string &name, FaultPolicy &out)
{
    if (name == "fail_fast") {
        out = FaultPolicy::FailFast;
        return true;
    }
    if (name == "discard") {
        out = FaultPolicy::Discard;
        return true;
    }
    if (name == "saturate") {
        out = FaultPolicy::Saturate;
        return true;
    }
    return false;
}

std::string
FaultRecord::describe() const
{
    std::ostringstream oss;
    oss << "trial " << trial << ", output " << output << ": "
        << faultKindName(kind);
    if (!op.empty())
        oss << " in " << op;
    return oss.str();
}

void
FaultReport::record(std::size_t trial, std::size_t output,
                    FaultKind kind, std::string op)
{
    by_kind[static_cast<std::size_t>(kind)] += 1;
    if (output >= by_output.size())
        by_output.resize(output + 1, 0);
    by_output[output] += 1;
    if (examples.size() < kMaxExamples)
        examples.push_back({trial, output, kind, std::move(op)});
}

std::size_t
FaultReport::totalFaults() const
{
    std::size_t total = 0;
    for (std::size_t n : by_kind)
        total += n;
    return total;
}

double
FaultReport::faultRate() const
{
    if (trials == 0)
        return 0.0;
    return static_cast<double>(faulty_trials) /
           static_cast<double>(trials);
}

std::string
FaultReport::summary() const
{
    std::ostringstream oss;
    oss << faulty_trials << "/" << trials << " trials faulty";
    if (totalFaults() > 0) {
        oss << " (";
        bool first = true;
        for (std::size_t k = 0; k < kFaultKindCount; ++k) {
            if (by_kind[k] == 0)
                continue;
            if (!first)
                oss << ", ";
            first = false;
            oss << faultKindName(static_cast<FaultKind>(k)) << ": "
                << by_kind[k];
        }
        oss << ")";
    }
    oss << ", policy " << faultPolicyName(policy) << ", effective N "
        << effective_trials;
    return oss.str();
}

namespace
{

std::string
faultErrorMessage(const FaultReport &report)
{
    std::ostringstream oss;
    oss << "numeric fault: " << report.summary();
    if (!report.examples.empty())
        oss << "; first: " << report.examples.front().describe();
    return oss.str();
}

} // namespace

FaultError::FaultError(FaultReport report)
    : FatalError(faultErrorMessage(report)), report_(std::move(report))
{
}

void
saturateSamples(std::vector<double> &samples, const FaultReport &report)
{
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (double s : samples) {
        if (std::isfinite(s)) {
            lo = std::min(lo, s);
            hi = std::max(hi, s);
        }
    }
    if (lo > hi)
        throw FaultError(report); // no finite sample to saturate to
    for (double &s : samples) {
        if (std::isfinite(s))
            continue;
        // +Inf clamps to the finite maximum; NaN and -Inf clamp to
        // the finite minimum (the pessimistic edge for metrics where
        // higher is better, e.g. speedup).
        s = (std::isinf(s) && s > 0.0) ? hi : lo;
    }
}

void
discardSamples(std::vector<double> &samples,
               std::span<const std::size_t> faulty)
{
    if (faulty.empty())
        return;
    std::size_t write = 0;
    std::size_t next = 0;
    for (std::size_t read = 0; read < samples.size(); ++read) {
        if (next < faulty.size() && faulty[next] == read) {
            ++next;
            continue;
        }
        samples[write++] = samples[read];
    }
    samples.resize(write);
}

} // namespace ar::util
