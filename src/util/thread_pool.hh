/**
 * @file
 * A small reusable worker pool for deterministic data parallelism.
 *
 * The pool only runs index-based jobs: parallelFor(n, body) invokes
 * body(i) exactly once for every i in [0, n), with dynamic load
 * balancing over a shared atomic counter.  Determinism is a property
 * of the decomposition, not the scheduler: as long as body(i) depends
 * only on i (per-block RNG substreams, disjoint output slices), the
 * result is bit-identical for any thread count, including 1.
 *
 * The calling thread always participates, so a pool adds
 * (workers - 1) threads of concurrency.  Nested parallelFor calls
 * from inside a job body run inline on the worker that issued them,
 * which keeps the pool deadlock-free under composition.
 */

#ifndef AR_UTIL_THREAD_POOL_HH
#define AR_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ar::util
{

/** Persistent worker pool executing index-based parallel loops. */
class ThreadPool
{
  public:
    /**
     * @param threads Total concurrency including the caller;
     *        0 means hardware concurrency.
     */
    explicit ThreadPool(std::size_t threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return total concurrency (workers plus the calling thread). */
    std::size_t size() const { return workers.size() + 1; }

    /**
     * Run body(i) once for every i in [0, n); blocks until all
     * indices completed.  The first exception thrown by any body is
     * rethrown on the calling thread (remaining indices are skipped).
     *
     * @param n Number of indices.
     * @param body Job body; must be safe to call concurrently for
     *        distinct indices.
     * @param max_concurrency Cap on threads used for this job
     *        (0 = pool size).  The cap changes scheduling only, never
     *        results.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body,
                     std::size_t max_concurrency = 0);

    /** @return the process-wide pool (hardware concurrency). */
    static ThreadPool &global();

    /** @return hardware concurrency, at least 1. */
    static std::size_t hardwareThreads();

    /** Map a user-facing threads knob (0 = all cores) to a count. */
    static std::size_t resolveThreads(std::size_t requested);

  private:
    void workerLoop();
    void runJob();

    std::vector<std::thread> workers;

    std::mutex m;
    std::condition_variable cv_start;
    std::condition_variable cv_done;
    std::uint64_t generation = 0;
    bool shutting_down = false;

    // State of the in-flight job; guarded by m except the counters.
    const std::function<void(std::size_t)> *job_body = nullptr;
    std::size_t job_n = 0;
    std::size_t workers_wanted = 0;
    std::size_t workers_joined = 0;
    std::size_t workers_active = 0;
    std::atomic<std::size_t> next_index{0};
    std::atomic<bool> aborted{false};

    std::mutex err_m;
    std::exception_ptr first_error;

    /// Serializes concurrent parallelFor() calls on one pool.
    std::mutex job_serial_m;
};

/**
 * Convenience wrapper over the global pool: run body(i) for
 * i in [0, n) with at most @p threads threads (0 = all cores).
 */
void parallelFor(std::size_t threads, std::size_t n,
                 const std::function<void(std::size_t)> &body);

} // namespace ar::util

#endif // AR_UTIL_THREAD_POOL_HH
