/**
 * @file
 * A small reusable worker pool for deterministic data parallelism
 * and bounded asynchronous task execution.
 *
 * Two modes share one set of worker threads:
 *
 *  - parallelFor(n, body) invokes body(i) exactly once for every i in
 *    [0, n), with dynamic load balancing over a shared atomic
 *    counter.  Determinism is a property of the decomposition, not
 *    the scheduler: as long as body(i) depends only on i (per-block
 *    RNG substreams, disjoint output slices), the result is
 *    bit-identical for any thread count, including 1.  An optional
 *    CancelToken is polled as indices are claimed, so a cancelled or
 *    deadline-expired loop stops within one work item and rethrows
 *    CancelledError on the caller.
 *
 *  - trySubmit(task) enqueues an independent task on a *bounded*
 *    queue.  When the queue is full the call returns Overloaded
 *    immediately instead of blocking -- the admission-control
 *    primitive a server needs to shed load before it degrades.  A
 *    task that throws never kills its worker (or the process): the
 *    exception is contained, reported through warn(), and the worker
 *    moves on.  Tasks run with the nested-parallelism flag set, so a
 *    task body calling parallelFor runs that loop inline -- requests
 *    parallelize across each other, not within themselves.
 *
 * The calling thread always participates in parallelFor, so a pool
 * adds (workers - 1) threads of concurrency.  Nested parallelFor
 * calls from inside a job or task body run inline on the worker that
 * issued them, which keeps the pool deadlock-free under composition.
 * The first exception thrown by any parallelFor body is rethrown on
 * the calling thread (remaining indices are skipped); an escaping
 * exception never terminates the process.
 */

#ifndef AR_UTIL_THREAD_POOL_HH
#define AR_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cancel.hh"

namespace ar::util
{

/** Persistent worker pool: parallel loops + bounded async tasks. */
class ThreadPool
{
  public:
    /** Outcome of a trySubmit() admission attempt. */
    enum class Submit : std::uint8_t
    {
        Queued,       ///< Task accepted and will run.
        Overloaded,   ///< Task queue at capacity; caller must shed.
        ShuttingDown, ///< Pool is being destroyed.
    };

    /**
     * @param threads Total concurrency including the caller;
     *        0 means hardware concurrency.
     */
    explicit ThreadPool(std::size_t threads = 0);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return total concurrency (workers plus the calling thread). */
    std::size_t size() const { return workers.size() + 1; }

    /**
     * Run body(i) once for every i in [0, n); blocks until all
     * indices completed.  The first exception thrown by any body is
     * rethrown on the calling thread (remaining indices are skipped).
     *
     * @param n Number of indices.
     * @param body Job body; must be safe to call concurrently for
     *        distinct indices.
     * @param max_concurrency Cap on threads used for this job
     *        (0 = pool size).  The cap changes scheduling only, never
     *        results.
     * @param cancel Optional token polled as indices are claimed;
     *        when it trips, no further index starts and
     *        CancelledError is thrown on the calling thread.
     *        Indices already running are not interrupted, so
     *        cancellation latency is one work item.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body,
                     std::size_t max_concurrency = 0,
                     CancelToken cancel = {});

    /**
     * Bounded, non-blocking task submission (see file comment).
     * Requires a pool with at least one worker thread (size() >= 2);
     * submitting to a single-threaded pool is fatal, because nothing
     * would ever run the task.
     *
     * @param task Independent unit of work; exceptions it throws are
     *        contained and reported, never propagated.
     * @return Queued, or Overloaded / ShuttingDown without queuing.
     */
    Submit trySubmit(std::function<void()> task);

    /** Cap on queued (not yet running) tasks; default 1024. */
    void setTaskCapacity(std::size_t capacity);

    /** @return tasks queued and not yet picked up by a worker. */
    std::size_t pendingTasks() const;

    /** @return tasks currently executing on workers. */
    std::size_t runningTasks() const;

    /**
     * Drop every queued (not yet running) task.
     * @return how many were dropped.
     */
    std::size_t cancelPendingTasks();

    /** Block until the task queue is empty and no task is running. */
    void waitTasksIdle();

    /** @return the process-wide pool (hardware concurrency). */
    static ThreadPool &global();

    /** @return hardware concurrency, at least 1. */
    static std::size_t hardwareThreads();

    /** Map a user-facing threads knob (0 = all cores) to a count. */
    static std::size_t resolveThreads(std::size_t requested);

  private:
    void workerLoop();
    void runJob();
    void runTask(std::function<void()> &task);
    void recordCancellation(CancelReason reason);

    std::vector<std::thread> workers;

    mutable std::mutex m;
    std::condition_variable cv_start;
    std::condition_variable cv_done;
    std::condition_variable cv_tasks;
    std::uint64_t generation = 0;
    bool shutting_down = false;

    // State of the in-flight job; guarded by m except the counters.
    bool job_open = false;
    const std::function<void(std::size_t)> *job_body = nullptr;
    std::size_t job_n = 0;
    std::size_t workers_wanted = 0;
    std::size_t workers_joined = 0;
    std::size_t workers_active = 0;
    CancelToken job_cancel;
    std::atomic<std::size_t> next_index{0};
    std::atomic<std::size_t> done_count{0};
    std::atomic<bool> aborted{false};

    // Bounded async task queue; guarded by m.
    std::deque<std::function<void()>> tasks;
    std::size_t task_capacity = 1024;
    std::size_t tasks_running = 0;

    std::mutex err_m;
    std::exception_ptr first_error;

    /// Serializes concurrent parallelFor() calls on one pool.
    std::mutex job_serial_m;
};

/**
 * Convenience wrapper over the global pool: run body(i) for
 * i in [0, n) with at most @p threads threads (0 = all cores).
 */
void parallelFor(std::size_t threads, std::size_t n,
                 const std::function<void(std::size_t)> &body);

/** As above, with a cancellation token polled between work items. */
void parallelFor(std::size_t threads, std::size_t n,
                 const std::function<void(std::size_t)> &body,
                 CancelToken cancel);

} // namespace ar::util

#endif // AR_UTIL_THREAD_POOL_HH
