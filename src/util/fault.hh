/**
 * @file
 * Numeric fault-containment vocabulary shared by the whole stack.
 *
 * A Monte-Carlo *fault* is a trial whose evaluated output is not a
 * finite double: a NaN or infinity injected by a domain violation
 * (log of a non-positive value, a negative base raised to a fractional
 * power, division by zero) or by overflow.  A single such trial
 * silently corrupts every downstream statistic -- mean, sigma, KDE,
 * and Box-Cox (which hard-requires positive data) -- so the engines
 * detect faults per trial and apply a configurable FaultPolicy instead
 * of letting poison values through.
 *
 * Everything here is policy and bookkeeping; detection lives next to
 * the evaluators (symbolic/compile.hh, mc/propagator.cc, ...).  The
 * resulting FaultReport is bit-identical for any thread count: faults
 * are collected from deterministic per-trial results in trial order,
 * never from scheduler-dependent state.
 */

#ifndef AR_UTIL_FAULT_HH
#define AR_UTIL_FAULT_HH

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace ar::util
{

/** Classification of one numeric fault. */
enum class FaultKind : std::uint8_t
{
    Nan,       ///< Result is NaN (unclassified domain violation).
    PosInf,    ///< Result is +infinity (overflow / division by ~0).
    NegInf,    ///< Result is -infinity.
    LogDomain, ///< log of a non-positive value.
    PowDomain, ///< Negative base with a fractional exponent (sqrt).
    DivByZero, ///< Zero base with a negative exponent (x / 0).
};

/** Number of FaultKind values (for count arrays). */
inline constexpr std::size_t kFaultKindCount = 6;

/** @return short stable name of a kind ("nan", "log-domain", ...). */
const char *faultKindName(FaultKind kind);

/** Coarse classification of a non-finite value (NaN / +-Inf). */
inline FaultKind
classifyNonFinite(double v)
{
    if (std::isnan(v))
        return FaultKind::Nan;
    return v > 0.0 ? FaultKind::PosInf : FaultKind::NegInf;
}

/** @return the number of non-finite entries in @p xs. */
std::size_t countNonFinite(std::span<const double> xs);

/** What an engine does with faulting trials. */
enum class FaultPolicy : std::uint8_t
{
    /** Raise a FaultError on the first faulting trial (default). */
    FailFast,

    /**
     * Drop faulting trials from every output vector (trial alignment
     * across outputs is preserved), shrinking the effective N.
     */
    Discard,

    /**
     * Replace each non-finite sample with the nearest finite sample
     * of the same output: +Inf maps to the finite maximum, -Inf and
     * NaN to the finite minimum (the pessimistic edge for
     * "higher is better" metrics).  Sample counts are preserved.
     */
    Saturate,
};

/** @return the spec/CLI name of a policy ("fail_fast", ...). */
const char *faultPolicyName(FaultPolicy policy);

/**
 * Parse a spec/CLI policy name.
 *
 * @throws DiagnosticError (via the caller-facing helpers) -- this
 * low-level form reports success through the return value.
 * @return true and set @p out when @p name is valid.
 */
bool parseFaultPolicy(const std::string &name, FaultPolicy &out);

/** One recorded fault event. */
struct FaultRecord
{
    std::size_t trial = 0;  ///< Trial index within the run.
    std::size_t output = 0; ///< Output (function / design) index.
    FaultKind kind = FaultKind::Nan;
    std::string op;         ///< Faulting op label ("log(x - 1)").

    /** @return "trial 17, output 0: log-domain in log(x - 1)". */
    std::string describe() const;
};

/**
 * Deterministic per-run fault accounting.  Counts cover every
 * (trial, output) fault event; `examples` keeps the first few events
 * in (trial, output) order for diagnostics.
 */
struct FaultReport
{
    /** Cap on retained example records. */
    static constexpr std::size_t kMaxExamples = 8;

    FaultPolicy policy = FaultPolicy::FailFast;
    std::size_t trials = 0;           ///< Requested trials per output.
    std::size_t faulty_trials = 0;    ///< Trials with >= 1 fault.
    std::size_t effective_trials = 0; ///< Surviving trials (min over
                                      ///< outputs when they differ).

    /** Fault events by kind, indexed by FaultKind. */
    std::array<std::size_t, kFaultKindCount> by_kind{};

    /** Fault events per output (function / design). */
    std::vector<std::size_t> by_output;

    /** First kMaxExamples events in (trial, output) order. */
    std::vector<FaultRecord> examples;

    /** Record one event (updates counts and examples). */
    void record(std::size_t trial, std::size_t output, FaultKind kind,
                std::string op);

    /** @return total fault events across all outputs. */
    std::size_t totalFaults() const;

    /** @return true when no fault was recorded. */
    bool clean() const { return faulty_trials == 0; }

    /** @return faulty_trials / trials (0 when trials == 0). */
    double faultRate() const;

    /** One-line summary: "3/1000 trials faulty (nan: 2, ...)". */
    std::string summary() const;
};

/** Raised by FaultPolicy::FailFast when a trial faults. */
class FaultError : public FatalError
{
  public:
    explicit FaultError(FaultReport report);

    /** @return the (partial) report at the moment of failure. */
    const FaultReport &report() const { return report_; }

  private:
    FaultReport report_;
};

/**
 * Saturate @p samples in place: non-finite entries are replaced with
 * the finite min (NaN, -Inf) or finite max (+Inf) of the vector.
 *
 * @throws FaultError when the vector holds no finite value at all
 *         (saturation would be meaningless); @p report is attached.
 */
void saturateSamples(std::vector<double> &samples,
                     const FaultReport &report);

/**
 * Remove the entries of @p samples whose indices appear in the sorted
 * list @p faulty (stable compaction).
 */
void discardSamples(std::vector<double> &samples,
                    std::span<const std::size_t> faulty);

} // namespace ar::util

#endif // AR_UTIL_FAULT_HH
