/**
 * @file
 * Architectural risk aggregation (Eqs. 1-2 of the paper): the average
 * cost C(Pe, P) over all realizations of the performance distribution.
 */

#ifndef AR_RISK_ARCH_RISK_HH
#define AR_RISK_ARCH_RISK_HH

#include <span>

#include "dist/distribution.hh"
#include "risk/risk_function.hh"

namespace ar::risk
{

/**
 * Architectural risk of a sampled performance distribution.
 *
 * @param perf_samples Monte-Carlo samples of realized performance.
 * @param reference Reference (target) performance P.
 * @param fn Risk function C.
 * @return mean of C(sample, reference) over the samples (Eq. 2).
 */
double archRisk(std::span<const double> perf_samples, double reference,
                const RiskFunction &fn);

/**
 * Architectural risk of an analytic performance distribution,
 * computed by quantile-grid quadrature.
 *
 * @param perf Performance distribution.
 * @param reference Reference performance P.
 * @param fn Risk function C.
 * @param grid Number of quadrature points.
 */
double archRisk(const ar::dist::Distribution &perf, double reference,
                const RiskFunction &fn, std::size_t grid = 2048);

} // namespace ar::risk

#endif // AR_RISK_ARCH_RISK_HH
