/**
 * @file
 * Multi-state component risk (tentpole of the multi-state layer).
 *
 * The paper's uncertainty model treats a design point's performance
 * as one continuous random variable.  Real systems additionally fail
 * *partially*: a core that drops to half frequency, a memory channel
 * that goes dark, a cache slice that is fused off.  A multi-state
 * component declares an ordered set of performance states -- each a
 * (name, performance multiplier, probability) triple -- and every
 * Monte-Carlo trial samples one state per component.
 *
 * The per-trial state multiplier is exposed to the model as an
 * ordinary uncertain variable whose distribution is a
 * ar::dist::Categorical over the multipliers, so the whole existing
 * pipeline (LHS sampling, copulas, fused programs, SIMD tapes, fault
 * attribution) applies unchanged.  System-level availability is
 * composed from the state variables with the symbolic structure
 * functions in symbolic/structure.hh (series / parallel / k-of-n /
 * arbitrary expressions).
 *
 * enumerateStateCombos() / enumerateExpectation() walk the full
 * cartesian state space; they are the brute-force oracle the tests
 * hold the compiled tape against.
 */

#ifndef AR_RISK_MULTI_STATE_HH
#define AR_RISK_MULTI_STATE_HH

#include <map>
#include <span>
#include <string>
#include <vector>

#include "dist/distribution.hh"
#include "symbolic/expr.hh"

namespace ar::risk
{

/** One performance state of a component. */
struct ComponentState
{
    std::string name;          ///< e.g. "nominal", "half", "dead".
    double multiplier = 1.0;   ///< Performance multiplier in [0, inf).
    double probability = 0.0;  ///< Per-trial probability in [0, 1].
};

/**
 * A component with a finite set of performance states.
 *
 * Probabilities must each lie in [0, 1] and sum to at most 1 (fatal
 * otherwise).  A sum *below* 1 declares an unmodeled-state gap: the
 * leftover mass samples as NaN and flows through the run's fault
 * policy (fail_fast / discard / saturate), exactly like any other
 * non-finite input.
 */
class MultiStateComponent
{
  public:
    MultiStateComponent(std::string name,
                        std::vector<ComponentState> states);

    const std::string &name() const { return name_; }
    const std::vector<ComponentState> &states() const { return states_; }

    /** Sum of the state probabilities (<= 1). */
    double totalProbability() const { return total_; }

    /**
     * The component's sampling distribution: a Categorical over the
     * state multipliers (support sorted ascending, so its quantile is
     * monotone and LHS stratification carries over).
     */
    ar::dist::DistPtr toDistribution() const;

  private:
    std::string name_;
    std::vector<ComponentState> states_;
    double total_ = 0.0;
};

/** One point of the cartesian state space. */
struct StateCombo
{
    /** State index per component, declaration order. */
    std::vector<std::size_t> state;
    /** Multiplier per component, declaration order. */
    std::vector<double> multipliers;
    /** Joint probability (product of the per-state probabilities). */
    double probability = 0.0;
};

/**
 * Enumerate every combination of component states (cartesian
 * product).  With unmodeled-state gaps the combo probabilities sum to
 * less than 1; the gap mass is not enumerated.
 */
std::vector<StateCombo>
enumerateStateCombos(std::span<const MultiStateComponent> components);

/**
 * Exact expectation of @p expr over the full state space by
 * enumeration: sum of P(combo) * expr(combo).  Every free symbol of
 * @p expr must be a component name or a key of @p fixed (fatal
 * otherwise).  This is the brute-force oracle for the compiled
 * structure-function tape.
 */
double enumerateExpectation(
    const ar::symbolic::ExprPtr &expr,
    std::span<const MultiStateComponent> components,
    const std::map<std::string, double> &fixed = {});

} // namespace ar::risk

#endif // AR_RISK_MULTI_STATE_HH
