#include "risk/arch_risk.hh"

#include "math/numeric.hh"
#include "util/logging.hh"

namespace ar::risk
{

double
archRisk(std::span<const double> perf_samples, double reference,
         const RiskFunction &fn)
{
    if (perf_samples.empty())
        ar::util::fatal("archRisk: empty performance sample");
    ar::math::KahanSum acc;
    for (double pe : perf_samples)
        acc.add(fn.cost(pe, reference));
    return acc.value() / static_cast<double>(perf_samples.size());
}

double
archRisk(const ar::dist::Distribution &perf, double reference,
         const RiskFunction &fn, std::size_t grid)
{
    if (grid == 0)
        ar::util::fatal("archRisk: grid must be positive");
    ar::math::KahanSum acc;
    for (std::size_t i = 0; i < grid; ++i) {
        const double u = (static_cast<double>(i) + 0.5) /
                         static_cast<double>(grid);
        acc.add(fn.cost(perf.quantile(u), reference));
    }
    return acc.value() / static_cast<double>(grid);
}

} // namespace ar::risk
