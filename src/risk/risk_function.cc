#include "risk/risk_function.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace ar::risk
{

double
StepRisk::cost(double pe, double p) const
{
    return pe < p ? 1.0 : 0.0;
}

std::unique_ptr<RiskFunction>
StepRisk::clone() const
{
    return std::make_unique<StepRisk>(*this);
}

double
LinearRisk::cost(double pe, double p) const
{
    return std::max(0.0, p - pe);
}

std::unique_ptr<RiskFunction>
LinearRisk::clone() const
{
    return std::make_unique<LinearRisk>(*this);
}

double
QuadraticRisk::cost(double pe, double p) const
{
    const double short_fall = std::max(0.0, p - pe);
    return short_fall * short_fall;
}

std::unique_ptr<RiskFunction>
QuadraticRisk::clone() const
{
    return std::make_unique<QuadraticRisk>(*this);
}

PiecewiseRisk::PiecewiseRisk(std::vector<Step> steps_in)
    : steps(std::move(steps_in))
{
    if (steps.empty())
        ar::util::fatal("PiecewiseRisk: need at least one step");
    for (std::size_t i = 1; i < steps.size(); ++i) {
        if (steps[i].shortfall <= steps[i - 1].shortfall)
            ar::util::fatal("PiecewiseRisk: thresholds must be "
                            "strictly ascending");
    }
    for (const auto &s : steps) {
        if (s.shortfall < 0.0)
            ar::util::fatal("PiecewiseRisk: shortfall thresholds must "
                            "be non-negative");
    }
}

double
PiecewiseRisk::cost(double pe, double p) const
{
    if (pe >= p)
        return 0.0;
    const double depth = p - pe;
    double out = 0.0;
    for (const auto &s : steps) {
        if (depth >= s.shortfall)
            out = s.cost;
        else
            break;
    }
    return out;
}

std::string
PiecewiseRisk::describe() const
{
    std::ostringstream oss;
    oss << "piecewise(" << steps.size() << " steps)";
    return oss.str();
}

std::unique_ptr<RiskFunction>
PiecewiseRisk::clone() const
{
    return std::make_unique<PiecewiseRisk>(*this);
}

MonetaryRisk::MonetaryRisk(std::vector<Bin> bins_in)
    : bins(std::move(bins_in))
{
    if (bins.empty())
        ar::util::fatal("MonetaryRisk: need at least one bin");
    for (std::size_t i = 1; i < bins.size(); ++i) {
        if (bins[i].min_perf <= bins[i - 1].min_perf)
            ar::util::fatal("MonetaryRisk: bins must be strictly "
                            "ascending in min_perf");
        if (bins[i].dollars < bins[i - 1].dollars)
            ar::util::fatal("MonetaryRisk: bin values must be "
                            "non-decreasing");
    }
}

MonetaryRisk
MonetaryRisk::table5()
{
    // Table 5: perf <0.6 -> $100, [0.6,0.8) -> $200, [0.8,0.9) ->
    // $300, [0.9,1.0) -> $600, >= 1.0 -> $1000.
    return MonetaryRisk({{0.0, 100.0},
                         {0.6, 200.0},
                         {0.8, 300.0},
                         {0.9, 600.0},
                         {1.0, 1000.0}});
}

double
MonetaryRisk::value(double perf) const
{
    double out = bins.front().dollars;
    for (const auto &b : bins) {
        if (perf >= b.min_perf)
            out = b.dollars;
        else
            break;
    }
    return out;
}

double
MonetaryRisk::cost(double pe, double p) const
{
    if (pe >= p)
        return 0.0;
    return std::max(0.0, value(p) - value(pe));
}

std::string
MonetaryRisk::describe() const
{
    std::ostringstream oss;
    oss << "monetary(" << bins.size() << " bins)";
    return oss.str();
}

std::unique_ptr<RiskFunction>
MonetaryRisk::clone() const
{
    return std::make_unique<MonetaryRisk>(*this);
}

} // namespace ar::risk
