#include "risk/multi_state.hh"

#include <cmath>
#include <memory>

#include "dist/discrete.hh"
#include "symbolic/compile.hh"
#include "util/logging.hh"

namespace ar::risk
{

MultiStateComponent::MultiStateComponent(
    std::string name, std::vector<ComponentState> states)
    : name_(std::move(name)), states_(std::move(states))
{
    if (name_.empty())
        ar::util::fatal("MultiStateComponent: empty component name");
    if (states_.empty()) {
        ar::util::fatal("MultiStateComponent '", name_,
                        "': needs at least one state");
    }
    for (const auto &s : states_) {
        if (s.name.empty()) {
            ar::util::fatal("MultiStateComponent '", name_,
                            "': empty state name");
        }
        if (!std::isfinite(s.multiplier) || s.multiplier < 0.0) {
            ar::util::fatal("MultiStateComponent '", name_, "' state '",
                            s.name, "': multiplier must be finite and "
                            ">= 0, got ", s.multiplier);
        }
        if (!(s.probability >= 0.0) || s.probability > 1.0) {
            ar::util::fatal("MultiStateComponent '", name_, "' state '",
                            s.name, "': probability must lie in "
                            "[0, 1], got ", s.probability);
        }
        total_ += s.probability;
    }
    if (total_ > 1.0 + 1e-9) {
        ar::util::fatal("MultiStateComponent '", name_,
                        "': state probabilities sum to ", total_,
                        " (> 1)");
    }
}

ar::dist::DistPtr
MultiStateComponent::toDistribution() const
{
    std::vector<double> values, probs;
    values.reserve(states_.size());
    probs.reserve(states_.size());
    for (const auto &s : states_) {
        values.push_back(s.multiplier);
        probs.push_back(s.probability);
    }
    return std::make_shared<ar::dist::Categorical>(std::move(values),
                                                   std::move(probs));
}

std::vector<StateCombo>
enumerateStateCombos(std::span<const MultiStateComponent> components)
{
    if (components.empty())
        ar::util::fatal("enumerateStateCombos: no components");
    std::vector<StateCombo> combos;
    std::vector<std::size_t> idx(components.size(), 0);
    for (;;) {
        StateCombo combo;
        combo.state = idx;
        combo.multipliers.reserve(components.size());
        combo.probability = 1.0;
        for (std::size_t c = 0; c < components.size(); ++c) {
            const auto &s = components[c].states()[idx[c]];
            combo.multipliers.push_back(s.multiplier);
            combo.probability *= s.probability;
        }
        combos.push_back(std::move(combo));

        // Odometer increment over the per-component state counts.
        std::size_t c = components.size();
        while (c > 0) {
            --c;
            if (++idx[c] < components[c].states().size())
                break;
            idx[c] = 0;
            if (c == 0)
                return combos;
        }
    }
}

double
enumerateExpectation(const ar::symbolic::ExprPtr &expr,
                     std::span<const MultiStateComponent> components,
                     const std::map<std::string, double> &fixed)
{
    const ar::symbolic::CompiledExpr compiled(expr);
    const auto &names = compiled.argNames();

    // Map each argument slot to a component index or a fixed value.
    constexpr std::size_t kFixed = static_cast<std::size_t>(-1);
    std::vector<std::size_t> slot(names.size(), kFixed);
    std::vector<double> args(names.size(), 0.0);
    for (std::size_t a = 0; a < names.size(); ++a) {
        bool bound = false;
        for (std::size_t c = 0; c < components.size(); ++c) {
            if (components[c].name() == names[a]) {
                slot[a] = c;
                bound = true;
                break;
            }
        }
        if (bound)
            continue;
        const auto it = fixed.find(names[a]);
        if (it == fixed.end()) {
            ar::util::fatal("enumerateExpectation: symbol '", names[a],
                            "' is neither a component nor fixed");
        }
        args[a] = it->second;
    }

    double acc = 0.0;
    for (const auto &combo : enumerateStateCombos(components)) {
        for (std::size_t a = 0; a < names.size(); ++a) {
            if (slot[a] != kFixed)
                args[a] = combo.multipliers[slot[a]];
        }
        acc += combo.probability * compiled.eval(args);
    }
    return acc;
}

} // namespace ar::risk
