#include "risk/var.hh"

#include <algorithm>
#include <vector>

#include "math/numeric.hh"
#include "stats/quantiles.hh"
#include "util/logging.hh"

namespace ar::risk
{

double
valueAtRisk(std::span<const double> perf_samples, double alpha)
{
    if (alpha <= 0.0 || alpha >= 1.0)
        ar::util::fatal("valueAtRisk: alpha must lie in (0, 1), got ",
                        alpha);
    return ar::stats::quantile(perf_samples, alpha);
}

double
conditionalValueAtRisk(std::span<const double> perf_samples,
                       double alpha)
{
    if (alpha <= 0.0 || alpha >= 1.0)
        ar::util::fatal("conditionalValueAtRisk: alpha must lie in "
                        "(0, 1), got ", alpha);
    if (perf_samples.empty())
        ar::util::fatal("conditionalValueAtRisk: empty sample");
    std::vector<double> sorted(perf_samples.begin(),
                               perf_samples.end());
    std::sort(sorted.begin(), sorted.end());
    const std::size_t tail = std::max<std::size_t>(
        1, static_cast<std::size_t>(alpha *
                                    static_cast<double>(sorted.size())));
    ar::math::KahanSum acc;
    for (std::size_t i = 0; i < tail; ++i)
        acc.add(sorted[i]);
    return acc.value() / static_cast<double>(tail);
}

double
shortfallProbability(std::span<const double> perf_samples,
                     double reference)
{
    if (perf_samples.empty())
        ar::util::fatal("shortfallProbability: empty sample");
    std::size_t below = 0;
    for (double p : perf_samples)
        below += p < reference;
    return static_cast<double>(below) /
           static_cast<double>(perf_samples.size());
}

} // namespace ar::risk
