/**
 * @file
 * Risk (cost) functions C(Pe, P) from Section 2 of the paper: the
 * subjective mapping from a performance shortfall to a scalar cost.
 * Provided forms: step, linear, quadratic (the paper's DSE choice),
 * piecewise thresholds, and the monetary bin table of Table 5.
 */

#ifndef AR_RISK_RISK_FUNCTION_HH
#define AR_RISK_RISK_FUNCTION_HH

#include <memory>
#include <string>
#include <vector>

namespace ar::risk
{

/** Cost of realized performance pe against reference performance p. */
class RiskFunction
{
  public:
    virtual ~RiskFunction() = default;

    /**
     * @param pe Realized performance.
     * @param p Reference (target) performance.
     * @return the cost; must be 0 whenever pe >= p (Eq. 1 only
     *         penalizes under-performance).
     */
    virtual double cost(double pe, double p) const = 0;

    /** @return a human-readable description. */
    virtual std::string describe() const = 0;

    /** Deep copy. */
    virtual std::unique_ptr<RiskFunction> clone() const = 0;
};

/** 1 when pe < p, else 0: the probability-of-shortfall risk. */
class StepRisk : public RiskFunction
{
  public:
    double cost(double pe, double p) const override;
    std::string describe() const override { return "step"; }
    std::unique_ptr<RiskFunction> clone() const override;
};

/** max(0, p - pe): expected shortfall magnitude. */
class LinearRisk : public RiskFunction
{
  public:
    double cost(double pe, double p) const override;
    std::string describe() const override { return "linear"; }
    std::unique_ptr<RiskFunction> clone() const override;
};

/**
 * max(0, p - pe)^2: the paper's design-space-exploration choice --
 * "performance well below expectation is much worse than performance
 * just below expectation".
 */
class QuadraticRisk : public RiskFunction
{
  public:
    double cost(double pe, double p) const override;
    std::string describe() const override { return "quadratic"; }
    std::unique_ptr<RiskFunction> clone() const override;
};

/**
 * Piecewise-constant cost on shortfall thresholds: cost_i is charged
 * when pe < p - threshold_i (thresholds ascending).
 */
class PiecewiseRisk : public RiskFunction
{
  public:
    /** One threshold step. */
    struct Step
    {
        double shortfall; ///< Shortfall depth p - pe activating this.
        double cost;      ///< Cost charged at or beyond that depth.
    };

    /** @param steps Thresholds in strictly ascending shortfall. */
    explicit PiecewiseRisk(std::vector<Step> steps);

    double cost(double pe, double p) const override;
    std::string describe() const override;
    std::unique_ptr<RiskFunction> clone() const override;

  private:
    std::vector<Step> steps;
};

/**
 * Monetary risk from a price-bin table (Table 5 of the paper): cost
 * is the dollar difference between the bin of the reference
 * performance and the bin of the realized performance.
 */
class MonetaryRisk : public RiskFunction
{
  public:
    /** One price bin: performance at least @p min_perf sells at $. */
    struct Bin
    {
        double min_perf;
        double dollars;
    };

    /** @param bins Ascending by min_perf; first bin is the floor. */
    explicit MonetaryRisk(std::vector<Bin> bins);

    /** The paper's Table 5 (Intel price-list derived) bins. */
    static MonetaryRisk table5();

    /** @return the market value of a chip at this performance. */
    double value(double perf) const;

    double cost(double pe, double p) const override;
    std::string describe() const override;
    std::unique_ptr<RiskFunction> clone() const override;

  private:
    std::vector<Bin> bins;
};

} // namespace ar::risk

#endif // AR_RISK_RISK_FUNCTION_HH
