/**
 * @file
 * Tail-risk metrics borrowed directly from the financial risk
 * toolbox the paper draws its framing from (Section 2): value at
 * risk and conditional value at risk (expected shortfall) of a
 * performance distribution relative to a reference.
 */

#ifndef AR_RISK_VAR_HH
#define AR_RISK_VAR_HH

#include <span>

namespace ar::risk
{

/**
 * Performance value at risk: the alpha-quantile of realized
 * performance.  "With probability 1 - alpha the design performs at
 * least this well."
 *
 * @param perf_samples Monte-Carlo performance samples.
 * @param alpha Tail probability in (0, 1), e.g. 0.05.
 */
double valueAtRisk(std::span<const double> perf_samples, double alpha);

/**
 * Conditional value at risk (expected shortfall): the mean
 * performance over the worst alpha-fraction of outcomes.  Always at
 * most valueAtRisk for the same alpha.
 *
 * @param perf_samples Monte-Carlo performance samples.
 * @param alpha Tail probability in (0, 1).
 */
double conditionalValueAtRisk(std::span<const double> perf_samples,
                              double alpha);

/**
 * Shortfall probability: P(perf < reference), i.e. the step-risk
 * aggregate written as a direct helper.
 */
double shortfallProbability(std::span<const double> perf_samples,
                            double reference);

} // namespace ar::risk

#endif // AR_RISK_VAR_HH
