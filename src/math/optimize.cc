#include "math/optimize.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace ar::math
{

ScalarResult
goldenSectionMin(const std::function<double(double)> &f, double lo,
                 double hi, double tol)
{
    if (!(lo < hi))
        ar::util::fatal("goldenSectionMin: invalid bracket [", lo, ", ",
                        hi, "]");
    const double invphi = 0.6180339887498948482;
    double a = lo, b = hi;
    double c = b - invphi * (b - a);
    double d = a + invphi * (b - a);
    double fc = f(c);
    double fd = f(d);
    ScalarResult res;
    const int max_iter = 200;
    int it = 0;
    while (b - a > tol && it < max_iter) {
        if (fc < fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - invphi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + invphi * (b - a);
            fd = f(d);
        }
        ++it;
    }
    res.x = 0.5 * (a + b);
    res.value = f(res.x);
    res.iterations = it;
    res.converged = (b - a) <= tol;
    return res;
}

ScalarResult
brentRoot(const std::function<double(double)> &f, double lo, double hi,
          double tol)
{
    double a = lo, b = hi;
    double fa = f(a), fb = f(b);
    if (fa * fb > 0.0)
        ar::util::fatal("brentRoot: interval does not bracket a root; "
                        "f(", a, ")=", fa, " f(", b, ")=", fb);
    if (std::fabs(fa) < std::fabs(fb)) {
        std::swap(a, b);
        std::swap(fa, fb);
    }
    double c = a, fc = fa;
    bool mflag = true;
    double d = 0.0;
    ScalarResult res;
    const int max_iter = 200;
    int it = 0;
    while (fb != 0.0 && std::fabs(b - a) > tol && it < max_iter) {
        double s;
        if (fa != fc && fb != fc) {
            // Inverse quadratic interpolation.
            s = a * fb * fc / ((fa - fb) * (fa - fc)) +
                b * fa * fc / ((fb - fa) * (fb - fc)) +
                c * fa * fb / ((fc - fa) * (fc - fb));
        } else {
            // Secant.
            s = b - fb * (b - a) / (fb - fa);
        }
        const double mid = 0.5 * (a + b);
        const bool cond1 = (s < std::min(mid, b) || s > std::max(mid, b));
        const bool cond2 = mflag &&
            std::fabs(s - b) >= std::fabs(b - c) / 2.0;
        const bool cond3 = !mflag &&
            std::fabs(s - b) >= std::fabs(c - d) / 2.0;
        const bool cond4 = mflag && std::fabs(b - c) < tol;
        const bool cond5 = !mflag && std::fabs(c - d) < tol;
        if (cond1 || cond2 || cond3 || cond4 || cond5) {
            s = mid;
            mflag = true;
        } else {
            mflag = false;
        }
        const double fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if (fa * fs < 0.0) {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if (std::fabs(fa) < std::fabs(fb)) {
            std::swap(a, b);
            std::swap(fa, fb);
        }
        ++it;
    }
    res.x = b;
    res.value = fb;
    res.iterations = it;
    res.converged = std::fabs(fb) <= 1e-9 || std::fabs(b - a) <= tol;
    return res;
}

ScalarResult
gridThenGoldenMin(const std::function<double(double)> &f, double lo,
                  double hi, int grid_points, double tol)
{
    if (grid_points < 3)
        ar::util::fatal("gridThenGoldenMin: need >= 3 grid points");
    double best_x = lo;
    double best_f = std::numeric_limits<double>::infinity();
    const double step = (hi - lo) / (grid_points - 1);
    for (int i = 0; i < grid_points; ++i) {
        const double x = lo + step * i;
        const double fx = f(x);
        if (fx < best_f) {
            best_f = fx;
            best_x = x;
        }
    }
    const double a = std::max(lo, best_x - step);
    const double b = std::min(hi, best_x + step);
    return goldenSectionMin(f, a, b, tol);
}

} // namespace ar::math
