#include "math/numeric.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ar::math
{

double
sum(std::span<const double> xs)
{
    KahanSum acc;
    for (double x : xs)
        acc.add(x);
    return acc.value();
}

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        ar::util::fatal("mean: empty input");
    return sum(xs) / static_cast<double>(xs.size());
}

double
variance(std::span<const double> xs)
{
    if (xs.size() < 2)
        ar::util::fatal("variance: need at least two samples, got ",
                        xs.size());
    const double m = mean(xs);
    KahanSum acc;
    for (double x : xs)
        acc.add((x - m) * (x - m));
    return acc.value() / static_cast<double>(xs.size() - 1);
}

double
stddev(std::span<const double> xs)
{
    return std::sqrt(variance(xs));
}

std::vector<double>
linspace(double lo, double hi, std::size_t n)
{
    if (n == 0)
        ar::util::fatal("linspace: need at least one point");
    std::vector<double> out(n);
    if (n == 1) {
        out[0] = lo;
        return out;
    }
    const double step = (hi - lo) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = lo + step * static_cast<double>(i);
    out.back() = hi;
    return out;
}

std::vector<double>
logspace(double lo, double hi, std::size_t n)
{
    if (lo <= 0.0 || hi <= 0.0)
        ar::util::fatal("logspace: endpoints must be positive");
    auto grid = linspace(std::log(lo), std::log(hi), n);
    for (double &g : grid)
        g = std::exp(g);
    if (!grid.empty()) {
        grid.front() = lo;
        grid.back() = hi;
    }
    return grid;
}

double
clamp(double v, double lo, double hi)
{
    return std::min(std::max(v, lo), hi);
}

bool
approxEqual(double a, double b, double rtol, double atol)
{
    return std::fabs(a - b) <=
           atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

} // namespace ar::math
