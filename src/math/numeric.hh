/**
 * @file
 * Numeric utilities: compensated summation, vector reductions, grids.
 */

#ifndef AR_MATH_NUMERIC_HH
#define AR_MATH_NUMERIC_HH

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace ar::math
{

/** Kahan-Neumaier compensated accumulator. */
class KahanSum
{
  public:
    /** Add one value. */
    void
    add(double v)
    {
        double t = total + v;
        if (std::abs(total) >= std::abs(v))
            comp += (total - t) + v;
        else
            comp += (v - t) + total;
        total = t;
    }

    /** @return the compensated sum so far. */
    double value() const { return total + comp; }

  private:
    double total = 0.0;
    double comp = 0.0;
};

/** Compensated sum of a range. */
double sum(std::span<const double> xs);

/** Arithmetic mean (compensated); fatal on empty input. */
double mean(std::span<const double> xs);

/**
 * Sample variance with Bessel's correction (n - 1 denominator);
 * fatal on input with fewer than two elements.
 */
double variance(std::span<const double> xs);

/** Sample standard deviation. */
double stddev(std::span<const double> xs);

/**
 * Evenly spaced grid of @p n points covering [lo, hi] inclusive.
 * n == 1 yields {lo}.
 */
std::vector<double> linspace(double lo, double hi, std::size_t n);

/** Geometrically spaced grid between positive endpoints, inclusive. */
std::vector<double> logspace(double lo, double hi, std::size_t n);

/** Clamp @p v into [lo, hi]. */
double clamp(double v, double lo, double hi);

/** @return true when |a - b| <= atol + rtol * max(|a|, |b|). */
bool approxEqual(double a, double b, double rtol = 1e-9,
                 double atol = 1e-12);

} // namespace ar::math

#endif // AR_MATH_NUMERIC_HH
