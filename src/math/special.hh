/**
 * @file
 * Special mathematical functions needed by the statistics and
 * distribution layers: inverse error function, Gaussian CDF/quantile,
 * regularized incomplete gamma and beta functions.
 *
 * These are implemented from the standard series/continued-fraction
 * expansions (Numerical Recipes style) so that the library carries no
 * external numerical dependency.
 */

#ifndef AR_MATH_SPECIAL_HH
#define AR_MATH_SPECIAL_HH

namespace ar::math
{

/** Inverse error function, accurate to ~1e-12 via Newton refinement. */
double erfInv(double x);

/** Standard normal probability density. */
double normalPdf(double x);

/** Standard normal cumulative distribution function. */
double normalCdf(double x);

/**
 * Standard normal quantile (inverse CDF).
 *
 * @param p Probability in (0, 1).
 */
double normalQuantile(double p);

/**
 * Regularized lower incomplete gamma function P(a, x).
 *
 * @param a Shape, a > 0.
 * @param x Argument, x >= 0.
 */
double gammaP(double a, double x);

/** Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x). */
double gammaQ(double a, double x);

/**
 * Regularized incomplete beta function I_x(a, b).
 *
 * @param a First shape, a > 0.
 * @param b Second shape, b > 0.
 * @param x Argument in [0, 1].
 */
double betaInc(double a, double b, double x);

/** Natural log of the binomial coefficient C(n, k). */
double logBinomialCoef(unsigned n, unsigned k);

} // namespace ar::math

#endif // AR_MATH_SPECIAL_HH
