#include "math/linalg.hh"

#include <cmath>

#include "util/logging.hh"

namespace ar::math
{

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n);
    for (std::size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
cholesky(const Matrix &a)
{
    const std::size_t n = a.size();
    // Verify symmetry up to round-off.
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = r + 1; c < n; ++c) {
            if (std::fabs(a.at(r, c) - a.at(c, r)) > 1e-9) {
                ar::util::fatal("cholesky: matrix is not symmetric "
                                "at (", r, ", ", c, ")");
            }
        }
    }
    Matrix l(n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c <= r; ++c) {
            double acc = a.at(r, c);
            for (std::size_t k = 0; k < c; ++k)
                acc -= l.at(r, k) * l.at(c, k);
            if (r == c) {
                if (acc <= 1e-12) {
                    ar::util::fatal("cholesky: matrix is not "
                                    "positive definite (pivot ", acc,
                                    " at ", r, ")");
                }
                l.at(r, c) = std::sqrt(acc);
            } else {
                l.at(r, c) = acc / l.at(c, c);
            }
        }
    }
    return l;
}

std::vector<double>
matVec(const Matrix &m, const std::vector<double> &x)
{
    const std::size_t n = m.size();
    if (x.size() != n)
        ar::util::fatal("matVec: dimension mismatch (", n, " vs ",
                        x.size(), ")");
    std::vector<double> y(n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < n; ++c)
            acc += m.at(r, c) * x[c];
        y[r] = acc;
    }
    return y;
}

} // namespace ar::math
