/**
 * @file
 * Scalar optimization and root finding: golden-section minimization and
 * Brent's method.  Used by the Box-Cox lambda search and distribution
 * quantile inversion.
 */

#ifndef AR_MATH_OPTIMIZE_HH
#define AR_MATH_OPTIMIZE_HH

#include <functional>

namespace ar::math
{

/** Result of a scalar optimization. */
struct ScalarResult
{
    double x = 0.0;      ///< Argmin / root location.
    double value = 0.0;  ///< Function value at x.
    int iterations = 0;  ///< Iterations consumed.
    bool converged = false;
};

/**
 * Golden-section search for the minimum of a unimodal function.
 *
 * @param f Objective.
 * @param lo Lower bracket.
 * @param hi Upper bracket.
 * @param tol Absolute tolerance on x.
 */
ScalarResult goldenSectionMin(const std::function<double(double)> &f,
                              double lo, double hi, double tol = 1e-8);

/**
 * Brent's method for a root of f on [lo, hi]; f(lo) and f(hi) must
 * bracket a sign change.
 */
ScalarResult brentRoot(const std::function<double(double)> &f,
                       double lo, double hi, double tol = 1e-12);

/**
 * Minimize over a coarse grid followed by golden-section refinement
 * around the best grid cell.  Robust for multi-modal objectives such
 * as profile likelihoods.
 *
 * @param f Objective.
 * @param lo Lower bound of the search interval.
 * @param hi Upper bound of the search interval.
 * @param grid_points Number of coarse samples.
 */
ScalarResult gridThenGoldenMin(const std::function<double(double)> &f,
                               double lo, double hi,
                               int grid_points = 64, double tol = 1e-8);

} // namespace ar::math

#endif // AR_MATH_OPTIMIZE_HH
