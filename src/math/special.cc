#include "math/special.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace ar::math
{

double
erfInv(double x)
{
    if (x <= -1.0 || x >= 1.0) {
        if (x == -1.0 || x == 1.0)
            return x * std::numeric_limits<double>::infinity();
        ar::util::fatal("erfInv: argument must lie in (-1, 1), got ", x);
    }

    // Initial approximation (Giles, 2010), then two Newton steps.
    double w = -std::log((1.0 - x) * (1.0 + x));
    double p;
    if (w < 6.25) {
        w -= 3.125;
        p = -3.6444120640178196996e-21;
        p = -1.685059138182016589e-19 + p * w;
        p = 1.2858480715256400167e-18 + p * w;
        p = 1.115787767802518096e-17 + p * w;
        p = -1.333171662854620906e-16 + p * w;
        p = 2.0972767875968561637e-17 + p * w;
        p = 6.6376381343583238325e-15 + p * w;
        p = -4.0545662729752068639e-14 + p * w;
        p = -8.1519341976054721522e-14 + p * w;
        p = 2.6335093153082322977e-12 + p * w;
        p = -1.2975133253453532498e-11 + p * w;
        p = -5.4154120542946279317e-11 + p * w;
        p = 1.051212273321532285e-09 + p * w;
        p = -4.1126339803469836976e-09 + p * w;
        p = -2.9070369957882005086e-08 + p * w;
        p = 4.2347877827932403518e-07 + p * w;
        p = -1.3654692000834678645e-06 + p * w;
        p = -1.3882523362786468719e-05 + p * w;
        p = 0.0001867342080340571352 + p * w;
        p = -0.00074070253416626697512 + p * w;
        p = -0.0060336708714301490533 + p * w;
        p = 0.24015818242558961693 + p * w;
        p = 1.6536545626831027356 + p * w;
    } else if (w < 16.0) {
        w = std::sqrt(w) - 3.25;
        p = 2.2137376921775787049e-09;
        p = 9.0756561938885390979e-08 + p * w;
        p = -2.7517406297064545428e-07 + p * w;
        p = 1.8239629214389227755e-08 + p * w;
        p = 1.5027403968909827627e-06 + p * w;
        p = -4.013867526981545969e-06 + p * w;
        p = 2.9234449089955446044e-06 + p * w;
        p = 1.2475304481671778723e-05 + p * w;
        p = -4.7318229009055733981e-05 + p * w;
        p = 6.8284851459573175448e-05 + p * w;
        p = 2.4031110387097893999e-05 + p * w;
        p = -0.0003550375203628474796 + p * w;
        p = 0.00095328937973738049703 + p * w;
        p = -0.0016882755560235047313 + p * w;
        p = 0.0024914420961078508066 + p * w;
        p = -0.0037512085075692412107 + p * w;
        p = 0.005370914553590063617 + p * w;
        p = 1.0052589676941592334 + p * w;
        p = 3.0838856104922207635 + p * w;
    } else {
        w = std::sqrt(w) - 5.0;
        p = -2.7109920616438573243e-11;
        p = -2.5556418169965252055e-10 + p * w;
        p = 1.5076572693500548083e-09 + p * w;
        p = -3.7894654401267369937e-09 + p * w;
        p = 7.6157012080783393804e-09 + p * w;
        p = -1.4960026627149240478e-08 + p * w;
        p = 2.9147953450901080826e-08 + p * w;
        p = -6.7711997758452339498e-08 + p * w;
        p = 2.2900482228026654717e-07 + p * w;
        p = -9.9298272942317002539e-07 + p * w;
        p = 4.5260625972231537039e-06 + p * w;
        p = -1.9681778105531670567e-05 + p * w;
        p = 7.5995277030017761139e-05 + p * w;
        p = -0.00021503011930044477347 + p * w;
        p = -0.00013871931833623122026 + p * w;
        p = 1.0103004648645343977 + p * w;
        p = 4.8499064014085844221 + p * w;
    }
    double r = p * x;

    // Newton refinement: solve erf(r) = x.
    const double two_over_sqrt_pi = 1.1283791670955125739;
    for (int iter = 0; iter < 2; ++iter) {
        double err = std::erf(r) - x;
        r -= err / (two_over_sqrt_pi * std::exp(-r * r));
    }
    return r;
}

double
normalPdf(double x)
{
    static const double inv_sqrt_2pi = 0.3989422804014326779;
    return inv_sqrt_2pi * std::exp(-0.5 * x * x);
}

double
normalCdf(double x)
{
    return 0.5 * std::erfc(-x * 0.70710678118654752440);
}

double
normalQuantile(double p)
{
    if (p <= 0.0 || p >= 1.0)
        ar::util::fatal("normalQuantile: p must lie in (0, 1), got ", p);
    return 1.4142135623730950488 * erfInv(2.0 * p - 1.0);
}

namespace
{

/** Series representation of P(a, x), valid for x < a + 1. */
double
gammaPSeries(double a, double x)
{
    const int max_iter = 500;
    const double eps = 1e-15;
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < max_iter; ++n) {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if (std::fabs(del) < std::fabs(sum) * eps)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Continued-fraction representation of Q(a, x), valid for x >= a + 1. */
double
gammaQContinued(double a, double x)
{
    const int max_iter = 500;
    const double eps = 1e-15;
    const double fpmin = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / fpmin;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= max_iter; ++i) {
        double an = -static_cast<double>(i) * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = b + an / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

/** Continued fraction for the incomplete beta function. */
double
betaContinued(double a, double b, double x)
{
    const int max_iter = 500;
    const double eps = 1e-15;
    const double fpmin = 1e-300;
    const double qab = a + b;
    const double qap = a + 1.0;
    const double qam = a - 1.0;
    double c = 1.0;
    double d = 1.0 - qab * x / qap;
    if (std::fabs(d) < fpmin)
        d = fpmin;
    d = 1.0 / d;
    double h = d;
    for (int m = 1; m <= max_iter; ++m) {
        const int m2 = 2 * m;
        double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        h *= d * c;
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if (std::fabs(d) < fpmin)
            d = fpmin;
        c = 1.0 + aa / c;
        if (std::fabs(c) < fpmin)
            c = fpmin;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::fabs(del - 1.0) < eps)
            break;
    }
    return h;
}

} // namespace

double
gammaP(double a, double x)
{
    if (a <= 0.0 || x < 0.0)
        ar::util::fatal("gammaP: need a > 0, x >= 0; got a=", a, " x=", x);
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinued(a, x);
}

double
gammaQ(double a, double x)
{
    return 1.0 - gammaP(a, x);
}

double
betaInc(double a, double b, double x)
{
    if (a <= 0.0 || b <= 0.0)
        ar::util::fatal("betaInc: shapes must be positive; got a=", a,
                        " b=", b);
    if (x < 0.0 || x > 1.0)
        ar::util::fatal("betaInc: x must lie in [0, 1]; got ", x);
    if (x == 0.0)
        return 0.0;
    if (x == 1.0)
        return 1.0;
    const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                            std::lgamma(b) + a * std::log(x) +
                            b * std::log1p(-x);
    const double front = std::exp(ln_front);
    if (x < (a + 1.0) / (a + b + 2.0))
        return front * betaContinued(a, b, x) / a;
    return 1.0 - front * betaContinued(b, a, 1.0 - x) / b;
}

double
logBinomialCoef(unsigned n, unsigned k)
{
    if (k > n)
        ar::util::fatal("logBinomialCoef: k (", k, ") > n (", n, ")");
    return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
           std::lgamma(n - k + 1.0);
}

} // namespace ar::math
