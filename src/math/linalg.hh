/**
 * @file
 * The small amount of dense linear algebra the library needs:
 * symmetric positive-definite Cholesky factorization (used by the
 * Gaussian copula for correlated uncertain inputs).
 */

#ifndef AR_MATH_LINALG_HH
#define AR_MATH_LINALG_HH

#include <cstddef>
#include <vector>

namespace ar::math
{

/** Dense row-major square matrix. */
class Matrix
{
  public:
    /** Zero-initialized n x n matrix. */
    explicit Matrix(std::size_t n) : n_(n), data(n * n, 0.0) {}

    /** Mutable element access. */
    double &at(std::size_t r, std::size_t c)
    {
        return data[r * n_ + c];
    }

    /** Element access. */
    double at(std::size_t r, std::size_t c) const
    {
        return data[r * n_ + c];
    }

    /** @return matrix dimension. */
    std::size_t size() const { return n_; }

    /** Identity matrix. */
    static Matrix identity(std::size_t n);

  private:
    std::size_t n_;
    std::vector<double> data;
};

/**
 * Cholesky factorization A = L L^T of a symmetric positive-definite
 * matrix.
 *
 * @param a Symmetric positive-definite input.
 * @return lower-triangular L; fatal when A is not SPD (within a
 *         small diagonal tolerance).
 */
Matrix cholesky(const Matrix &a);

/** y = M x for a square matrix and equal-length vector. */
std::vector<double> matVec(const Matrix &m,
                           const std::vector<double> &x);

} // namespace ar::math

#endif // AR_MATH_LINALG_HH
