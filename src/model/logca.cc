#include "model/logca.hh"

#include <cmath>

#include "math/optimize.hh"
#include "util/logging.hh"

namespace ar::model
{

ar::symbolic::EquationSystem
buildLogCaSystem()
{
    ar::symbolic::EquationSystem sys;
    sys.addEquation("T_host = C * g ^ beta");
    sys.addEquation("T_accel = o + L * g + T_host / A");
    sys.addEquation("Speedup = T_host / T_accel");
    sys.markUncertain("A");
    sys.markUncertain("L");
    return sys;
}

namespace
{

void
validate(const LogCaParams &p, double g)
{
    if (g <= 0.0)
        ar::util::fatal("LogCaEvaluator: granularity must be "
                        "positive, got ", g);
    if (p.compute <= 0.0 || p.accel <= 0.0 || p.beta < 0.0 ||
        p.latency < 0.0 || p.overhead < 0.0) {
        ar::util::fatal("LogCaEvaluator: invalid parameters (C=",
                        p.compute, " A=", p.accel, " beta=", p.beta,
                        " L=", p.latency, " o=", p.overhead, ")");
    }
}

} // namespace

double
LogCaEvaluator::hostTime(const LogCaParams &p, double g)
{
    validate(p, g);
    return p.compute * std::pow(g, p.beta);
}

double
LogCaEvaluator::accelTime(const LogCaParams &p, double g)
{
    validate(p, g);
    return p.overhead + p.latency * g + hostTime(p, g) / p.accel;
}

double
LogCaEvaluator::speedup(const LogCaParams &p, double g)
{
    return hostTime(p, g) / accelTime(p, g);
}

double
LogCaEvaluator::breakEvenGranularity(const LogCaParams &p,
                                     double g_max)
{
    validate(p, 1.0);
    const auto gap = [&](double g) {
        return speedup(p, g) - 1.0;
    };
    // The speedup is monotone increasing toward its asymptote for
    // beta >= 1; scan for a bracket then bisect with Brent.
    double lo = 1e-9;
    if (gap(lo) >= 0.0)
        return lo;
    double hi = 1.0;
    while (hi <= g_max && gap(hi) < 0.0)
        hi *= 2.0;
    if (hi > g_max)
        ar::util::fatal("LogCaEvaluator: accelerator never breaks "
                        "even below g_max = ", g_max);
    return ar::math::brentRoot(gap, lo, hi, 1e-10).x;
}

} // namespace ar::model
