/**
 * @file
 * The Hill-Marty heterogeneous CMP performance model extended with
 * communication overhead (Table 1 of the paper, Eqs. 3-10):
 *
 *   Speedup     = 1 / (T_seq + T_par)                            (3)
 *   T_seq       = (1 - f + c * N_total) / P_serial               (4)
 *   T_par       = f / P_parallel                                 (5)
 *   P_serial    = max{ P_core_i | N_core_i > 0 }                 (6)
 *   P_parallel  = sum_i N_core_i * P_core_i                      (7)
 *   N_total     = sum_i N_core_i                                 (8)
 *   P_core_i    = sqrt(A_core_i)        (Pollack's Rule)         (9)
 *   A_total     = sum_i N_core_i * A_core_i                      (10)
 *
 * Provided in two forms that tests prove agree: a symbolic
 * EquationSystem (what the framework front-end consumes) and a
 * hand-written closed-form evaluator (used by the design-space
 * exploration benches for speed).
 */

#ifndef AR_MODEL_HILL_MARTY_HH
#define AR_MODEL_HILL_MARTY_HH

#include <span>
#include <string>

#include "model/core_config.hh"
#include "symbolic/system.hh"

namespace ar::model
{

/** Variable-name helpers shared by the symbolic and direct paths. */
namespace names
{

/** @return "P_core<i>". */
std::string corePerf(std::size_t i);

/** @return "N_core<i>". */
std::string coreCount(std::size_t i);

/** @return "A_core<i>". */
std::string coreArea(std::size_t i);

} // namespace names

/**
 * Build the symbolic Hill-Marty equation system for a configuration
 * with k core types.  Free inputs: f, c, A_core_i; the per-type core
 * performance P_core_i and working count N_core_i are added as
 * defined variables (Pollack nominal / designed count) and marked
 * uncertain so distributions can be injected over them.
 *
 * @param num_types Number of distinct core types k (> 0).
 */
ar::symbolic::EquationSystem buildHillMartySystem(std::size_t num_types);

/** Direct closed-form evaluator over one trial's sampled inputs. */
class HillMartyEvaluator
{
  public:
    /**
     * Compute the speedup of one sampled chip.
     *
     * @param f Parallel fraction for this trial.
     * @param c Unit communication overhead for this trial.
     * @param core_perf Per-type core performance draws.
     * @param core_count Per-type working-core counts.
     * @return speedup; 0 when no usable serial or parallel capacity
     *         remains (matching the symbolic model's 1/inf -> 0).
     */
    static double speedup(double f, double c,
                          std::span<const double> core_perf,
                          std::span<const double> core_count);

    /**
     * Nominal ("certain") speedup of a configuration: Pollack-rule
     * performance, designed core counts, no uncertainty.
     */
    static double nominalSpeedup(const CoreConfig &config, double f,
                                 double c);
};

} // namespace ar::model

#endif // AR_MODEL_HILL_MARTY_HH
