#include "model/hill_marty.hh"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace ar::model
{

namespace names
{

std::string
corePerf(std::size_t i)
{
    std::ostringstream oss;
    oss << "P_core" << i;
    return oss.str();
}

std::string
coreCount(std::size_t i)
{
    std::ostringstream oss;
    oss << "N_core" << i;
    return oss.str();
}

std::string
coreArea(std::size_t i)
{
    std::ostringstream oss;
    oss << "A_core" << i;
    return oss.str();
}

} // namespace names

ar::symbolic::EquationSystem
buildHillMartySystem(std::size_t num_types)
{
    using ar::symbolic::Expr;
    using ar::symbolic::ExprPtr;

    if (num_types == 0)
        ar::util::fatal("buildHillMartySystem: need at least one core "
                        "type");

    ar::symbolic::EquationSystem sys;

    std::vector<ExprPtr> perf_terms;   // N_i * P_i
    std::vector<ExprPtr> count_terms;  // N_i
    std::vector<ExprPtr> area_terms;   // N_i * A_i
    std::vector<ExprPtr> serial_terms; // P_i * gtz(N_i)
    for (std::size_t i = 0; i < num_types; ++i) {
        const ExprPtr p = Expr::symbol(names::corePerf(i));
        const ExprPtr n = Expr::symbol(names::coreCount(i));
        const ExprPtr a = Expr::symbol(names::coreArea(i));

        // Pollack's Rule nominal performance (Eq. 9); kept as the
        // definition of the uncertain variable so the back-end can
        // centre distributions on it.
        sys.addEquation({p, Expr::sqrt(a)});
        sys.markUncertain(names::corePerf(i));
        sys.markUncertain(names::coreCount(i));

        perf_terms.push_back(n * p);
        count_terms.push_back(n);
        area_terms.push_back(n * a);
        serial_terms.push_back(p * Expr::func("gtz", n));
    }

    const ExprPtr f = Expr::symbol("f");
    const ExprPtr c = Expr::symbol("c");
    sys.markUncertain("f");
    sys.markUncertain("c");

    sys.addEquation({Expr::symbol("P_parallel"),
                     Expr::add(perf_terms)});
    sys.addEquation({Expr::symbol("N_total"),
                     Expr::add(count_terms)});
    sys.addEquation({Expr::symbol("A_total"), Expr::add(area_terms)});
    sys.addEquation({Expr::symbol("P_serial"),
                     Expr::max(serial_terms)});
    sys.addEquation({Expr::symbol("T_seq"),
                     (1.0 - f + c * Expr::symbol("N_total")) /
                         Expr::symbol("P_serial")});
    sys.addEquation({Expr::symbol("T_par"),
                     f / Expr::symbol("P_parallel")});
    sys.addEquation({Expr::symbol("Speedup"),
                     1.0 / (Expr::symbol("T_seq") +
                            Expr::symbol("T_par"))});
    return sys;
}

double
HillMartyEvaluator::speedup(double f, double c,
                            std::span<const double> core_perf,
                            std::span<const double> core_count)
{
    if (core_perf.size() != core_count.size())
        ar::util::fatal("HillMartyEvaluator::speedup: mismatched type "
                        "counts");
    if (core_perf.empty())
        ar::util::fatal("HillMartyEvaluator::speedup: no core types");

    double p_serial = 0.0;
    double p_parallel = 0.0;
    double n_total = 0.0;
    for (std::size_t i = 0; i < core_perf.size(); ++i) {
        const double n = core_count[i];
        const double p = core_perf[i];
        // A NaN input (e.g. an unmodeled-state gap in the multi-state
        // model) must poison the sample, not be silently treated as a
        // dead type by the p_serial guard below; the symbolic model
        // propagates it through P_parallel the same way.
        if (std::isnan(n) || std::isnan(p))
            return std::numeric_limits<double>::quiet_NaN();
        if (n > 0.0 && p > p_serial)
            p_serial = p;
        p_parallel += n * p;
        n_total += n;
    }
    if (p_serial <= 0.0)
        return 0.0;

    const double t_seq = (1.0 - f + c * n_total) / p_serial;
    double t_par = 0.0;
    if (f > 0.0) {
        if (p_parallel <= 0.0)
            return 0.0;
        t_par = f / p_parallel;
    }
    const double total = t_seq + t_par;
    if (total <= 0.0)
        return 0.0;
    return 1.0 / total;
}

double
HillMartyEvaluator::nominalSpeedup(const CoreConfig &config, double f,
                                   double c)
{
    std::vector<double> perf;
    std::vector<double> count;
    perf.reserve(config.numTypes());
    count.reserve(config.numTypes());
    for (const auto &t : config.types()) {
        perf.push_back(std::sqrt(t.area));
        count.push_back(static_cast<double>(t.count));
    }
    return speedup(f, c, perf, count);
}

} // namespace ar::model
