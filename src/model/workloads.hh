/**
 * @file
 * Synthetic multi-threaded workload suite.
 *
 * The paper calibrates its f/c uncertainty models against PARSEC
 * characterization data [5], which this repository cannot ship; this
 * module provides the synthetic equivalent: a suite of benchmark
 * profiles whose parallel fractions and communication overheads span
 * the same range the PARSEC study reports, plus a measurement model
 * producing noisy per-run observations.  Feeding those observations
 * to the extraction pipeline reproduces the paper's workflow of
 * inferring application uncertainty models from benchmark data.
 */

#ifndef AR_MODEL_WORKLOADS_HH
#define AR_MODEL_WORKLOADS_HH

#include <string>
#include <vector>

#include "util/rng.hh"

namespace ar::model
{

/** One benchmark's hidden characterization. */
struct BenchmarkProfile
{
    std::string name;
    double f = 0.9;  ///< True parallel fraction.
    double c = 0.01; ///< True unit communication overhead.
};

/**
 * A 13-entry suite patterned on the published PARSEC span: parallel
 * fractions from ~0.6 (pipeline-limited) to ~0.999 (data parallel)
 * and communication overheads over two orders of magnitude.
 */
std::vector<BenchmarkProfile> syntheticSuite();

/** Lookup a profile by name; fatal when absent. */
BenchmarkProfile profileByName(const std::string &name);

/**
 * Observed parallel fractions over repeated measurements of one
 * benchmark.  Run-to-run variation follows the paper's Table-2 shape
 * (normalized binomial around the true f); measurement noise scale
 * is sigma * (1 - f) as in Table 3.
 *
 * @param profile Benchmark to measure.
 * @param runs Number of measurement runs.
 * @param sigma Run-to-run variability level.
 * @param rng Random stream.
 */
std::vector<double> observeParallelFraction(
    const BenchmarkProfile &profile, std::size_t runs, double sigma,
    ar::util::Rng &rng);

/** Observed communication overheads (sd = sigma * c). */
std::vector<double> observeCommOverhead(
    const BenchmarkProfile &profile, std::size_t runs, double sigma,
    ar::util::Rng &rng);

} // namespace ar::model

#endif // AR_MODEL_WORKLOADS_HH
