/**
 * @file
 * Energy-efficiency extension: the Woo-Lee many-core power model
 * (reference [52] of the paper, "Extending Amdahl's Law for
 * Energy-Efficient Computing in the Many-Core Era").  Section 2.1 of
 * the paper calls out power-efficiency objectives as a direct
 * application of the framework; this module provides that model in
 * the same dual (symbolic + direct) form as Hill-Marty.
 *
 * For a symmetric CMP of N cores where an idle core draws fraction k
 * of an active core's power:
 *
 *   T      = (1 - f) + f / N                 (normalized exec time)
 *   E      = (1 - f) * (1 + (N - 1) * k) + f (normalized energy)
 *   Perf   = 1 / T
 *   PerfPerW = 1 / E                          (J per op inverted)
 *   PerfPerJ = Perf * PerfPerW                (throughput per joule)
 *
 * Uncertain inputs: f (application) and k (technology projection --
 * how well power gating works in the target node).
 */

#ifndef AR_MODEL_WOO_LEE_HH
#define AR_MODEL_WOO_LEE_HH

#include "symbolic/system.hh"

namespace ar::model
{

/**
 * Build the symbolic Woo-Lee system.  Free inputs: N (core count).
 * Uncertain variables: f (parallel fraction), k (idle-power ratio).
 * Responsive variables: Perf, PerfPerW, PerfPerJ.
 */
ar::symbolic::EquationSystem buildWooLeeSystem();

/** Direct closed-form evaluator (cross-checked against symbolic). */
class WooLeeEvaluator
{
  public:
    /** Normalized execution time. */
    static double execTime(double f, double n);

    /** Normalized energy consumption. */
    static double energy(double f, double k, double n);

    /** Performance (1 / time). */
    static double perf(double f, double n);

    /** Performance per watt (W = E / T, so Perf/W = T / E / T = 1/E). */
    static double perfPerWatt(double f, double k, double n);

    /** Performance per joule: Perf * Perf/W. */
    static double perfPerJoule(double f, double k, double n);
};

} // namespace ar::model

#endif // AR_MODEL_WOO_LEE_HH
