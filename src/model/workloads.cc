#include "model/workloads.hh"

#include "dist/discrete.hh"
#include "util/logging.hh"

namespace ar::model
{

std::vector<BenchmarkProfile>
syntheticSuite()
{
    // Names follow the PARSEC convention; the (f, c) values are
    // synthetic but span the published characterization range.
    return {
        {"blackscholes-like", 0.999, 0.001},
        {"bodytrack-like", 0.98, 0.008},
        {"canneal-like", 0.93, 0.012},
        {"dedup-like", 0.95, 0.02},
        {"facesim-like", 0.97, 0.01},
        {"ferret-like", 0.96, 0.015},
        {"fluidanimate-like", 0.975, 0.012},
        {"freqmine-like", 0.985, 0.004},
        {"raytrace-like", 0.99, 0.003},
        {"streamcluster-like", 0.94, 0.025},
        {"swaptions-like", 0.998, 0.001},
        {"vips-like", 0.92, 0.01},
        {"x264-like", 0.60, 0.03},
    };
}

BenchmarkProfile
profileByName(const std::string &name)
{
    for (const auto &p : syntheticSuite()) {
        if (p.name == name)
            return p;
    }
    ar::util::fatal("profileByName: unknown benchmark '", name, "'");
}

std::vector<double>
observeParallelFraction(const BenchmarkProfile &profile,
                        std::size_t runs, double sigma,
                        ar::util::Rng &rng)
{
    if (sigma <= 0.0)
        ar::util::fatal("observeParallelFraction: sigma must be "
                        "positive, got ", sigma);
    const double sd = sigma * (1.0 - profile.f);
    const auto dist = ar::dist::NormalizedBinomial::fromMeanStddev(
        profile.f, sd);
    return dist.sampleMany(runs, rng);
}

std::vector<double>
observeCommOverhead(const BenchmarkProfile &profile, std::size_t runs,
                    double sigma, ar::util::Rng &rng)
{
    if (sigma <= 0.0)
        ar::util::fatal("observeCommOverhead: sigma must be "
                        "positive, got ", sigma);
    const auto dist = ar::dist::NormalizedBinomial::fromMeanStddev(
        profile.c, sigma * profile.c);
    return dist.sampleMany(runs, rng);
}

} // namespace ar::model
