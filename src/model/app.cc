#include "model/app.hh"

#include "util/logging.hh"

namespace ar::model
{

AppParams
appHPLC()
{
    return {"HPLC", 0.999, 0.001};
}

AppParams
appHPHC()
{
    return {"HPHC", 0.999, 0.01};
}

AppParams
appLPLC()
{
    return {"LPLC", 0.9, 0.001};
}

AppParams
appLPHC()
{
    return {"LPHC", 0.9, 0.01};
}

std::vector<AppParams>
standardApps()
{
    return {appHPLC(), appHPHC(), appLPLC(), appLPHC()};
}

AppParams
appByName(const std::string &name)
{
    for (const auto &app : standardApps()) {
        if (app.name == name)
            return app;
    }
    ar::util::fatal("appByName: unknown application class '", name,
                    "' (expected HPLC, HPHC, LPLC, or LPHC)");
}

} // namespace ar::model
