/**
 * @file
 * The paper's injected-uncertainty specification (Table 3) realized
 * by the hidden ground-truth models (Table 2):
 *
 *   f       ~ Binomial(M, p)/M    mean f,  stddev sigma*(1-f)
 *   c       ~ Binomial(M, p)/M    mean c,  stddev sigma*c
 *   P_core  ~ Bernoulli(1 - sigma*gamma) x LogNormal(mean P, sd sigma*P)
 *   N_core  ~ Binomial(N_designed, yield(area))
 *
 * The Bernoulli factor is the severe-design-bug model (the core type
 * works with probability 1 - sigma*gamma); the LogNormal factor is
 * intra-die process variation centred on Pollack's Rule; the Binomial
 * on N is fabrication yield and depends only on core size, not sigma.
 */

#ifndef AR_MODEL_UNCERTAINTY_HH
#define AR_MODEL_UNCERTAINTY_HH

#include "mc/propagator.hh"
#include "model/app.hh"
#include "model/core_config.hh"

namespace ar::model
{

/** Which uncertainties are injected and how strongly (Table 3). */
struct UncertaintySpec
{
    double sigma_f = 0.0;      ///< f stddev scale: sd = sigma_f*(1-f).
    double sigma_c = 0.0;      ///< c stddev scale: sd = sigma_c*c.
    double sigma_perf = 0.0;   ///< P stddev scale: sd = sigma_perf*P.
    double sigma_design = 0.0; ///< Failure prob = sigma_design*gamma.
    bool fab = false;          ///< Yield-driven Binomial on N_core.
    double gamma = 0.15;       ///< Intrinsic design-bug probability.

    /** One performance state of the multi-state core model. */
    struct CoreState
    {
        double multiplier = 1.0;   ///< Performance scale, >= 0.
        double probability = 0.0;  ///< Per-trial probability.

        friend bool operator==(const CoreState &,
                               const CoreState &) = default;
    };

    /**
     * Multi-state core degradation (risk/multi_state.hh semantics).
     * When non-empty, every trial samples one state per core size
     * and scales that size's performance by the state multiplier;
     * this replaces the Bernoulli severe-design-bug factor
     * (sigma_design is ignored while states are declared).
     * Probabilities must each lie in [0, 1] and sum to at most 1; a
     * sum below 1 is unmodeled-state mass that samples NaN and flows
     * through the run's fault policy.
     */
    std::vector<CoreState> core_states;

    /**
     * Pairwise correlations between the shared application pools
     * ("f" and "c" are the only supported names), realized by
     * Iman-Conover rank reordering so each pool keeps its exact LHS
     * strata.  A pair is inactive while either pool is degenerate
     * (its sigma is zero).
     */
    std::vector<ar::mc::Correlation> correlations;

    /** All five types at one level (Figures 7-9 x-axis). */
    static UncertaintySpec all(double sigma, double gamma = 0.15);

    /**
     * Split application vs architecture axes (Figures 10-12):
     * sigma_app drives f and c; sigma_arch drives perf and design and
     * enables fabrication uncertainty when positive.
     */
    static UncertaintySpec appArch(double sigma_app, double sigma_arch,
                                   double gamma = 0.15);

    /** No uncertainty at all (the conventional "certain" analysis). */
    static UncertaintySpec none();
};

/**
 * Build propagation bindings for a configuration under the hidden
 * ground-truth models.  Variables with zero injected uncertainty are
 * bound as fixed values.
 *
 * @param config Chip configuration (defines the per-type variables).
 * @param app Application class providing nominal f and c.
 * @param spec Injection levels.
 */
ar::mc::InputBindings groundTruthBindings(const CoreConfig &config,
                                          const AppParams &app,
                                          const UncertaintySpec &spec);

/**
 * Ground-truth distribution for the parallel fraction f (Table 2
 * Eq. 11); requires sigma_f > 0.
 */
ar::dist::DistPtr groundTruthF(const AppParams &app, double sigma_f);

/**
 * Ground-truth distribution for the communication overhead c
 * (Table 2 Eq. 12); requires sigma_c > 0.
 */
ar::dist::DistPtr groundTruthC(const AppParams &app, double sigma_c);

/**
 * Ground-truth distribution for one core type's performance (Table 2
 * Eq. 14): LogNormal process variation times Bernoulli design
 * survival.  Either factor degenerates when its sigma is zero.
 *
 * @param area Core area (Pollack nominal performance = sqrt(area)).
 * @param sigma_perf Process-variation scale.
 * @param sigma_design Design-failure scale.
 * @param gamma Intrinsic design-bug probability.
 */
ar::dist::DistPtr groundTruthCorePerf(double area, double sigma_perf,
                                      double sigma_design,
                                      double gamma);

/**
 * Ground-truth distribution for one core type's working count
 * (Table 2 Eq. 13): Binomial(designed count, yield(area)).
 */
ar::dist::DistPtr groundTruthCoreCount(double area, unsigned count);

} // namespace ar::model

#endif // AR_MODEL_UNCERTAINTY_HH
