/**
 * @file
 * Application workload classes.  The paper characterizes applications
 * by the parallelizable fraction f and the unit communication
 * overhead c, and studies the four corner classes HPLC / HPHC / LPLC /
 * LPHC (Section 4.1).
 */

#ifndef AR_MODEL_APP_HH
#define AR_MODEL_APP_HH

#include <string>
#include <vector>

namespace ar::model
{

/** Application characteristics for the Hill-Marty model. */
struct AppParams
{
    std::string name;
    double f = 0.9;   ///< Parallelizable fraction (Amdahl's f).
    double c = 0.001; ///< Unit communication overhead.
};

/** High parallelism (f = 0.999), low communication (c = 0.001). */
AppParams appHPLC();

/** High parallelism (f = 0.999), high communication (c = 0.01). */
AppParams appHPHC();

/** Low parallelism (f = 0.9), low communication (c = 0.001). */
AppParams appLPLC();

/** Low parallelism (f = 0.9), high communication (c = 0.01). */
AppParams appLPHC();

/** The four paper classes in presentation order. */
std::vector<AppParams> standardApps();

/** Lookup by class name; fatal on unknown names. */
AppParams appByName(const std::string &name);

} // namespace ar::model

#endif // AR_MODEL_APP_HH
