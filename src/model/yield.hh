/**
 * @file
 * Chip yield model (Table 2 Eq. 15 / Table 4 of the paper): the
 * negative-binomial yield formula
 *
 *     yield(A) = (1 + d * A / alpha)^(-alpha)
 *
 * with defect density d and clustering parameter alpha calibrated so
 * that the produced rates match the paper's Table 4
 * (8 -> 98%, 16 -> 96%, 32 -> 92%, 64 -> 85%, 128 -> 75%).
 */

#ifndef AR_MODEL_YIELD_HH
#define AR_MODEL_YIELD_HH

namespace ar::model
{

/**
 * Calibrated defect density per resource unit.  Solves
 * yield(8) = 0.98 with alpha = 1: d = (1/0.98 - 1) / 8.
 */
constexpr double kDefectDensity = 0.02040816326530612 / 8.0;

/** Calibrated clustering parameter (alpha = 1 fits Table 4 best). */
constexpr double kYieldAlpha = 1.0;

/**
 * Yield rate for a core of the given area.
 *
 * @param area Core area in resource units (> 0).
 * @param d Defect density per unit area.
 * @param alpha Defect clustering parameter.
 */
double yieldRate(double area, double d = kDefectDensity,
                 double alpha = kYieldAlpha);

} // namespace ar::model

#endif // AR_MODEL_YIELD_HH
