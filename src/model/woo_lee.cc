#include "model/woo_lee.hh"

#include "util/logging.hh"

namespace ar::model
{

ar::symbolic::EquationSystem
buildWooLeeSystem()
{
    ar::symbolic::EquationSystem sys;
    sys.addEquation("T = (1 - f) + f / N");
    sys.addEquation("E = (1 - f) * (1 + (N - 1) * k) + f");
    sys.addEquation("Perf = 1 / T");
    sys.addEquation("PerfPerW = 1 / E");
    sys.addEquation("PerfPerJ = Perf * PerfPerW");
    sys.markUncertain("f");
    sys.markUncertain("k");
    return sys;
}

double
WooLeeEvaluator::execTime(double f, double n)
{
    if (n <= 0.0)
        ar::util::fatal("WooLeeEvaluator: core count must be "
                        "positive, got ", n);
    return (1.0 - f) + f / n;
}

double
WooLeeEvaluator::energy(double f, double k, double n)
{
    if (n <= 0.0)
        ar::util::fatal("WooLeeEvaluator: core count must be "
                        "positive, got ", n);
    return (1.0 - f) * (1.0 + (n - 1.0) * k) + f;
}

double
WooLeeEvaluator::perf(double f, double n)
{
    return 1.0 / execTime(f, n);
}

double
WooLeeEvaluator::perfPerWatt(double f, double k, double n)
{
    return 1.0 / energy(f, k, n);
}

double
WooLeeEvaluator::perfPerJoule(double f, double k, double n)
{
    return perf(f, n) * perfPerWatt(f, k, n);
}

} // namespace ar::model
