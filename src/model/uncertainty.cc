#include "model/uncertainty.hh"

#include <cmath>

#include "dist/combinators.hh"
#include "dist/discrete.hh"
#include "dist/lognormal.hh"
#include "model/hill_marty.hh"
#include "model/yield.hh"
#include "util/logging.hh"

namespace ar::model
{

UncertaintySpec
UncertaintySpec::all(double sigma, double gamma)
{
    UncertaintySpec s;
    s.sigma_f = s.sigma_c = s.sigma_perf = s.sigma_design = sigma;
    s.fab = sigma > 0.0;
    s.gamma = gamma;
    return s;
}

UncertaintySpec
UncertaintySpec::appArch(double sigma_app, double sigma_arch,
                         double gamma)
{
    UncertaintySpec s;
    s.sigma_f = s.sigma_c = sigma_app;
    s.sigma_perf = s.sigma_design = sigma_arch;
    s.fab = sigma_arch > 0.0;
    s.gamma = gamma;
    return s;
}

UncertaintySpec
UncertaintySpec::none()
{
    return UncertaintySpec{};
}

ar::dist::DistPtr
groundTruthF(const AppParams &app, double sigma_f)
{
    if (sigma_f <= 0.0)
        ar::util::fatal("groundTruthF: sigma_f must be positive");
    const double sd = sigma_f * (1.0 - app.f);
    return std::make_shared<ar::dist::NormalizedBinomial>(
        ar::dist::NormalizedBinomial::fromMeanStddev(app.f, sd));
}

ar::dist::DistPtr
groundTruthC(const AppParams &app, double sigma_c)
{
    if (sigma_c <= 0.0)
        ar::util::fatal("groundTruthC: sigma_c must be positive");
    const double sd = sigma_c * app.c;
    return std::make_shared<ar::dist::NormalizedBinomial>(
        ar::dist::NormalizedBinomial::fromMeanStddev(app.c, sd));
}

ar::dist::DistPtr
groundTruthCorePerf(double area, double sigma_perf, double sigma_design,
                    double gamma)
{
    const double nominal = std::sqrt(area);
    ar::dist::DistPtr base;
    if (sigma_perf > 0.0) {
        base = std::make_shared<ar::dist::LogNormal>(
            ar::dist::LogNormal::fromMeanStddev(nominal,
                                                sigma_perf * nominal));
    } else {
        base = std::make_shared<ar::dist::Degenerate>(nominal);
    }
    const double fail_prob = sigma_design * gamma;
    if (fail_prob <= 0.0)
        return base;
    if (fail_prob > 1.0)
        ar::util::fatal("groundTruthCorePerf: failure probability ",
                        fail_prob, " exceeds 1");
    auto survives =
        std::make_shared<ar::dist::Bernoulli>(1.0 - fail_prob);
    return std::make_shared<ar::dist::Product>(std::move(survives),
                                               std::move(base));
}

ar::dist::DistPtr
groundTruthCoreCount(double area, unsigned count)
{
    return std::make_shared<ar::dist::Binomial>(count, yieldRate(area));
}

ar::mc::InputBindings
groundTruthBindings(const CoreConfig &config, const AppParams &app,
                    const UncertaintySpec &spec)
{
    ar::mc::InputBindings in;

    if (spec.sigma_f > 0.0)
        in.uncertain["f"] = groundTruthF(app, spec.sigma_f);
    else
        in.fixed["f"] = app.f;

    if (spec.sigma_c > 0.0)
        in.uncertain["c"] = groundTruthC(app, spec.sigma_c);
    else
        in.fixed["c"] = app.c;

    const auto &types = config.types();
    for (std::size_t i = 0; i < types.size(); ++i) {
        const auto &t = types[i];
        in.fixed[names::coreArea(i)] = t.area;

        if (spec.sigma_perf > 0.0 || spec.sigma_design > 0.0) {
            in.uncertain[names::corePerf(i)] = groundTruthCorePerf(
                t.area, spec.sigma_perf, spec.sigma_design, spec.gamma);
        } else {
            in.fixed[names::corePerf(i)] = std::sqrt(t.area);
        }

        if (spec.fab) {
            in.uncertain[names::coreCount(i)] =
                groundTruthCoreCount(t.area, t.count);
        } else {
            in.fixed[names::coreCount(i)] =
                static_cast<double>(t.count);
        }
    }
    return in;
}

} // namespace ar::model
