/**
 * @file
 * CMP core configurations: multisets of (core area, count) pairs under
 * a total chip-area budget.  The canonical form (sorted by area
 * descending, equal areas merged) makes configurations comparable and
 * hashable for design-space enumeration.
 */

#ifndef AR_MODEL_CORE_CONFIG_HH
#define AR_MODEL_CORE_CONFIG_HH

#include <string>
#include <vector>

namespace ar::model
{

/** One core type: a size (area in resource units) and a count. */
struct CoreType
{
    double area = 0.0;
    unsigned count = 0;
};

/** A chip configuration: a canonical multiset of core types. */
class CoreConfig
{
  public:
    CoreConfig() = default;

    /**
     * Build from raw (area, count) pairs; merges equal areas, drops
     * zero counts, and sorts by area descending.
     */
    explicit CoreConfig(std::vector<CoreType> types);

    /** @return the canonical core-type list (area descending). */
    const std::vector<CoreType> &types() const { return types_; }

    /** @return number of distinct core types. */
    std::size_t numTypes() const { return types_.size(); }

    /** @return total core count. */
    unsigned totalCores() const;

    /** @return total consumed area. */
    double totalArea() const;

    /**
     * Render as e.g. "1x128 + 16x8" (count x area, area descending).
     * This string is the canonical key of the configuration.
     */
    std::string describe() const;

    /**
     * Parse "1x128 + 16x8" (whitespace optional).  Fatal on syntax
     * errors.
     */
    static CoreConfig parse(const std::string &text);

    /** n identical cores of the given area. */
    static CoreConfig symmetric(unsigned count, double area);

    /** Equality on canonical form. */
    bool operator==(const CoreConfig &other) const;

  private:
    std::vector<CoreType> types_;
};

/** The paper's three running examples (Figure 6). */
CoreConfig symCores();    ///< 32x8
CoreConfig asymCores();   ///< 1x128 + 16x8
CoreConfig heteroCores(); ///< 1x128 + 1x64 + 1x32 + 1x16 + 2x8

} // namespace ar::model

#endif // AR_MODEL_CORE_CONFIG_HH
