#include "model/core_config.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ar::model
{

CoreConfig::CoreConfig(std::vector<CoreType> types)
{
    for (const auto &t : types) {
        if (t.count == 0)
            continue;
        if (t.area <= 0.0)
            ar::util::fatal("CoreConfig: core area must be positive, "
                            "got ", t.area);
        bool merged = false;
        for (auto &existing : types_) {
            if (existing.area == t.area) {
                existing.count += t.count;
                merged = true;
                break;
            }
        }
        if (!merged)
            types_.push_back(t);
    }
    std::sort(types_.begin(), types_.end(),
              [](const CoreType &a, const CoreType &b) {
                  return a.area > b.area;
              });
}

unsigned
CoreConfig::totalCores() const
{
    unsigned n = 0;
    for (const auto &t : types_)
        n += t.count;
    return n;
}

double
CoreConfig::totalArea() const
{
    double a = 0.0;
    for (const auto &t : types_)
        a += t.area * static_cast<double>(t.count);
    return a;
}

std::string
CoreConfig::describe() const
{
    if (types_.empty())
        return "(empty)";
    std::ostringstream oss;
    bool first = true;
    for (const auto &t : types_) {
        if (!first)
            oss << " + ";
        oss << t.count << "x" << ar::util::formatDouble(t.area);
        first = false;
    }
    return oss.str();
}

CoreConfig
CoreConfig::parse(const std::string &text)
{
    std::vector<CoreType> types;
    for (const auto &part : ar::util::split(text, '+')) {
        const std::string item = ar::util::trim(part);
        if (item.empty())
            ar::util::fatal("CoreConfig::parse: empty term in '", text,
                            "'");
        const auto x_pos = item.find('x');
        if (x_pos == std::string::npos)
            ar::util::fatal("CoreConfig::parse: expected COUNTxAREA in "
                            "'", item, "'");
        double count = 0.0, area = 0.0;
        if (!ar::util::parseDouble(item.substr(0, x_pos), count) ||
            !ar::util::parseDouble(item.substr(x_pos + 1), area)) {
            ar::util::fatal("CoreConfig::parse: malformed term '", item,
                            "'");
        }
        if (count < 1.0 || count != static_cast<unsigned>(count))
            ar::util::fatal("CoreConfig::parse: count must be a "
                            "positive integer in '", item, "'");
        types.push_back({area, static_cast<unsigned>(count)});
    }
    return CoreConfig(std::move(types));
}

CoreConfig
CoreConfig::symmetric(unsigned count, double area)
{
    return CoreConfig({{area, count}});
}

bool
CoreConfig::operator==(const CoreConfig &other) const
{
    if (types_.size() != other.types_.size())
        return false;
    for (std::size_t i = 0; i < types_.size(); ++i) {
        if (types_[i].area != other.types_[i].area ||
            types_[i].count != other.types_[i].count) {
            return false;
        }
    }
    return true;
}

CoreConfig
symCores()
{
    return CoreConfig::symmetric(32, 8.0);
}

CoreConfig
asymCores()
{
    return CoreConfig({{128.0, 1}, {8.0, 16}});
}

CoreConfig
heteroCores()
{
    return CoreConfig({{128.0, 1}, {64.0, 1}, {32.0, 1}, {16.0, 1},
                       {8.0, 2}});
}

} // namespace ar::model
