#include "model/yield.hh"

#include <cmath>

#include "util/logging.hh"

namespace ar::model
{

double
yieldRate(double area, double d, double alpha)
{
    if (area <= 0.0)
        ar::util::fatal("yieldRate: area must be positive, got ", area);
    if (d < 0.0 || alpha <= 0.0)
        ar::util::fatal("yieldRate: need d >= 0 and alpha > 0; got d=",
                        d, " alpha=", alpha);
    return std::pow(1.0 + d * area / alpha, -alpha);
}

} // namespace ar::model
