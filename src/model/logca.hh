/**
 * @file
 * LogCA-style accelerator performance model (Altaf & Wood, ISCA'17 --
 * reference [2] of the paper, called out in Section 2.1 as a direct
 * application target for the framework).
 *
 * A kernel of granularity g (bytes/elements offloaded) runs either on
 * the host or on an accelerator:
 *
 *   T_host(g)  = C * g^beta              (computational index)
 *   T_accel(g) = o + L * g + T_host(g)/A (overhead, link, kernel)
 *   Speedup(g) = T_host(g) / T_accel(g)
 *
 * with o the fixed offload overhead, L the per-unit interface
 * latency, A the peak acceleration, and beta the algorithmic
 * complexity exponent.  A and L are natural carriers of projection
 * uncertainty for an accelerator that only exists as a datasheet.
 */

#ifndef AR_MODEL_LOGCA_HH
#define AR_MODEL_LOGCA_HH

#include "symbolic/system.hh"

namespace ar::model
{

/** LogCA model parameters. */
struct LogCaParams
{
    double latency = 0.01;  ///< L: per-unit interface latency.
    double overhead = 1.0;  ///< o: fixed offload overhead.
    double compute = 1.0;   ///< C: computational-index coefficient.
    double accel = 10.0;    ///< A: peak acceleration.
    double beta = 1.0;      ///< Complexity exponent (>= 0).
};

/**
 * Build the symbolic LogCA system.  Free input: g (granularity) and
 * the certain parameters; uncertain variables: A and L.
 * Responsive variables: T_host, T_accel, Speedup.
 */
ar::symbolic::EquationSystem buildLogCaSystem();

/** Direct closed-form evaluator (cross-checked against symbolic). */
class LogCaEvaluator
{
  public:
    /** Host-only execution time at granularity g. */
    static double hostTime(const LogCaParams &p, double g);

    /** Accelerated execution time at granularity g. */
    static double accelTime(const LogCaParams &p, double g);

    /** Speedup of offloading at granularity g. */
    static double speedup(const LogCaParams &p, double g);

    /**
     * Break-even granularity g1 (smallest g with speedup >= 1), found
     * numerically; fatal when the accelerator never breaks even on
     * (0, g_max].
     */
    static double breakEvenGranularity(const LogCaParams &p,
                                       double g_max = 1e12);
};

} // namespace ar::model

#endif // AR_MODEL_LOGCA_HH
