#include "stats/quantiles.hh"

#include <algorithm>
#include <cmath>

#include "util/diagnostics.hh"
#include "util/logging.hh"

namespace ar::stats
{

double
quantileSorted(std::span<const double> sorted, double q)
{
    if (sorted.empty())
        ar::util::raiseDiagnostic("quantileSorted: empty sample");
    // Negated so a NaN q is rejected too; `q < 0.0 || q > 1.0` lets
    // NaN through to an out-of-range size_t cast (UB).
    if (!(q >= 0.0 && q <= 1.0)) {
        ar::util::raiseDiagnostic(
            "quantileSorted: q must lie in [0, 1], got " +
            std::to_string(q));
    }
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= sorted.size())
        return sorted.back();
    return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double
quantile(std::span<const double> xs, double q)
{
    std::vector<double> copy(xs.begin(), xs.end());
    std::sort(copy.begin(), copy.end());
    return quantileSorted(copy, q);
}

double
median(std::span<const double> xs)
{
    return quantile(xs, 0.5);
}

Ecdf::Ecdf(std::span<const double> xs)
    : data(xs.begin(), xs.end())
{
    if (data.empty())
        ar::util::raiseDiagnostic("Ecdf: empty sample");
    std::sort(data.begin(), data.end());
}

double
Ecdf::operator()(double x) const
{
    const auto it = std::upper_bound(data.begin(), data.end(), x);
    return static_cast<double>(it - data.begin()) /
           static_cast<double>(data.size());
}

double
Ecdf::quantile(double q) const
{
    return quantileSorted(data, q);
}

double
ksStatistic(std::span<const double> a, std::span<const double> b)
{
    if (a.empty() || b.empty())
        ar::util::raiseDiagnostic("ksStatistic: empty sample");
    std::vector<double> sa(a.begin(), a.end());
    std::vector<double> sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    std::size_t i = 0, j = 0;
    double d = 0.0;
    while (i < sa.size() && j < sb.size()) {
        const double x = std::min(sa[i], sb[j]);
        while (i < sa.size() && sa[i] <= x)
            ++i;
        while (j < sb.size() && sb[j] <= x)
            ++j;
        const double fa = static_cast<double>(i) /
                          static_cast<double>(sa.size());
        const double fb = static_cast<double>(j) /
                          static_cast<double>(sb.size());
        d = std::max(d, std::fabs(fa - fb));
    }
    return d;
}

} // namespace ar::stats
