#include "stats/kde.hh"

#include <algorithm>
#include <cmath>

#include "math/numeric.hh"
#include "math/special.hh"
#include "stats/quantiles.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

namespace ar::stats
{

double
GaussianKde::silvermanBandwidth(std::span<const double> xs)
{
    if (xs.size() < 2) {
        ar::util::raiseDiagnostic(
            "silvermanBandwidth: need >= 2 samples, got " +
            std::to_string(xs.size()));
    }
    const double sd = ar::math::stddev(xs);
    const double iqr = quantile(xs, 0.75) - quantile(xs, 0.25);
    double spread = sd;
    if (iqr > 0.0)
        spread = std::min(sd, iqr / 1.349);
    if (spread <= 0.0)
        spread = std::max(sd, 1e-9);
    const double n = static_cast<double>(xs.size());
    return 0.9 * spread * std::pow(n, -0.2);
}

GaussianKde::GaussianKde(std::span<const double> xs, double bandwidth)
    : points(xs.begin(), xs.end())
{
    if (points.size() < 2) {
        ar::util::raiseDiagnostic(
            "GaussianKde: need >= 2 samples, got " +
            std::to_string(points.size()));
    }
    h = bandwidth > 0.0 ? bandwidth : silvermanBandwidth(points);
    if (h <= 0.0)
        h = 1e-9;
    // Points are kept sorted so pdf/cdf can restrict evaluation to
    // the +-8h window where the Gaussian kernel is non-negligible.
    std::sort(points.begin(), points.end());
}

double
GaussianKde::pdf(double x) const
{
    const auto lo = std::lower_bound(points.begin(), points.end(),
                                     x - 8.0 * h);
    const auto hi = std::upper_bound(lo, points.end(), x + 8.0 * h);
    double acc = 0.0;
    for (auto it = lo; it != hi; ++it)
        acc += ar::math::normalPdf((x - *it) / h);
    return acc / (static_cast<double>(points.size()) * h);
}

double
GaussianKde::cdf(double x) const
{
    const auto lo = std::lower_bound(points.begin(), points.end(),
                                     x - 8.0 * h);
    const auto hi = std::upper_bound(lo, points.end(), x + 8.0 * h);
    // Kernels entirely below the window contribute ~1 each.
    double acc = static_cast<double>(lo - points.begin());
    for (auto it = lo; it != hi; ++it)
        acc += ar::math::normalCdf((x - *it) / h);
    return acc / static_cast<double>(points.size());
}

double
GaussianKde::sample(ar::util::Rng &rng) const
{
    const double center = points[rng.uniformInt(points.size())];
    return center + h * rng.gaussian();
}

std::vector<double>
GaussianKde::sample(std::size_t count, ar::util::Rng &rng) const
{
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(sample(rng));
    return out;
}

} // namespace ar::stats
