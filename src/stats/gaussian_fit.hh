/**
 * @file
 * Maximum-likelihood Gaussian fitting (Figure 2, step 4).
 */

#ifndef AR_STATS_GAUSSIAN_FIT_HH
#define AR_STATS_GAUSSIAN_FIT_HH

#include <span>

namespace ar::stats
{

/** Parameters of a fitted Gaussian. */
struct GaussianFit
{
    double mean = 0.0;
    double stddev = 0.0;     ///< MLE (n denominator).
    double log_likelihood = 0.0;
};

/**
 * Fit a Gaussian to data by maximum likelihood.
 *
 * @param xs Sample; needs at least two distinct values.
 */
GaussianFit fitGaussian(std::span<const double> xs);

} // namespace ar::stats

#endif // AR_STATS_GAUSSIAN_FIT_HH
