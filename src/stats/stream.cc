#include "stats/stream.hh"

#include <algorithm>
#include <cmath>

namespace ar::stats
{

namespace
{

/** z for a two-sided 95% normal confidence interval. */
constexpr double kZ95 = 1.959963984540054;

} // namespace

void
StreamMoments::add(double x)
{
    if (n_ == 0) {
        lo_ = hi_ = x;
    } else {
        lo_ = std::min(lo_, x);
        hi_ = std::max(hi_, x);
    }
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
}

void
StreamMoments::merge(const StreamMoments &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double d = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += d * (nb / nt);
    m2_ += other.m2_ + d * d * (na * nb / nt);
    lo_ = std::min(lo_, other.lo_);
    hi_ = std::max(hi_, other.hi_);
    n_ += other.n_;
}

double
StreamMoments::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
StreamMoments::stddev() const
{
    return std::sqrt(variance());
}

void
StreamRisk::add(double cost, bool below)
{
    sum_.add(cost);
    moments_.add(cost);
    if (below)
        ++below_;
}

void
StreamRisk::merge(const StreamRisk &other)
{
    // Folding the later partial's compensated value keeps the merge
    // a deterministic function of (this, other) -- the positional
    // contract -- at the cost of dropping other's residual
    // compensation term.
    if (other.count() == 0)
        return;
    sum_.add(other.sum_.value());
    moments_.merge(other.moments_);
    below_ += other.below_;
}

double
StreamRisk::risk() const
{
    const std::size_t n = count();
    return n ? sum_.value() / static_cast<double>(n) : 0.0;
}

double
StreamRisk::exceedance() const
{
    const std::size_t n = count();
    return n ? static_cast<double>(below_) / static_cast<double>(n)
             : 0.0;
}

double
StreamRisk::ciHalfWidth() const
{
    const std::size_t n = count();
    if (n < 2)
        return 0.0;
    return kZ95 *
           std::sqrt(moments_.variance() / static_cast<double>(n));
}

StrideReservoir::StrideReservoir(std::size_t capacity,
                                 std::size_t planned_trials)
{
    if (capacity == 0 || planned_trials == 0)
        return;
    stride_ = std::max<std::size_t>(
        1, (planned_trials + capacity - 1) / capacity);
    values_.reserve(std::min(capacity, planned_trials));
}

void
StrideReservoir::add(std::size_t trial, double x)
{
    if (stride_ != 0 && trial % stride_ == 0)
        values_.push_back(x);
}

void
StrideReservoir::merge(const StrideReservoir &other)
{
    if (stride_ == 0)
        stride_ = other.stride_;
    values_.insert(values_.end(), other.values_.begin(),
                   other.values_.end());
}

void
StreamStats::merge(const StreamStats &other)
{
    moments.merge(other.moments);
    risk.merge(other.risk);
    reservoir.merge(other.reservoir);
}

} // namespace ar::stats
