/**
 * @file
 * Fixed-bin histograms over double samples.
 */

#ifndef AR_STATS_HISTOGRAM_HH
#define AR_STATS_HISTOGRAM_HH

#include <cstddef>
#include <span>
#include <vector>

namespace ar::stats
{

/** Equal-width histogram with explicit range. */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin; must exceed lo.
     * @param bins Number of bins; must be positive.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Build a histogram sized to the sample range with @p bins bins. */
    static Histogram fromData(std::span<const double> xs,
                              std::size_t bins);

    /** Accumulate one value; out-of-range values clamp to edge bins. */
    void add(double x);

    /** Accumulate a whole sample. */
    void addAll(std::span<const double> xs);

    /** @return count in bin @p i. */
    std::size_t count(std::size_t i) const { return counts_.at(i); }

    /** @return all bin counts. */
    const std::vector<std::size_t> &counts() const { return counts_; }

    /** @return number of bins. */
    std::size_t bins() const { return counts_.size(); }

    /** @return total number of accumulated values. */
    std::size_t total() const { return total_; }

    /** @return lower edge of bin @p i. */
    double binLo(std::size_t i) const;

    /** @return upper edge of bin @p i. */
    double binHi(std::size_t i) const;

    /** @return center of bin @p i. */
    double binCenter(std::size_t i) const;

    /** @return probability-density estimate for bin @p i. */
    double density(std::size_t i) const;

    /** @return fraction of mass in bin @p i. */
    double fraction(std::size_t i) const;

    /** @return histogram range lower bound. */
    double lo() const { return lo_; }

    /** @return histogram range upper bound. */
    double hi() const { return hi_; }

  private:
    double lo_;
    double hi_;
    double width;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace ar::stats

#endif // AR_STATS_HISTOGRAM_HH
