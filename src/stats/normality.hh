/**
 * @file
 * Normality diagnostics: Anderson-Darling test (composite hypothesis,
 * D'Agostino p-value approximation) and Filliben's probability-plot
 * correlation coefficient.  These back the Box-Cox "can this data be
 * transformed to normality?" decision in the extraction pipeline
 * (Figure 2 of the paper).
 */

#ifndef AR_STATS_NORMALITY_HH
#define AR_STATS_NORMALITY_HH

#include <span>

namespace ar::stats
{

/** Outcome of an Anderson-Darling normality test. */
struct AndersonDarlingResult
{
    double a2 = 0.0;      ///< Raw A^2 statistic.
    double a2_star = 0.0; ///< Small-sample adjusted statistic.
    double p_value = 0.0; ///< Approximate p-value (composite case).
};

/**
 * Anderson-Darling test for normality with estimated mean/stddev.
 *
 * @param xs Sample; needs at least 8 points for a meaningful p-value.
 */
AndersonDarlingResult andersonDarling(std::span<const double> xs);

/**
 * Filliben probability-plot correlation coefficient against normal
 * order-statistic medians.  Values near 1 indicate normality.
 */
double ppcc(std::span<const double> xs);

/**
 * Scalar "confidence that the data is normal" in [0, 1], the quantity
 * thresholded (> 0.95 in the paper) by the Box-Cox gate.  Defined as a
 * blend of the Anderson-Darling acceptance and the PPCC: a sample that
 * the AD test cannot reject at 5% and whose PPCC exceeds the n-dependent
 * critical value scores above 0.95.
 */
double normalityConfidence(std::span<const double> xs);

} // namespace ar::stats

#endif // AR_STATS_NORMALITY_HH
