/**
 * @file
 * Gaussian kernel density estimation (Figure 2, step 2): the fallback
 * when data cannot be transformed to normality.  Provides density,
 * CDF, and a sampling function for uncertainty propagation.
 */

#ifndef AR_STATS_KDE_HH
#define AR_STATS_KDE_HH

#include <span>
#include <vector>

#include "util/rng.hh"

namespace ar::stats
{

/** Gaussian-kernel density estimate over a fixed sample. */
class GaussianKde
{
  public:
    /**
     * @param xs Source sample; must hold at least two distinct values.
     * @param bandwidth Kernel bandwidth; <= 0 selects Silverman's rule.
     */
    explicit GaussianKde(std::span<const double> xs,
                         double bandwidth = 0.0);

    /** @return estimated density at x. */
    double pdf(double x) const;

    /** @return estimated CDF at x. */
    double cdf(double x) const;

    /** Draw one sample (random kernel + Gaussian jitter). */
    double sample(ar::util::Rng &rng) const;

    /** Draw @p count samples. */
    std::vector<double> sample(std::size_t count,
                               ar::util::Rng &rng) const;

    /** @return the bandwidth in use. */
    double bandwidth() const { return h; }

    /** @return the underlying data points. */
    const std::vector<double> &data() const { return points; }

    /** Silverman's rule-of-thumb bandwidth for a sample. */
    static double silvermanBandwidth(std::span<const double> xs);

  private:
    std::vector<double> points;
    double h = 1.0;
};

} // namespace ar::stats

#endif // AR_STATS_KDE_HH
