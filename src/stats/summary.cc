#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "math/numeric.hh"
#include "util/logging.hh"

namespace ar::stats
{

Summary
summarize(std::span<const double> xs)
{
    if (xs.empty())
        ar::util::fatal("summarize: empty sample");
    Summary s;
    s.n = xs.size();
    s.mean = ar::math::mean(xs);
    s.min = *std::min_element(xs.begin(), xs.end());
    s.max = *std::max_element(xs.begin(), xs.end());

    ar::math::KahanSum m2, m3, m4;
    for (double x : xs) {
        const double d = x - s.mean;
        m2.add(d * d);
        m3.add(d * d * d);
        m4.add(d * d * d * d);
    }
    const double n = static_cast<double>(s.n);
    if (s.n > 1) {
        s.variance = m2.value() / (n - 1.0);
        s.stddev = std::sqrt(s.variance);
    }
    const double pop_var = m2.value() / n;
    if (pop_var > 0.0 && s.n > 2) {
        const double g1 = (m3.value() / n) / std::pow(pop_var, 1.5);
        s.skewness = std::sqrt(n * (n - 1.0)) / (n - 2.0) * g1;
    }
    if (pop_var > 0.0 && s.n > 3) {
        const double g2 = (m4.value() / n) / (pop_var * pop_var) - 3.0;
        s.kurtosis = ((n + 1.0) * g2 + 6.0) * (n - 1.0) /
                     ((n - 2.0) * (n - 3.0));
    }
    return s;
}

void
RunningStats::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
}

double
RunningStats::variance() const
{
    if (n < 2)
        ar::util::fatal("RunningStats::variance: need >= 2 samples");
    return m2 / static_cast<double>(n - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    if (n == 0)
        ar::util::fatal("RunningStats::min: empty");
    return lo;
}

double
RunningStats::max() const
{
    if (n == 0)
        ar::util::fatal("RunningStats::max: empty");
    return hi;
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.m - m;
    const double total = na + nb;
    m += delta * nb / total;
    m2 += other.m2 + delta * delta * na * nb / total;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    n += other.n;
}

} // namespace ar::stats
