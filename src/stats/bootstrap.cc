#include "stats/bootstrap.hh"

#include "util/logging.hh"

namespace ar::stats
{

std::vector<double>
resample(std::span<const double> xs, std::size_t count,
         ar::util::Rng &rng)
{
    if (xs.empty())
        ar::util::fatal("resample: empty source sample");
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(xs[rng.uniformInt(xs.size())]);
    return out;
}

std::vector<double>
gaussianBootstrap(const GaussianFit &fit, std::size_t count,
                  ar::util::Rng &rng, double stddev_scale)
{
    if (stddev_scale < 0.0)
        ar::util::fatal("gaussianBootstrap: negative stddev scale");
    std::vector<double> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(rng.gaussian(fit.mean, fit.stddev * stddev_scale));
    return out;
}

} // namespace ar::stats
