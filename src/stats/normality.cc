#include "stats/normality.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "math/numeric.hh"
#include "math/special.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace ar::stats
{

namespace
{

/** Filliben's normal order-statistic medians for a sample of size n. */
std::vector<double>
orderStatisticMedians(std::size_t n)
{
    std::vector<double> m(n);
    const double nn = static_cast<double>(n);
    for (std::size_t i = 1; i <= n; ++i) {
        double u;
        if (i == 1)
            u = 1.0 - std::pow(0.5, 1.0 / nn);
        else if (i == n)
            u = std::pow(0.5, 1.0 / nn);
        else
            u = (static_cast<double>(i) - 0.3175) / (nn + 0.365);
        m[i - 1] = ar::math::normalQuantile(u);
    }
    return m;
}

/** Pearson correlation between two equal-length vectors. */
double
correlation(std::span<const double> a, std::span<const double> b)
{
    const double ma = ar::math::mean(a);
    const double mb = ar::math::mean(b);
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa <= 0.0 || sbb <= 0.0)
        return 0.0;
    return sab / std::sqrt(saa * sbb);
}

/**
 * Null-distribution quantile of the normal PPCC statistic for sample
 * size n, estimated once per (n, q) by Monte-Carlo with a fixed seed
 * and cached.  Self-contained replacement for Filliben's tables.
 */
double
ppccNullQuantile(std::size_t n, double q)
{
    static std::map<std::pair<std::size_t, int>, double> cache;
    const int qkey = static_cast<int>(q * 1000.0 + 0.5);
    const auto key = std::make_pair(n, qkey);
    if (auto it = cache.find(key); it != cache.end())
        return it->second;

    const int reps = 400;
    ar::util::Rng rng(0xf1111b37u + n);
    const auto medians = orderStatisticMedians(n);
    std::vector<double> rs(reps);
    std::vector<double> sample(n);
    for (int r = 0; r < reps; ++r) {
        for (auto &x : sample)
            x = rng.gaussian();
        std::sort(sample.begin(), sample.end());
        rs[r] = correlation(sample, medians);
    }
    std::sort(rs.begin(), rs.end());
    const double pos = q * (reps - 1);
    const std::size_t idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    const double val = (idx + 1 < rs.size())
        ? rs[idx] * (1.0 - frac) + rs[idx + 1] * frac
        : rs.back();
    cache[key] = val;
    return val;
}

} // namespace

AndersonDarlingResult
andersonDarling(std::span<const double> xs)
{
    AndersonDarlingResult res;
    const std::size_t n = xs.size();
    if (n < 3)
        ar::util::fatal("andersonDarling: need >= 3 samples, got ", n);

    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const double m = ar::math::mean(sorted);
    const double s = ar::math::stddev(sorted);
    if (s <= 0.0) {
        // Degenerate sample: definitely not continuous-normal.
        res.a2 = res.a2_star = 1e9;
        res.p_value = 0.0;
        return res;
    }

    const double nn = static_cast<double>(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double zi = (sorted[i] - m) / s;
        const double zr = (sorted[n - 1 - i] - m) / s;
        double cdf_i = ar::math::normalCdf(zi);
        double cdf_r = ar::math::normalCdf(zr);
        cdf_i = ar::math::clamp(cdf_i, 1e-300, 1.0 - 1e-16);
        cdf_r = ar::math::clamp(cdf_r, 1e-300, 1.0 - 1e-16);
        acc += (2.0 * static_cast<double>(i) + 1.0) *
               (std::log(cdf_i) + std::log1p(-cdf_r));
    }
    res.a2 = -nn - acc / nn;
    res.a2_star = res.a2 * (1.0 + 0.75 / nn + 2.25 / (nn * nn));

    // D'Agostino & Stephens (1986), case with both parameters estimated.
    const double a = res.a2_star;
    double p;
    if (a >= 0.6)
        p = std::exp(1.2937 - 5.709 * a + 0.0186 * a * a);
    else if (a > 0.34)
        p = std::exp(0.9177 - 4.279 * a - 1.38 * a * a);
    else if (a > 0.2)
        p = 1.0 - std::exp(-8.318 + 42.796 * a - 59.938 * a * a);
    else
        p = 1.0 - std::exp(-13.436 + 101.14 * a - 223.73 * a * a);
    res.p_value = ar::math::clamp(p, 0.0, 1.0);
    return res;
}

double
ppcc(std::span<const double> xs)
{
    if (xs.size() < 3)
        ar::util::fatal("ppcc: need >= 3 samples, got ", xs.size());
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    const auto medians = orderStatisticMedians(sorted.size());
    return correlation(sorted, medians);
}

double
normalityConfidence(std::span<const double> xs)
{
    if (xs.size() < 8)
        return 0.0;

    const auto ad = andersonDarling(xs);
    // Full marks for any p-value at which the 5% AD test cannot reject;
    // linear ramp below that.
    const double ad_score = std::min(1.0, ad.p_value / 0.05);

    const double r = ppcc(xs);
    const double r05 = ppccNullQuantile(xs.size(), 0.05);
    const double r50 = ppccNullQuantile(xs.size(), 0.50);
    double ppcc_score;
    if (r >= r05) {
        ppcc_score = 1.0;
    } else {
        // Ramp down over the same width as the r05..r50 spread.
        const double width = std::max(1e-6, r50 - r05);
        ppcc_score = std::max(0.0, 1.0 - (r05 - r) / width);
    }
    return 0.5 * ad_score + 0.5 * ppcc_score;
}

} // namespace ar::stats
