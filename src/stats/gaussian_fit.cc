#include "stats/gaussian_fit.hh"

#include <cmath>

#include "math/numeric.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

namespace ar::stats
{

GaussianFit
fitGaussian(std::span<const double> xs)
{
    const std::size_t n = xs.size();
    if (n < 2) {
        ar::util::raiseDiagnostic("fitGaussian: need >= 2 samples, "
                                  "got " + std::to_string(n));
    }

    GaussianFit fit;
    fit.mean = ar::math::mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - fit.mean) * (x - fit.mean);
    const double nn = static_cast<double>(n);
    const double var = ss / nn;
    if (var <= 0.0) {
        ar::util::raiseDiagnostic("fitGaussian: degenerate sample "
                                  "(zero variance)");
    }
    fit.stddev = std::sqrt(var);
    fit.log_likelihood =
        -0.5 * nn * (std::log(2.0 * M_PI * var) + 1.0);
    return fit;
}

} // namespace ar::stats
