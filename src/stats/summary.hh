/**
 * @file
 * Descriptive statistics: batch summaries and Welford-style running
 * accumulation.
 */

#ifndef AR_STATS_SUMMARY_HH
#define AR_STATS_SUMMARY_HH

#include <cstddef>
#include <span>

namespace ar::stats
{

/** Moments and extrema of a sample. */
struct Summary
{
    std::size_t n = 0;
    double mean = 0.0;
    double stddev = 0.0;   ///< Sample stddev (n - 1 denominator).
    double variance = 0.0;
    double min = 0.0;
    double max = 0.0;
    double skewness = 0.0; ///< Adjusted Fisher-Pearson coefficient.
    double kurtosis = 0.0; ///< Excess kurtosis.
};

/**
 * Compute a full Summary over a sample.
 *
 * @param xs Sample; must be non-empty.
 */
Summary summarize(std::span<const double> xs);

/**
 * Online mean/variance accumulator (Welford).  Numerically stable and
 * usable when samples arrive one at a time (e.g. Monte-Carlo loops).
 */
class RunningStats
{
  public:
    /** Fold in one observation. */
    void add(double x);

    /** @return number of observations so far. */
    std::size_t count() const { return n; }

    /** @return running mean (0 when empty). */
    double mean() const { return n ? m : 0.0; }

    /** @return sample variance; fatal with fewer than two samples. */
    double variance() const;

    /** @return sample standard deviation. */
    double stddev() const;

    /** @return smallest observation; fatal when empty. */
    double min() const;

    /** @return largest observation; fatal when empty. */
    double max() const;

    /** Merge another accumulator (parallel reduction). */
    void merge(const RunningStats &other);

  private:
    std::size_t n = 0;
    double m = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace ar::stats

#endif // AR_STATS_SUMMARY_HH
