/**
 * @file
 * Deterministic streaming accumulators for block-pipelined
 * Monte-Carlo reduction (the risk-as-fold formulation).
 *
 * Every class here is a small value type with two operations:
 *
 *  - add(x): fold one observation in (Welford for moments, a
 *    Kahan-Neumaier compensated sum for risk costs);
 *  - merge(other): combine a *later* partial into this one.
 *
 * The determinism contract is positional, not algebraic: callers
 * partition the trial index space into fixed-size blocks, accumulate
 * one partial per block, and merge the partials in ascending block
 * order.  Because every partial is a pure function of its block's
 * trials and the merge order is fixed, the result is bit-identical
 * for any thread count -- and bit-identical between a streaming run
 * and a materializing run that folds the same retained samples
 * through the same block partition (see mc::StreamEngine).
 */

#ifndef AR_STATS_STREAM_HH
#define AR_STATS_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/numeric.hh"

namespace ar::stats
{

/**
 * Streaming mean / variance / extrema (Welford update, Chan merge).
 * All accessors are total: an empty or single-observation
 * accumulator reports 0 variance rather than failing, so engines can
 * surface stats for runs whose effective sample collapsed (e.g. a
 * Discard policy that dropped every trial).
 */
class StreamMoments
{
  public:
    /** Fold in one observation. */
    void add(double x);

    /** Merge a later partial (ascending block order). */
    void merge(const StreamMoments &other);

    /** @return observations folded so far. */
    std::size_t count() const { return n_; }

    /** @return running mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** @return sample variance, n-1 denominator (0 when n < 2). */
    double variance() const;

    /** @return sample standard deviation (0 when n < 2). */
    double stddev() const;

    /** @return smallest observation (0 when empty). */
    double min() const { return n_ ? lo_ : 0.0; }

    /** @return largest observation (0 when empty). */
    double max() const { return n_ ? hi_ : 0.0; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double lo_ = 0.0;
    double hi_ = 0.0;
};

/**
 * Streaming risk-vs-reference accumulator: a Kahan-Neumaier
 * compensated sum of per-sample risk costs (the archRisk fold),
 * an exceedance counter for P(sample < reference), and cost moments
 * for the confidence interval that drives early stopping.
 */
class StreamRisk
{
  public:
    /**
     * Fold in one sample's cost.
     *
     * @param cost Risk-function cost of the sample vs the reference.
     * @param below True when the sample fell below the reference.
     */
    void add(double cost, bool below);

    /** Merge a later partial (ascending block order). */
    void merge(const StreamRisk &other);

    /** @return samples folded so far. */
    std::size_t count() const { return moments_.count(); }

    /** @return samples observed below the reference. */
    std::size_t below() const { return below_; }

    /** @return mean cost = the architectural risk (0 when empty). */
    double risk() const;

    /** @return P(sample < reference) estimate (0 when empty). */
    double exceedance() const;

    /**
     * Half-width of the 95% normal-approximation confidence interval
     * on the risk estimate: z * sqrt(var(cost) / n).  0 when fewer
     * than two samples (no variance estimate yet).
     */
    double ciHalfWidth() const;

  private:
    ar::math::KahanSum sum_;
    StreamMoments moments_;
    std::size_t below_ = 0;
};

/**
 * Bounded deterministic reservoir for distribution reconstruction
 * under streaming: keeps every stride-th trial (stride fixed up
 * front from the planned trial count), so membership is a pure
 * function of the trial index -- independent of thread count, block
 * size, and of whether the run stopped early (an early stop simply
 * truncates the tail).  Partials merge by concatenation in block
 * order, preserving trial order.
 */
class StrideReservoir
{
  public:
    StrideReservoir() = default;

    /**
     * @param capacity Most samples to keep (0 disables).
     * @param planned_trials Trial count the stride is sized for.
     */
    StrideReservoir(std::size_t capacity, std::size_t planned_trials);

    /** Offer trial @p trial's sample; kept iff trial % stride == 0. */
    void add(std::size_t trial, double x);

    /** Merge a later partial (ascending block order). */
    void merge(const StrideReservoir &other);

    /** @return true when this reservoir keeps samples. */
    bool enabled() const { return stride_ != 0; }

    /** @return the sampling stride (0 when disabled). */
    std::size_t stride() const { return stride_; }

    /** @return retained samples in trial order. */
    const std::vector<double> &values() const { return values_; }

  private:
    std::size_t stride_ = 0;
    std::vector<double> values_;
};

/** Per-output bundle the streaming engine accumulates. */
struct StreamStats
{
    StreamMoments moments;
    StreamRisk risk;
    StrideReservoir reservoir;

    /** Merge a later partial, member-wise (ascending block order). */
    void merge(const StreamStats &other);
};

} // namespace ar::stats

#endif // AR_STATS_STREAM_HH
