#include "stats/boxcox.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/numeric.hh"
#include "math/optimize.hh"
#include "stats/normality.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

namespace ar::stats
{

double
BoxCoxTransform::apply(double x) const
{
    const double v = x + shift;
    if (v <= 0.0) {
        ar::util::raiseDiagnostic(
            "BoxCoxTransform::apply: value " + std::to_string(x) +
            " not positive after shift " + std::to_string(shift));
    }
    if (std::fabs(lambda) < 1e-12)
        return std::log(v);
    return (std::pow(v, lambda) - 1.0) / lambda;
}

double
BoxCoxTransform::invert(double y) const
{
    double v;
    if (std::fabs(lambda) < 1e-12) {
        v = std::exp(y);
    } else {
        const double base = lambda * y + 1.0;
        if (base <= 0.0) {
            // Out of the transform's image: clamp to the domain edge.
            v = 0.0;
        } else {
            v = std::pow(base, 1.0 / lambda);
        }
    }
    return v - shift;
}

std::vector<double>
BoxCoxTransform::apply(std::span<const double> xs) const
{
    std::vector<double> out;
    out.reserve(xs.size());
    for (double x : xs)
        out.push_back(apply(x));
    return out;
}

std::vector<double>
BoxCoxTransform::invert(std::span<const double> ys) const
{
    std::vector<double> out;
    out.reserve(ys.size());
    for (double y : ys)
        out.push_back(invert(y));
    return out;
}

double
boxCoxLogLikelihood(std::span<const double> xs, double lambda,
                    double shift)
{
    const std::size_t n = xs.size();
    if (n < 2) {
        ar::util::raiseDiagnostic("boxCoxLogLikelihood: need >= 2 "
                                  "samples, got " + std::to_string(n));
    }
    BoxCoxTransform t{lambda, shift};
    std::vector<double> ys = t.apply(xs);

    const double mean_y = ar::math::mean(ys);
    double ss = 0.0;
    for (double y : ys)
        ss += (y - mean_y) * (y - mean_y);
    const double var = ss / static_cast<double>(n);
    if (var <= 0.0)
        return -std::numeric_limits<double>::infinity();

    double log_jacobian = 0.0;
    for (double x : xs)
        log_jacobian += std::log(x + shift);

    const double nn = static_cast<double>(n);
    return -0.5 * nn * std::log(var) + (lambda - 1.0) * log_jacobian;
}

BoxCoxFit
fitBoxCox(std::span<const double> xs, double confidence_threshold,
          double lambda_lo, double lambda_hi)
{
    if (xs.size() < 8) {
        ar::util::raiseDiagnostic("fitBoxCox: need >= 8 samples, got " +
                                  std::to_string(xs.size()));
    }

    BoxCoxFit fit;

    // Choose a shift making all data strictly positive.
    const double min_x = *std::min_element(xs.begin(), xs.end());
    const double max_x = *std::max_element(xs.begin(), xs.end());
    double shift = 0.0;
    if (min_x <= 0.0) {
        const double span = std::max(max_x - min_x, 1e-9);
        shift = -min_x + 0.01 * span;
    }
    fit.transform.shift = shift;

    const auto neg_ll = [&](double lambda) {
        return -boxCoxLogLikelihood(xs, lambda, shift);
    };
    const auto opt = ar::math::gridThenGoldenMin(neg_ll, lambda_lo,
                                                 lambda_hi, 81, 1e-6);
    fit.transform.lambda = opt.x;
    fit.log_likelihood = -opt.value;

    const auto transformed = fit.transform.apply(xs);
    fit.confidence = normalityConfidence(transformed);
    fit.passed = fit.confidence >= confidence_threshold;
    return fit;
}

} // namespace ar::stats
