/**
 * @file
 * Bootstrap resampling (Figure 2, step 5): non-parametric resampling
 * with replacement and parametric resampling from a fitted Gaussian,
 * optionally rescaled to a hand-tuned uncertainty level.
 */

#ifndef AR_STATS_BOOTSTRAP_HH
#define AR_STATS_BOOTSTRAP_HH

#include <span>
#include <vector>

#include "stats/gaussian_fit.hh"
#include "util/rng.hh"

namespace ar::stats
{

/**
 * Non-parametric bootstrap: draw @p count samples with replacement.
 *
 * @param xs Source sample; must be non-empty.
 * @param count Number of draws.
 * @param rng Random stream.
 */
std::vector<double> resample(std::span<const double> xs,
                             std::size_t count, ar::util::Rng &rng);

/**
 * Parametric bootstrap from a fitted Gaussian.
 *
 * @param fit Gaussian parameters (typically fit in Box-Cox space).
 * @param count Number of draws.
 * @param rng Random stream.
 * @param stddev_scale Multiplier on the fitted stddev; the paper uses
 *        this knob to "hand tune the desired uncertainty level".
 */
std::vector<double> gaussianBootstrap(const GaussianFit &fit,
                                      std::size_t count,
                                      ar::util::Rng &rng,
                                      double stddev_scale = 1.0);

} // namespace ar::stats

#endif // AR_STATS_BOOTSTRAP_HH
