/**
 * @file
 * Box-Cox power transform: profile-likelihood lambda estimation, the
 * forward/inverse transforms, and the "can this data be transformed to
 * normality?" gate used by the paper's uncertainty-extraction pipeline
 * (Figure 2, steps 1 and 3).
 */

#ifndef AR_STATS_BOXCOX_HH
#define AR_STATS_BOXCOX_HH

#include <span>
#include <vector>

namespace ar::stats
{

/** Fitted Box-Cox transform parameters. */
struct BoxCoxTransform
{
    double lambda = 1.0; ///< Power parameter.
    double shift = 0.0;  ///< Additive shift making data positive.

    /** Forward transform of one value (value + shift must be > 0). */
    double apply(double x) const;

    /**
     * Inverse transform of one value.  Transformed values that map
     * outside the original domain (lambda * y + 1 <= 0) clamp to the
     * domain edge, matching the truncated-Gaussian back-transform in
     * the paper's bootstrapping step.
     */
    double invert(double y) const;

    /** Forward transform of a sample. */
    std::vector<double> apply(std::span<const double> xs) const;

    /** Inverse transform of a sample. */
    std::vector<double> invert(std::span<const double> ys) const;
};

/** Result of fitting a Box-Cox transform to data. */
struct BoxCoxFit
{
    BoxCoxTransform transform;
    double log_likelihood = 0.0; ///< Profile log-likelihood at lambda.
    double confidence = 0.0;     ///< Normality confidence post-transform.
    bool passed = false;         ///< confidence >= threshold?
};

/**
 * Fit lambda by profile likelihood and evaluate the normality gate.
 *
 * @param xs Sample (any sign; a shift is chosen automatically).
 * @param confidence_threshold Gate level; the paper uses 0.95.
 * @param lambda_lo Lower bound of the lambda search window.
 * @param lambda_hi Upper bound of the lambda search window.
 */
BoxCoxFit fitBoxCox(std::span<const double> xs,
                    double confidence_threshold = 0.95,
                    double lambda_lo = -5.0, double lambda_hi = 5.0);

/**
 * Profile log-likelihood of lambda for a (shifted-positive) sample.
 * Exposed for tests and diagnostics.
 */
double boxCoxLogLikelihood(std::span<const double> xs, double lambda,
                           double shift = 0.0);

} // namespace ar::stats

#endif // AR_STATS_BOXCOX_HH
