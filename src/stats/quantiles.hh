/**
 * @file
 * Quantile estimation and the empirical CDF.
 */

#ifndef AR_STATS_QUANTILES_HH
#define AR_STATS_QUANTILES_HH

#include <span>
#include <vector>

namespace ar::stats
{

/**
 * Linear-interpolation quantile (R type-7) of an unsorted sample.
 *
 * @param xs Sample; must be non-empty.
 * @param q Quantile in [0, 1].
 */
double quantile(std::span<const double> xs, double q);

/** Quantile of a sample already sorted ascending (no copy). */
double quantileSorted(std::span<const double> sorted, double q);

/** Median shortcut. */
double median(std::span<const double> xs);

/**
 * Empirical cumulative distribution function over a fixed sample.
 * Construction sorts a copy once; evaluation is O(log n).
 */
class Ecdf
{
  public:
    /** @param xs Sample; must be non-empty. */
    explicit Ecdf(std::span<const double> xs);

    /** @return fraction of the sample <= x. */
    double operator()(double x) const;

    /** @return the q-quantile of the stored sample. */
    double quantile(double q) const;

    /** @return the sorted sample. */
    const std::vector<double> &sorted() const { return data; }

  private:
    std::vector<double> data;
};

/**
 * Two-sample Kolmogorov-Smirnov statistic (max CDF distance).  Used in
 * tests and extraction-quality metrics to compare distributions.
 */
double ksStatistic(std::span<const double> a, std::span<const double> b);

} // namespace ar::stats

#endif // AR_STATS_QUANTILES_HH
