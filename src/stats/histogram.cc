#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ar::stats
{

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    if (bins == 0)
        ar::util::fatal("Histogram: need at least one bin");
    if (!(hi > lo))
        ar::util::fatal("Histogram: invalid range [", lo, ", ", hi, "]");
}

Histogram
Histogram::fromData(std::span<const double> xs, std::size_t bins)
{
    if (xs.empty())
        ar::util::fatal("Histogram::fromData: empty sample");
    double lo = *std::min_element(xs.begin(), xs.end());
    double hi = *std::max_element(xs.begin(), xs.end());
    if (lo == hi) {
        // Degenerate sample: give it a tiny symmetric range.
        const double pad = std::max(1e-12, std::fabs(lo) * 1e-9);
        lo -= pad;
        hi += pad;
    }
    Histogram h(lo, hi, bins);
    h.addAll(xs);
    return h;
}

void
Histogram::add(double x)
{
    std::size_t idx;
    if (x <= lo_) {
        idx = 0;
    } else if (x >= hi_) {
        idx = counts_.size() - 1;
    } else {
        idx = static_cast<std::size_t>((x - lo_) / width);
        idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
    ++total_;
}

void
Histogram::addAll(std::span<const double> xs)
{
    for (double x : xs)
        add(x);
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + width * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return (i + 1 == counts_.size()) ? hi_ : binLo(i + 1);
}

double
Histogram::binCenter(std::size_t i) const
{
    return 0.5 * (binLo(i) + binHi(i));
}

double
Histogram::density(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return fraction(i) / width;
}

double
Histogram::fraction(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
           static_cast<double>(total_);
}

} // namespace ar::stats
