/**
 * @file
 * Block-pipelined Monte-Carlo executor with deterministic online
 * reduction (sample -> SIMD tape eval -> accumulate).
 *
 * Every consumer of trial sweeps in this repo used to materialize the
 * full trials x (dims + outputs) matrix before computing anything.
 * StreamEngine replaces those private loops with one executor that
 * processes fixed-size trial blocks: a block's input columns are
 * sampled, every output is evaluated over the block in one batched
 * tape pass, faults are detected and attributed, and the block's
 * contribution is folded into streaming accumulators
 * (ar::stats::StreamStats).  Peak memory is O(block), not O(trials),
 * unless the caller opts into sample retention.
 *
 * Determinism argument (fixed-order substream merge): the trial index
 * space is partitioned into blocks of a fixed size; each block's
 * partial accumulator is a pure function of that block's trials; and
 * partials are merged into the run accumulator in ascending block
 * index order behind a reorder buffer, regardless of which worker
 * finished first.  Results are therefore bit-identical for any thread
 * count, and bit-identical between a streaming run and a
 * keep_samples run of the same spec (both feed the same per-block
 * values through the same accumulators in the same order).
 *
 * Confidence-interval early stopping: with ci_target > 0 the merge
 * frontier evaluates the risk estimate's 95% CI half-width after each
 * in-order merge; the run stops at the first block prefix satisfying
 * the target.  Because the decision reads only the in-order prefix,
 * the stopping block -- and every reported statistic -- is
 * bit-identical for any thread count; blocks that raced past the stop
 * point are discarded, never merged.
 */

#ifndef AR_MC_STREAM_ENGINE_HH
#define AR_MC_STREAM_ENGINE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "stats/stream.hh"
#include "util/cancel.hh"
#include "util/fault.hh"

namespace ar::mc
{

/** Streaming knobs shared by every engine consumer. */
struct StreamConfig
{
    /**
     * Retain the full per-output sample vectors (the classic
     * materializing behaviour, needed by KDE/plot/quantile
     * consumers).  False streams: samples are folded into
     * accumulators block by block and dropped.
     */
    bool keep_samples = true;

    /** Trials per pipeline block; 0 means the engine default (256). */
    std::size_t block = 0;

    /**
     * Early-stopping target: stop once the risk estimate's 95% CI
     * half-width is <= this value (0 disables).  Evaluated on the
     * in-order block prefix only, so the stop point is deterministic.
     */
    double ci_target = 0.0;

    /** Emit a progress frame every N merged blocks (0 disables). */
    std::size_t frame_every = 0;

    /**
     * Per-output stride-reservoir capacity for distribution
     * reconstruction without retention (0 disables).
     */
    std::size_t reservoir = 0;
};

/** Progress snapshot handed to on_frame at block boundaries. */
struct StreamFrame
{
    std::size_t blocks_done = 0;   ///< Blocks merged so far.
    std::size_t trials_done = 0;   ///< Trials merged so far.
    std::size_t faulty_trials = 0; ///< Faulty trials so far.

    /** Cumulative per-output accumulators (borrowed; do not keep). */
    const std::vector<ar::stats::StreamStats> *stats = nullptr;
};

/** The block-pipelined executor. */
class StreamEngine
{
  public:
    /** Which outputs a faulty value excludes from accumulation. */
    enum class FaultSkip : std::uint8_t
    {
        /** A fault in any output drops the trial from every output
         * (aligned consumers: propagation, Sobol pick-freeze). */
        PerTrial,

        /** A fault only drops the (trial, output) cell (independent
         * consumers: one design-space design per output). */
        PerOutput,
    };

    /** Which outputs get a risk accumulator (needs a cost hook). */
    enum class RiskScope : std::uint8_t
    {
        None,  ///< No risk accumulation.
        First, ///< Output 0 only (the risk-analyzed responsive).
        All,   ///< Every output (design sweeps).
    };

    /** One run's shape and policies. */
    struct Spec
    {
        std::size_t trials = 0;
        std::size_t dims = 0;    ///< Sampled input columns (may be 0).
        std::size_t outputs = 0;
        std::size_t threads = 0; ///< 0 = hardware concurrency.
        ar::util::FaultPolicy policy = ar::util::FaultPolicy::FailFast;
        ar::util::CancelToken cancel{};
        StreamConfig stream{};
        FaultSkip fault_skip = FaultSkip::PerTrial;
        RiskScope risk_scope = RiskScope::None;

        /** Reference the exceedance counter compares against (NaN
         * disables the counter; risk costs still accumulate). */
        double risk_reference =
            std::numeric_limits<double>::quiet_NaN();

        /** Run the streaming accumulators.  Consumers that only want
         * the pipelined executor + retention (design sweeps keeping
         * their own estimator pass) turn this off. */
        bool accumulate = true;

        /** Apply the fault policy to report and retained samples.
         * Consumers with bespoke policy semantics turn this off and
         * receive the raw report + retained samples. */
        bool apply_policy = true;

        /** Caller-side bytes (e.g. a materialized design) folded into
         * the peak-memory estimate reported via mc.peak_bytes. */
        std::size_t extra_bytes = 0;
    };

    /** Consumer callbacks; all must be pure functions of the block
     * contents so the determinism contract holds. */
    struct Hooks
    {
        /** Fill cols[k][0..len) with the physical draws of input
         * dimension k for trials [t0, t0+len).  Optional when
         * dims == 0 (consumer reads its own pools in eval). */
        std::function<void(std::size_t t0, std::size_t len,
                           std::vector<std::vector<double>> &cols)>
            sample;

        /** Evaluate every output over the block: outs[o][0..len).
         * Required. */
        std::function<void(
            std::size_t t0, std::size_t len,
            const std::vector<std::vector<double>> &cols,
            const std::vector<double *> &outs)>
            eval;

        /** Attribute one faulting (output, trial) cell: fill kind and
         * op (e.g. by replaying the scalar tape).  @p trial is the
         * global trial index, @p local its offset into cols.
         * Optional; the default classifies the non-finite value
         * only. */
        std::function<void(std::size_t output, std::size_t trial,
                           const std::vector<std::vector<double>> &cols,
                           std::size_t local, double value,
                           ar::util::FaultKind &kind, std::string &op)>
            diagnose;

        /** Risk cost of one sample (required when risk_scope is not
         * None). */
        std::function<double(std::size_t output, double x)> cost;

        /** Progress frames, invoked in ascending block order on the
         * merge frontier (under the merge lock; keep it fast or
         * accept back-pressure on the pipeline). */
        std::function<void(const StreamFrame &)> on_frame;

        /**
         * Optional custom cross-output fold for estimators that need
         * several outputs of the same trial at once (Sobol's Jansen
         * sums).  Called once per block with the output buffers and
         * the per-trial skip mask (1 = excluded); the returned
         * partial is merged via fold_merge in ascending block order.
         */
        std::function<std::shared_ptr<void>(
            std::size_t t0, std::size_t len,
            const std::vector<double *> &outs,
            const std::vector<unsigned char> &skip)>
            fold;

        /** Merge a later fold partial into the master (block order). */
        std::function<void(const std::shared_ptr<void> &master,
                           const std::shared_ptr<void> &partial)>
            fold_merge;
    };

    /** What a run produces. */
    struct Result
    {
        /** Per-output accumulators (when Spec::accumulate). */
        std::vector<ar::stats::StreamStats> stats;

        /** Deterministic fault report (see util/fault.hh). */
        ar::util::FaultReport faults;

        /** Retained per-output samples (keep_samples only; policy
         * applied when Spec::apply_policy). */
        std::vector<std::vector<double>> samples;

        /** Merged custom fold partial (when Hooks::fold). */
        std::shared_ptr<void> fold;

        std::size_t blocks = 0;     ///< Blocks merged.
        std::size_t trials_run = 0; ///< Trials merged (early stop
                                    ///< truncates).
        std::size_t peak_bytes = 0; ///< Estimated peak working set.
        bool early_stopped = false;
    };

    /** Default trials per pipeline block. */
    static constexpr std::size_t kDefaultBlock = 256;

    /** Fewest merged trials before early stopping may trigger. */
    static constexpr std::size_t kMinCiTrials = 64;

    /**
     * Execute one run.
     *
     * @throws ar::util::FaultError under FailFast with faults (after
     *         the full deterministic report is assembled), or under
     *         Saturate when an output has no finite sample.
     * @throws ar::util::CancelledError when the cancel token trips.
     */
    static Result run(const Spec &spec, const Hooks &hooks);
};

} // namespace ar::mc

#endif // AR_MC_STREAM_ENGINE_HH
