#include "mc/copula.hh"

#include <algorithm>
#include <cmath>

#include "math/numeric.hh"
#include "math/special.hh"
#include "util/logging.hh"

namespace ar::mc
{

GaussianCopula::GaussianCopula(std::vector<std::string> names,
                               const std::vector<Correlation> &pairs)
    : names_(std::move(names)),
      chol(ar::math::Matrix::identity(names_.size()))
{
    if (names_.size() < 2)
        ar::util::fatal("GaussianCopula: need at least two "
                        "dimensions");

    ar::math::Matrix corr =
        ar::math::Matrix::identity(names_.size());
    auto index_of = [&](const std::string &n) {
        const auto it = std::find(names_.begin(), names_.end(), n);
        if (it == names_.end())
            ar::util::fatal("GaussianCopula: unknown dimension '", n,
                            "'");
        return static_cast<std::size_t>(it - names_.begin());
    };
    for (const auto &p : pairs) {
        if (p.rho <= -1.0 || p.rho >= 1.0)
            ar::util::fatal("GaussianCopula: correlation must lie in "
                            "(-1, 1), got ", p.rho);
        const std::size_t i = index_of(p.a);
        const std::size_t j = index_of(p.b);
        if (i == j)
            ar::util::fatal("GaussianCopula: self-correlation for '",
                            p.a, "'");
        corr.at(i, j) = p.rho;
        corr.at(j, i) = p.rho;
    }
    chol = ar::math::cholesky(corr);
}

void
GaussianCopula::apply(UniformDesign &design,
                      const std::vector<std::size_t> &dims) const
{
    const std::size_t k = names_.size();
    if (dims.size() != k)
        ar::util::fatal("GaussianCopula::apply: expected ", k,
                        " column indices, got ", dims.size());
    const std::size_t n = design.trials();
    if (n < 2)
        return; // a single trial has no rank structure to impose

    // Iman-Conover: build target scores with the requested
    // correlation, then PERMUTE each column's existing values into
    // the target rank order.  The marginal multisets -- and hence
    // LHS stratification -- are preserved exactly.

    // Normal scores of each column.
    std::vector<std::vector<double>> z(k, std::vector<double>(n));
    for (std::size_t d = 0; d < k; ++d) {
        for (std::size_t t = 0; t < n; ++t) {
            const double u = ar::math::clamp(
                design.at(t, dims[d]), 1e-12, 1.0 - 1e-12);
            z[d][t] = ar::math::normalQuantile(u);
        }
    }

    // Cancel the scores' own empirical correlation E = QQ^T so the
    // target C = LL^T lands exactly: T = L Q^{-1} Z has empirical
    // correlation L Q^{-1} E Q^{-T} L^T = C.  With too few trials E
    // is rank deficient; fall back to the raw scores (Q = I).
    ar::math::Matrix q = ar::math::Matrix::identity(k);
    if (n > k) {
        std::vector<double> mu(k, 0.0), sd(k, 0.0);
        for (std::size_t d = 0; d < k; ++d) {
            for (std::size_t t = 0; t < n; ++t)
                mu[d] += z[d][t];
            mu[d] /= static_cast<double>(n);
            for (std::size_t t = 0; t < n; ++t) {
                const double c = z[d][t] - mu[d];
                sd[d] += c * c;
            }
            sd[d] = std::sqrt(sd[d]);
        }
        ar::math::Matrix emp = ar::math::Matrix::identity(k);
        for (std::size_t a = 0; a < k; ++a) {
            for (std::size_t b = a + 1; b < k; ++b) {
                double acc = 0.0;
                for (std::size_t t = 0; t < n; ++t)
                    acc += (z[a][t] - mu[a]) * (z[b][t] - mu[b]);
                const double denom = sd[a] * sd[b];
                const double r = denom > 0.0 ? acc / denom : 0.0;
                emp.at(a, b) = r;
                emp.at(b, a) = r;
            }
        }
        q = ar::math::cholesky(emp);
    }

    // Per trial: y = Q^{-1} z (forward substitution, Q lower
    // triangular), then t = L y.
    std::vector<std::vector<double>> target(
        k, std::vector<double>(n));
    std::vector<double> zrow(k), y(k);
    for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t d = 0; d < k; ++d)
            zrow[d] = z[d][t];
        for (std::size_t r = 0; r < k; ++r) {
            double acc = zrow[r];
            for (std::size_t c = 0; c < r; ++c)
                acc -= q.at(r, c) * y[c];
            y[r] = acc / q.at(r, r);
        }
        for (std::size_t r = 0; r < k; ++r) {
            double acc = 0.0;
            for (std::size_t c = 0; c <= r; ++c)
                acc += chol.at(r, c) * y[c];
            target[r][t] = acc;
        }
    }

    // Reorder each column's values to match the target ranks: the
    // j-th smallest value goes to the trial holding the j-th
    // smallest target score (index tiebreak keeps this
    // deterministic).
    std::vector<std::size_t> ord(n);
    std::vector<double> sorted(n);
    for (std::size_t d = 0; d < k; ++d) {
        for (std::size_t t = 0; t < n; ++t) {
            ord[t] = t;
            sorted[t] = design.at(t, dims[d]);
        }
        std::sort(ord.begin(), ord.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (target[d][a] != target[d][b])
                          return target[d][a] < target[d][b];
                      return a < b;
                  });
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t j = 0; j < n; ++j)
            design.at(ord[j], dims[d]) = sorted[j];
    }
}

} // namespace ar::mc
