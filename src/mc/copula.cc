#include "mc/copula.hh"

#include <algorithm>

#include "math/numeric.hh"
#include "math/special.hh"
#include "util/logging.hh"

namespace ar::mc
{

GaussianCopula::GaussianCopula(std::vector<std::string> names,
                               const std::vector<Correlation> &pairs)
    : names_(std::move(names)),
      chol(ar::math::Matrix::identity(names_.size()))
{
    if (names_.size() < 2)
        ar::util::fatal("GaussianCopula: need at least two "
                        "dimensions");

    ar::math::Matrix corr =
        ar::math::Matrix::identity(names_.size());
    auto index_of = [&](const std::string &n) {
        const auto it = std::find(names_.begin(), names_.end(), n);
        if (it == names_.end())
            ar::util::fatal("GaussianCopula: unknown dimension '", n,
                            "'");
        return static_cast<std::size_t>(it - names_.begin());
    };
    for (const auto &p : pairs) {
        if (p.rho <= -1.0 || p.rho >= 1.0)
            ar::util::fatal("GaussianCopula: correlation must lie in "
                            "(-1, 1), got ", p.rho);
        const std::size_t i = index_of(p.a);
        const std::size_t j = index_of(p.b);
        if (i == j)
            ar::util::fatal("GaussianCopula: self-correlation for '",
                            p.a, "'");
        corr.at(i, j) = p.rho;
        corr.at(j, i) = p.rho;
    }
    chol = ar::math::cholesky(corr);
}

void
GaussianCopula::apply(UniformDesign &design,
                      const std::vector<std::size_t> &dims) const
{
    const std::size_t k = names_.size();
    if (dims.size() != k)
        ar::util::fatal("GaussianCopula::apply: expected ", k,
                        " column indices, got ", dims.size());
    std::vector<double> z(k), zc(k);
    for (std::size_t t = 0; t < design.trials(); ++t) {
        for (std::size_t d = 0; d < k; ++d) {
            const double u = ar::math::clamp(
                design.at(t, dims[d]), 1e-12, 1.0 - 1e-12);
            z[d] = ar::math::normalQuantile(u);
        }
        // zc = L z: correlated standard normals.
        for (std::size_t r = 0; r < k; ++r) {
            double acc = 0.0;
            for (std::size_t c = 0; c <= r; ++c)
                acc += chol.at(r, c) * z[c];
            zc[r] = acc;
        }
        for (std::size_t d = 0; d < k; ++d)
            design.at(t, dims[d]) = ar::math::normalCdf(zc[d]);
    }
}

} // namespace ar::mc
