#include "mc/stream_engine.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ar::mc
{

namespace
{

struct EngineMetrics
{
    obs::Counter blocks =
        obs::MetricsRegistry::global().counter("mc.blocks");
    obs::Counter faulty_trials =
        obs::MetricsRegistry::global().counter("mc.faulty_trials");
    obs::Counter discarded_trials =
        obs::MetricsRegistry::global().counter("mc.discarded_trials");
    obs::Counter fault_ns =
        obs::MetricsRegistry::global().counter("mc.fault_ns");
    obs::Gauge peak_bytes =
        obs::MetricsRegistry::global().gauge("mc.peak_bytes");
};

EngineMetrics &
engineMetrics()
{
    static EngineMetrics m;
    return m;
}

/** One recorded fault event, deferred until the in-order merge. */
struct FaultEvent
{
    std::size_t trial = 0;
    std::size_t output = 0;
    ar::util::FaultKind kind = ar::util::FaultKind::Nan;
    std::string op;
};

/** Everything one block contributes, a pure function of its trials. */
struct BlockPartial
{
    std::vector<ar::stats::StreamStats> stats;
    std::vector<FaultEvent> events;  ///< (trial, output) order.
    std::vector<std::size_t> faulty; ///< Faulty trials, ascending.
    std::shared_ptr<void> fold;
    std::size_t trials = 0;
};

bool
riskEnabled(const StreamEngine::Spec &spec, std::size_t output)
{
    switch (spec.risk_scope) {
      case StreamEngine::RiskScope::None: return false;
      case StreamEngine::RiskScope::First: return output == 0;
      case StreamEngine::RiskScope::All: return true;
    }
    return false;
}

std::vector<ar::stats::StreamStats>
makeStats(const StreamEngine::Spec &spec)
{
    std::vector<ar::stats::StreamStats> stats(spec.outputs);
    if (spec.stream.reservoir > 0) {
        for (auto &s : stats) {
            s.reservoir = ar::stats::StrideReservoir(
                spec.stream.reservoir, spec.trials);
        }
    }
    return stats;
}

/**
 * Fold one block's output slice into @p stats, honouring the skip
 * masks.  The (output, trial) fold order inside a block is fixed, so
 * the partial is a pure function of the block contents.
 */
void
accumulateBlock(const StreamEngine::Spec &spec,
                const StreamEngine::Hooks &hooks, std::size_t t0,
                std::size_t len, const std::vector<double *> &outs,
                const std::vector<unsigned char> &trial_skip,
                const std::vector<unsigned char> &cell_skip,
                std::vector<ar::stats::StreamStats> &stats)
{
    const bool per_output =
        spec.fault_skip == StreamEngine::FaultSkip::PerOutput;
    const bool have_ref = std::isfinite(spec.risk_reference);
    for (std::size_t o = 0; o < spec.outputs; ++o) {
        auto &s = stats[o];
        const bool do_risk = riskEnabled(spec, o);
        const double *xs = outs[o];
        const unsigned char *skip =
            per_output ? cell_skip.data() + o * len
                       : trial_skip.data();
        for (std::size_t i = 0; i < len; ++i) {
            if (skip[i])
                continue;
            const double x = xs[i];
            s.moments.add(x);
            if (do_risk) {
                s.risk.add(hooks.cost(o, x),
                           have_ref && x < spec.risk_reference);
            }
            s.reservoir.add(t0 + i, x);
        }
    }
}

/** Shared reduction state behind the in-order merge frontier. */
struct MergeState
{
    std::mutex m;
    std::map<std::size_t, BlockPartial> parked;
    std::size_t next = 0;          ///< Next block index to merge.
    std::size_t merged_blocks = 0;
    std::size_t merged_trials = 0;
    std::vector<ar::stats::StreamStats> master;
    std::shared_ptr<void> master_fold;
    bool have_fold = false;
    ar::util::FaultReport report;
    std::vector<std::size_t> faulty; ///< Global ascending.

    /** Early-stop block index; merges past it are discarded. */
    std::atomic<std::size_t> stop{
        std::numeric_limits<std::size_t>::max()};
};

/** Merge one in-order partial (caller holds MergeState::m). */
void
mergeLocked(MergeState &st, const StreamEngine::Spec &spec,
            const StreamEngine::Hooks &hooks, bool accumulate_inline,
            std::size_t block_index, BlockPartial &&p)
{
    if (accumulate_inline) {
        for (std::size_t o = 0; o < spec.outputs; ++o)
            st.master[o].merge(p.stats[o]);
    }
    for (auto &ev : p.events)
        st.report.record(ev.trial, ev.output, ev.kind,
                         std::move(ev.op));
    st.faulty.insert(st.faulty.end(), p.faulty.begin(),
                     p.faulty.end());
    if (hooks.fold) {
        if (!st.have_fold) {
            st.master_fold = std::move(p.fold);
            st.have_fold = true;
        } else {
            hooks.fold_merge(st.master_fold, p.fold);
        }
    }
    ++st.merged_blocks;
    st.merged_trials += p.trials;

    if (hooks.on_frame && spec.stream.frame_every > 0 &&
        st.merged_blocks % spec.stream.frame_every == 0) {
        StreamFrame frame;
        frame.blocks_done = st.merged_blocks;
        frame.trials_done = st.merged_trials;
        frame.faulty_trials = st.faulty.size();
        frame.stats = &st.master;
        hooks.on_frame(frame);
    }

    // The early-stop decision reads only the merged in-order prefix,
    // so the stop block is bit-identical for any thread count.
    if (spec.stream.ci_target > 0.0 &&
        st.stop.load(std::memory_order_relaxed) ==
            std::numeric_limits<std::size_t>::max() &&
        st.merged_blocks >= 2 &&
        st.master[0].risk.count() >= StreamEngine::kMinCiTrials &&
        st.master[0].risk.ciHalfWidth() <= spec.stream.ci_target) {
        st.stop.store(block_index, std::memory_order_relaxed);
    }
}

/** Park one finished partial and advance the merge frontier. */
void
pushPartial(MergeState &st, const StreamEngine::Spec &spec,
            const StreamEngine::Hooks &hooks, bool accumulate_inline,
            std::size_t block_index, BlockPartial &&p)
{
    std::lock_guard<std::mutex> lock(st.m);
    if (block_index > st.stop.load(std::memory_order_relaxed))
        return; // Raced past the stop point: discard, never merge.
    st.parked.emplace(block_index, std::move(p));
    while (!st.parked.empty() &&
           st.parked.begin()->first == st.next &&
           st.next <= st.stop.load(std::memory_order_relaxed)) {
        auto it = st.parked.begin();
        mergeLocked(st, spec, hooks, accumulate_inline, it->first,
                    std::move(it->second));
        st.parked.erase(it);
        ++st.next;
    }
    if (st.stop.load(std::memory_order_relaxed) !=
        std::numeric_limits<std::size_t>::max()) {
        st.parked.clear();
    }
}

} // namespace

StreamEngine::Result
StreamEngine::run(const Spec &spec, const Hooks &hooks)
{
    if (spec.trials == 0)
        ar::util::fatal("StreamEngine: trial count must be positive");
    if (spec.outputs == 0)
        ar::util::fatal("StreamEngine: need at least one output");
    if (!hooks.eval)
        ar::util::panic("StreamEngine: eval hook is required");
    if (spec.dims > 0 && !hooks.sample)
        ar::util::panic("StreamEngine: sample hook is required when "
                        "dims > 0");
    if (spec.risk_scope != RiskScope::None && !hooks.cost)
        ar::util::panic("StreamEngine: cost hook is required for "
                        "risk accumulation");
    if (hooks.fold && !hooks.fold_merge)
        ar::util::panic("StreamEngine: fold requires fold_merge");
    const bool keep = spec.stream.keep_samples;
    if (!keep && spec.policy == ar::util::FaultPolicy::Saturate) {
        ar::util::fatal("StreamEngine: the saturate policy needs the "
                        "global finite extrema and so requires "
                        "keep_samples; stream with fail_fast or "
                        "discard instead");
    }
    if (spec.stream.ci_target > 0.0) {
        if (!spec.accumulate || spec.risk_scope == RiskScope::None) {
            ar::util::fatal("StreamEngine: ci_target needs the "
                            "streaming risk accumulator");
        }
        if (spec.policy == ar::util::FaultPolicy::Saturate) {
            ar::util::fatal("StreamEngine: ci_target is incompatible "
                            "with the saturate policy (its statistics "
                            "are only final after saturation)");
        }
    }

    const std::size_t block =
        spec.stream.block > 0 ? spec.stream.block : kDefaultBlock;
    const std::size_t trials = spec.trials;
    const std::size_t n_blocks = (trials + block - 1) / block;

    // Saturate rewrites retained samples after the run, so its
    // accumulators are rebuilt from the saturated vectors below
    // rather than folded inline.
    const bool accumulate_inline =
        spec.accumulate &&
        spec.policy != ar::util::FaultPolicy::Saturate;

    Result res;
    if (keep) {
        res.samples.assign(spec.outputs,
                           std::vector<double>(trials, 0.0));
    }

    MergeState st;
    if (accumulate_inline)
        st.master = makeStats(spec);
    st.report.policy = spec.policy;
    st.report.by_output.assign(spec.outputs, 0);

    const bool per_output =
        spec.fault_skip == FaultSkip::PerOutput;

    ar::util::parallelFor(spec.threads, n_blocks, [&](std::size_t b) {
        if (b > st.stop.load(std::memory_order_relaxed))
            return; // Past a decided stop point: skip the work.
        const std::size_t t0 = b * block;
        const std::size_t t1 = std::min(trials, t0 + block);
        const std::size_t len = t1 - t0;

        BlockPartial p;
        p.trials = len;

        std::vector<std::vector<double>> cols(
            spec.dims, std::vector<double>(len, 0.0));
        if (spec.dims > 0)
            hooks.sample(t0, len, cols);

        std::vector<std::vector<double>> scratch;
        std::vector<double *> outs(spec.outputs);
        if (keep) {
            for (std::size_t o = 0; o < spec.outputs; ++o)
                outs[o] = res.samples[o].data() + t0;
        } else {
            scratch.assign(spec.outputs,
                           std::vector<double>(len, 0.0));
            for (std::size_t o = 0; o < spec.outputs; ++o)
                outs[o] = scratch[o].data();
        }
        hooks.eval(t0, len, cols, outs);

        // Fault scan in (trial, output) order: merged in block order
        // these per-block fragments reproduce exactly the event
        // sequence a serial whole-run scan would record.
        std::vector<unsigned char> trial_skip(len, 0);
        std::vector<unsigned char> cell_skip;
        if (per_output)
            cell_skip.assign(spec.outputs * len, 0);
        {
            obs::ScopedPhase phase("mc.faults",
                                   engineMetrics().fault_ns);
            for (std::size_t i = 0; i < len; ++i) {
                bool trial_faulty = false;
                for (std::size_t o = 0; o < spec.outputs; ++o) {
                    const double v = outs[o][i];
                    if (std::isfinite(v))
                        continue;
                    trial_faulty = true;
                    if (per_output)
                        cell_skip[o * len + i] = 1;
                    FaultEvent ev;
                    ev.trial = t0 + i;
                    ev.output = o;
                    if (hooks.diagnose) {
                        hooks.diagnose(o, t0 + i, cols, i, v,
                                       ev.kind, ev.op);
                    } else {
                        ev.kind = ar::util::classifyNonFinite(v);
                    }
                    p.events.push_back(std::move(ev));
                }
                if (trial_faulty) {
                    if (!per_output)
                        trial_skip[i] = 1;
                    p.faulty.push_back(t0 + i);
                }
            }
        }

        if (accumulate_inline) {
            p.stats = makeStats(spec);
            accumulateBlock(spec, hooks, t0, len, outs, trial_skip,
                            cell_skip, p.stats);
        }
        if (hooks.fold)
            p.fold = hooks.fold(t0, len, outs, trial_skip);

        pushPartial(st, spec, hooks, accumulate_inline, b,
                    std::move(p));
    }, spec.cancel);

    res.blocks = st.merged_blocks;
    res.trials_run = st.merged_trials;
    res.early_stopped =
        st.stop.load(std::memory_order_relaxed) !=
        std::numeric_limits<std::size_t>::max();
    if (keep && res.early_stopped) {
        for (auto &samples : res.samples)
            samples.resize(res.trials_run);
    }

    st.report.trials = res.trials_run;
    st.report.faulty_trials = st.faulty.size();
    st.report.effective_trials = res.trials_run;

    // Deterministic analytic peak-working-set estimate: retained
    // samples (if any) + per-worker block scratch + accumulators +
    // whatever the caller materialized (design matrix, pools).
    const std::size_t hw = std::max<std::size_t>(
        1, std::thread::hardware_concurrency());
    const std::size_t workers = std::min(
        n_blocks, spec.threads > 0 ? spec.threads : hw);
    const std::size_t per_block_bytes =
        (spec.dims + (keep ? 0 : spec.outputs) + spec.outputs) *
        block * sizeof(double);
    res.peak_bytes =
        spec.extra_bytes +
        (keep ? spec.outputs * trials * sizeof(double) : 0) +
        workers * per_block_bytes +
        (workers + 1) * spec.outputs *
            (sizeof(ar::stats::StreamStats) +
             spec.stream.reservoir * sizeof(double));

    if (obs::metricsEnabled()) {
        engineMetrics().blocks.add(res.blocks);
        engineMetrics().peak_bytes.toMax(
            static_cast<double>(res.peak_bytes));
    }

    if (spec.apply_policy) {
        if (obs::metricsEnabled()) {
            engineMetrics().faulty_trials.add(st.faulty.size());
            if (spec.policy == ar::util::FaultPolicy::Discard)
                engineMetrics().discarded_trials.add(
                    st.faulty.size());
        }
        if (!st.faulty.empty()) {
            switch (spec.policy) {
              case ar::util::FaultPolicy::FailFast:
                st.report.effective_trials =
                    res.trials_run - st.faulty.size();
                throw ar::util::FaultError(st.report);
              case ar::util::FaultPolicy::Discard:
                for (auto &samples : res.samples)
                    ar::util::discardSamples(samples, st.faulty);
                st.report.effective_trials =
                    res.trials_run - st.faulty.size();
                break;
              case ar::util::FaultPolicy::Saturate:
                for (auto &samples : res.samples) {
                    if (ar::util::countNonFinite(samples) > 0)
                        ar::util::saturateSamples(samples,
                                                  st.report);
                }
                break;
            }
        }
    }

    // Saturate: rebuild the accumulators from the (now finite)
    // retained samples through the same block partition and merge
    // order, preserving the positional determinism contract.
    if (spec.accumulate && !accumulate_inline) {
        st.master = makeStats(spec);
        for (std::size_t b2 = 0; b2 < res.blocks; ++b2) {
            const std::size_t t0 = b2 * block;
            const std::size_t t1 =
                std::min(res.trials_run, t0 + block);
            const std::size_t len = t1 - t0;
            std::vector<double *> outs(spec.outputs);
            for (std::size_t o = 0; o < spec.outputs; ++o)
                outs[o] = res.samples[o].data() + t0;
            // Saturation made every retained sample finite, so no
            // cell or trial is skipped in the refold.
            const std::vector<unsigned char> trial_skip(len, 0);
            const std::vector<unsigned char> cell_skip(
                per_output ? spec.outputs * len : 0, 0);
            auto partial = makeStats(spec);
            accumulateBlock(spec, hooks, t0, len, outs, trial_skip,
                            cell_skip, partial);
            for (std::size_t o = 0; o < spec.outputs; ++o)
                st.master[o].merge(partial[o]);
        }
    }

    res.stats = std::move(st.master);
    res.faults = std::move(st.report);
    res.fold = std::move(st.master_fold);
    return res;
}

} // namespace ar::mc
