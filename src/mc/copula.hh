/**
 * @file
 * Gaussian copula for correlated uncertain inputs.
 *
 * The paper's models treat every uncertain input as independent; in
 * practice application characteristics often move together (e.g. a
 * more parallel future workload may also communicate more).  A
 * Gaussian copula imposes a rank-correlation structure on the
 * uniform design before the per-variable inverse-CDF transforms, so
 * every marginal distribution is preserved exactly while the joint
 * behaviour becomes correlated.
 *
 * The correlation is realized by Iman-Conover rank reordering: each
 * column's values are PERMUTED (never replaced) so their rank order
 * matches a set of target scores with the requested Gaussian
 * correlation.  Because the values themselves are untouched, a
 * Latin-hypercube column keeps its exact per-dimension strata -- one
 * value per 1/n band -- and the sampler's variance reduction
 * survives the correlation.  (The previous implementation overwrote
 * the uniforms with fresh Phi(Lz) draws, which destroyed the
 * stratification.)
 */

#ifndef AR_MC_COPULA_HH
#define AR_MC_COPULA_HH

#include <string>
#include <vector>

#include "math/linalg.hh"
#include "mc/sampler.hh"

namespace ar::mc
{

/** Pairwise correlation between two named uncertain inputs. */
struct Correlation
{
    std::string a;
    std::string b;
    double rho = 0.0; ///< Correlation in Gaussian-copula space.

    friend bool operator==(const Correlation &,
                           const Correlation &) = default;
};

/** Gaussian copula over a set of named dimensions. */
class GaussianCopula
{
  public:
    /**
     * @param names Ordered names of the correlated dimensions.
     * @param pairs Pairwise correlations; unlisted pairs default to
     *        independent.  The implied matrix must be positive
     *        definite (fatal otherwise).
     */
    GaussianCopula(std::vector<std::string> names,
                   const std::vector<Correlation> &pairs);

    /**
     * Rewrite a uniform design in place: columns @p dims (mapping
     * copula dimension -> design column) become correlated uniforms.
     *
     * @param design Uniform design to transform.
     * @param dims Design-column index per copula dimension.
     */
    void apply(UniformDesign &design,
               const std::vector<std::size_t> &dims) const;

    /** @return the ordered dimension names. */
    const std::vector<std::string> &names() const { return names_; }

  private:
    std::vector<std::string> names_;
    ar::math::Matrix chol;
};

} // namespace ar::mc

#endif // AR_MC_COPULA_HH
