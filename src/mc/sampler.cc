#include "mc/sampler.hh"

#include "util/logging.hh"

namespace ar::mc
{

void
Sampler::fillBlock(std::uint64_t, std::size_t, UniformDesign &) const
{
    ar::util::panic("Sampler::fillBlock: sampler '", name(),
                    "' is not streamable");
}

UniformDesign
MonteCarloSampler::design(std::size_t trials, std::size_t dims,
                          ar::util::Rng &rng) const
{
    UniformDesign d(trials, dims);
    for (std::size_t t = 0; t < trials; ++t)
        for (std::size_t k = 0; k < dims; ++k)
            d.at(t, k) = rng.uniform();
    return d;
}

UniformDesign
LatinHypercubeSampler::design(std::size_t trials, std::size_t dims,
                              ar::util::Rng &rng) const
{
    if (trials == 0)
        ar::util::fatal("LatinHypercubeSampler: need at least 1 trial");
    UniformDesign d(trials, dims);
    const double n = static_cast<double>(trials);
    for (std::size_t k = 0; k < dims; ++k) {
        const auto perm = rng.permutation(trials);
        for (std::size_t t = 0; t < trials; ++t) {
            const double stratum = static_cast<double>(perm[t]);
            d.at(t, k) = (stratum + rng.uniform()) / n;
        }
    }
    return d;
}

UniformDesign
CounterSampler::design(std::size_t trials, std::size_t dims,
                       ar::util::Rng &rng) const
{
    const std::uint64_t master = rng.nextU64();
    UniformDesign d(trials, dims);
    for (std::size_t t0 = 0; t0 < trials; t0 += kGranule) {
        const std::size_t t1 = std::min(trials, t0 + kGranule);
        ar::util::Rng sub =
            ar::util::Rng::substream(master, t0 / kGranule);
        // Draw order within a granule is (trial, dim), the same walk
        // fillBlock() replays, so both paths agree bit-for-bit.
        for (std::size_t t = t0; t < t1; ++t)
            for (std::size_t k = 0; k < dims; ++k)
                d.at(t, k) = sub.uniform();
    }
    return d;
}

void
CounterSampler::fillBlock(std::uint64_t master, std::size_t t0,
                          UniformDesign &block) const
{
    const std::size_t len = block.trials();
    const std::size_t dims = block.dims();
    std::size_t filled = 0;
    while (filled < len) {
        const std::size_t t = t0 + filled;
        const std::size_t g = t / kGranule;
        const std::size_t g_first = g * kGranule;
        ar::util::Rng sub = ar::util::Rng::substream(master, g);
        // Skip the draws of granule trials preceding this range.
        for (std::size_t skip = (t - g_first) * dims; skip > 0;
             --skip)
            sub.uniform();
        const std::size_t take =
            std::min(len - filled, g_first + kGranule - t);
        for (std::size_t i = 0; i < take; ++i)
            for (std::size_t k = 0; k < dims; ++k)
                block.at(filled + i, k) = sub.uniform();
        filled += take;
    }
}

std::unique_ptr<Sampler>
makeSampler(const std::string &name)
{
    if (name == "monte-carlo")
        return std::make_unique<MonteCarloSampler>();
    if (name == "latin-hypercube")
        return std::make_unique<LatinHypercubeSampler>();
    if (name == "counter")
        return std::make_unique<CounterSampler>();
    ar::util::fatal("makeSampler: unknown sampler '", name, "'");
}

} // namespace ar::mc
