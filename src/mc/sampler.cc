#include "mc/sampler.hh"

#include "util/logging.hh"

namespace ar::mc
{

UniformDesign
MonteCarloSampler::design(std::size_t trials, std::size_t dims,
                          ar::util::Rng &rng) const
{
    UniformDesign d(trials, dims);
    for (std::size_t t = 0; t < trials; ++t)
        for (std::size_t k = 0; k < dims; ++k)
            d.at(t, k) = rng.uniform();
    return d;
}

UniformDesign
LatinHypercubeSampler::design(std::size_t trials, std::size_t dims,
                              ar::util::Rng &rng) const
{
    if (trials == 0)
        ar::util::fatal("LatinHypercubeSampler: need at least 1 trial");
    UniformDesign d(trials, dims);
    const double n = static_cast<double>(trials);
    for (std::size_t k = 0; k < dims; ++k) {
        const auto perm = rng.permutation(trials);
        for (std::size_t t = 0; t < trials; ++t) {
            const double stratum = static_cast<double>(perm[t]);
            d.at(t, k) = (stratum + rng.uniform()) / n;
        }
    }
    return d;
}

std::unique_ptr<Sampler>
makeSampler(const std::string &name)
{
    if (name == "monte-carlo")
        return std::make_unique<MonteCarloSampler>();
    if (name == "latin-hypercube")
        return std::make_unique<LatinHypercubeSampler>();
    ar::util::fatal("makeSampler: unknown sampler '", name, "'");
}

} // namespace ar::mc
