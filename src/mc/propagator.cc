#include "mc/propagator.hh"

#include <algorithm>
#include <set>

#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ar::mc
{

namespace
{

struct McMetrics
{
    obs::Counter propagations =
        obs::MetricsRegistry::global().counter("mc.propagations");
    obs::Counter trials =
        obs::MetricsRegistry::global().counter("mc.trials");
    obs::Counter faulty_trials =
        obs::MetricsRegistry::global().counter("mc.faulty_trials");
    obs::Counter discarded_trials =
        obs::MetricsRegistry::global().counter("mc.discarded_trials");
    obs::Counter sample_ns =
        obs::MetricsRegistry::global().counter("mc.sample_ns");
    obs::Counter eval_ns =
        obs::MetricsRegistry::global().counter("mc.eval_ns");
    obs::Counter fault_ns =
        obs::MetricsRegistry::global().counter("mc.fault_ns");
};

McMetrics &
mcMetrics()
{
    static McMetrics m;
    return m;
}

/**
 * Trials per parallel work unit.  Large enough that each tape op runs
 * as a vectorizable loop over a cache-resident block, small enough
 * that a 10k-trial run still load-balances across many workers.
 */
constexpr std::size_t kBlockTrials = 256;

/**
 * Check the bindings cover one argument list, and collect the
 * uncertain arguments into @p used_set.
 */
void
validateBindings(const std::vector<std::string> &arg_names,
                 const InputBindings &in,
                 std::set<std::string> &used_set)
{
    for (const auto &arg : arg_names) {
        const bool is_uncertain = in.uncertain.count(arg) > 0;
        const bool is_fixed = in.fixed.count(arg) > 0;
        if (is_uncertain && is_fixed) {
            ar::util::fatal("Propagator: '", arg,
                            "' bound as both fixed and uncertain");
        }
        if (!is_uncertain && !is_fixed) {
            ar::util::fatal("Propagator: no binding for model "
                            "input '", arg, "'");
        }
        if (is_uncertain)
            used_set.insert(arg);
    }
}

/**
 * Realize the requested pairwise correlations on the columns of the
 * design matrix that correspond to inputs the evaluated functions
 * actually use (an unused input cannot influence the outputs, so its
 * correlations are irrelevant here).
 */
void
applyCorrelations(UniformDesign &design,
                  const std::vector<std::string> &used,
                  const std::set<std::string> &used_set,
                  const InputBindings &in)
{
    if (in.correlations.empty())
        return;
    std::vector<Correlation> active;
    for (const auto &corr : in.correlations) {
        for (const auto &name : {corr.a, corr.b}) {
            if (!in.uncertain.count(name)) {
                ar::util::fatal("Propagator: correlation names "
                                "unknown uncertain input '",
                                name, "'");
            }
        }
        const bool a_used = used_set.count(corr.a) > 0;
        const bool b_used = used_set.count(corr.b) > 0;
        if (a_used && b_used)
            active.push_back(corr);
    }
    if (active.empty())
        return;
    // Columns of the distinct variables named by the active pairs,
    // in `used` order.
    std::vector<std::string> involved;
    std::vector<std::size_t> dims;
    for (std::size_t k = 0; k < used.size(); ++k) {
        for (const auto &corr : active) {
            if (corr.a == used[k] || corr.b == used[k]) {
                involved.push_back(used[k]);
                dims.push_back(k);
                break;
            }
        }
    }
    const GaussianCopula copula(involved, active);
    copula.apply(design, dims);
}

/**
 * Per-argument plumbing: either a fixed value or an index into the
 * uncertain-draws columns.
 */
struct ArgPlan
{
    bool is_uncertain;
    std::size_t draw_index;
    double fixed_value;
};

std::vector<ArgPlan>
buildPlan(const std::vector<std::string> &arg_names,
          const InputBindings &in,
          const std::vector<std::string> &used)
{
    std::vector<ArgPlan> plan;
    plan.reserve(arg_names.size());
    for (const auto &arg : arg_names) {
        if (auto it = in.fixed.find(arg); it != in.fixed.end()) {
            plan.push_back({false, 0, it->second});
        } else {
            const auto pos =
                std::lower_bound(used.begin(), used.end(), arg);
            plan.push_back(
                {true, static_cast<std::size_t>(pos - used.begin()),
                 0.0});
        }
    }
    return plan;
}

/** Look up the distributions of the used columns and prime their
 * lazily-built inversion tables (e.g. KDE quantile caches) on this
 * thread before the columns are filled concurrently. */
std::vector<const ar::dist::Distribution *>
primedDists(const std::vector<std::string> &used,
            const InputBindings &in)
{
    std::vector<const ar::dist::Distribution *> dists;
    dists.reserve(used.size());
    for (const auto &name : used)
        dists.push_back(in.uncertain.at(name).get());
    for (const auto *dist : dists)
        dist->sampleFromUniform(0.5);
    return dists;
}

/**
 * Apply the configured policy to the fully-built fault report.
 * FailFast throws with the report attached; Discard drops the faulty
 * trials from every output (alignment preserved); Saturate clamps
 * non-finite samples in place.
 */
void
applyFaultPolicy(std::vector<std::vector<double>> &results,
                 const std::vector<std::size_t> &faulty,
                 ar::util::FaultPolicy policy,
                 ar::util::FaultReport &faults)
{
    if (faulty.empty())
        return;
    switch (policy) {
      case ar::util::FaultPolicy::FailFast:
        faults.effective_trials = faults.trials - faulty.size();
        throw ar::util::FaultError(faults);
      case ar::util::FaultPolicy::Discard:
        for (auto &samples : results)
            ar::util::discardSamples(samples, faulty);
        faults.effective_trials = faults.trials - faulty.size();
        break;
      case ar::util::FaultPolicy::Saturate:
        for (auto &samples : results) {
            if (ar::util::countNonFinite(samples) > 0)
                ar::util::saturateSamples(samples, faults);
        }
        break;
    }
}

} // namespace

Propagator::Propagator(PropagationConfig cfg_in) : cfg(std::move(cfg_in))
{
    if (cfg.trials == 0)
        ar::util::fatal("Propagator: trial count must be positive");
}

std::vector<double>
Propagator::run(const ar::symbolic::CompiledExpr &fn,
                const InputBindings &in, ar::util::Rng &rng) const
{
    return runMany({&fn}, in, rng).front();
}

std::vector<std::vector<double>>
Propagator::runMany(
    const std::vector<const ar::symbolic::CompiledExpr *> &fns,
    const InputBindings &in, ar::util::Rng &rng) const
{
    return runManyReport(fns, in, rng).samples;
}

std::vector<std::vector<double>>
Propagator::runMulti(const ar::symbolic::CompiledProgram &prog,
                     const InputBindings &in,
                     ar::util::Rng &rng) const
{
    return runMultiReport(prog, in, rng).samples;
}

Propagation
Propagator::runManyReport(
    const std::vector<const ar::symbolic::CompiledExpr *> &fns,
    const InputBindings &in, ar::util::Rng &rng) const
{
    obs::TraceSpan run_span("mc.run_many");
    cfg.cancel.throwIfExpired("propagation");
    if (obs::metricsEnabled()) {
        mcMetrics().propagations.add();
        mcMetrics().trials.add(cfg.trials);
    }

    // Union of uncertain variables actually used by any function.
    std::set<std::string> used_set;
    for (const auto *fn : fns) {
        if (!fn)
            ar::util::panic("Propagator::runMany: null function");
        validateBindings(fn->argNames(), in, used_set);
    }
    const std::vector<std::string> used(used_set.begin(),
                                        used_set.end());

    const auto sampler = makeSampler(cfg.sampler);
    UniformDesign design =
        sampler->design(cfg.trials, used.size(), rng);
    applyCorrelations(design, used, used_set, in);

    std::vector<std::vector<ArgPlan>> plans;
    plans.reserve(fns.size());
    for (const auto *fn : fns)
        plans.push_back(buildPlan(fn->argNames(), in, used));

    const auto dists = primedDists(used, in);

    const std::size_t trials = cfg.trials;
    std::vector<std::vector<double>> columns(
        used.size(), std::vector<double>(trials, 0.0));
    std::vector<std::vector<double>> results(
        fns.size(), std::vector<double>(trials, 0.0));

    // Blocked SoA evaluation: each block materializes its slice of
    // every sampled draw column, then runs each function's tape once
    // over the whole slice.  Block b is a pure function of the design
    // matrix, so any thread count yields bit-identical results.
    const std::size_t n_blocks =
        (trials + kBlockTrials - 1) / kBlockTrials;
    ar::util::parallelFor(cfg.threads, n_blocks, [&](std::size_t b) {
        const std::size_t t0 = b * kBlockTrials;
        const std::size_t t1 =
            std::min(trials, t0 + kBlockTrials);
        const std::size_t len = t1 - t0;

        {
            obs::ScopedPhase phase("mc.sample",
                                   mcMetrics().sample_ns);
            // The design is column-major, so each dimension's
            // slice of uniforms feeds the distribution's batched
            // inverse-CDF directly (one ar::simd quantile-kernel
            // call for Normal and LogNormal, a scalar loop
            // otherwise), no gather needed.
            for (std::size_t k = 0; k < used.size(); ++k) {
                dists[k]->sampleFromUniformBatch(
                    design.column(k) + t0,
                    columns[k].data() + t0, len);
            }
        }

        obs::ScopedPhase phase("mc.eval", mcMetrics().eval_ns);
        std::vector<ar::symbolic::BatchArg> bargs;
        for (std::size_t f = 0; f < fns.size(); ++f) {
            const auto &plan = plans[f];
            bargs.resize(plan.size());
            for (std::size_t a = 0; a < plan.size(); ++a) {
                if (plan[a].is_uncertain) {
                    bargs[a] = {columns[plan[a].draw_index].data() +
                                    t0,
                                false};
                } else {
                    bargs[a] = {&plan[a].fixed_value, true};
                }
            }
            fns[f]->evalBatch(bargs, len, results[f].data() + t0);
        }
    }, cfg.cancel);

    // Fault containment: a serial post-pass over the fully
    // materialized results, so detection order -- and therefore the
    // report -- is a pure function of the design matrix, independent
    // of how blocks were scheduled across threads.  The cheap tier
    // scans outputs for non-finite values; the precise scalar tape
    // re-runs only the rare faulting trials to attribute each fault
    // to its first offending op.
    Propagation out;
    out.faults.policy = cfg.fault_policy;
    out.faults.trials = trials;
    out.faults.by_output.assign(fns.size(), 0);
    std::vector<std::size_t> faulty;
    std::vector<double> scalar_args;
    {
        obs::ScopedPhase phase("mc.faults", mcMetrics().fault_ns);
        const bool cancellable = cfg.cancel.cancellable();
        for (std::size_t t = 0; t < trials; ++t) {
            if (cancellable && (t & 4095u) == 0)
                cfg.cancel.throwIfExpired("fault scan");
            bool trial_faulty = false;
            for (std::size_t f = 0; f < fns.size(); ++f) {
                if (std::isfinite(results[f][t]))
                    continue;
                trial_faulty = true;
                const auto &plan = plans[f];
                scalar_args.resize(plan.size());
                for (std::size_t a = 0; a < plan.size(); ++a) {
                    scalar_args[a] =
                        plan[a].is_uncertain
                            ? columns[plan[a].draw_index][t]
                            : plan[a].fixed_value;
                }
                ar::symbolic::EvalFault fault;
                fns[f]->evalDiagnosed(scalar_args, fault);
                out.faults.record(
                    t, f,
                    fault.faulted
                        ? fault.kind
                        : ar::util::classifyNonFinite(results[f][t]),
                    fault.faulted ? fault.op : std::string());
            }
            if (trial_faulty)
                faulty.push_back(t);
        }
    }
    out.faults.faulty_trials = faulty.size();
    out.faults.effective_trials = trials;
    if (obs::metricsEnabled()) {
        mcMetrics().faulty_trials.add(faulty.size());
        if (cfg.fault_policy == ar::util::FaultPolicy::Discard)
            mcMetrics().discarded_trials.add(faulty.size());
    }
    applyFaultPolicy(results, faulty, cfg.fault_policy, out.faults);
    out.samples = std::move(results);
    return out;
}

Propagation
Propagator::runMultiReport(const ar::symbolic::CompiledProgram &prog,
                           const InputBindings &in,
                           ar::util::Rng &rng) const
{
    obs::TraceSpan run_span("mc.run_multi");
    cfg.cancel.throwIfExpired("propagation");
    if (obs::metricsEnabled()) {
        mcMetrics().propagations.add();
        mcMetrics().trials.add(cfg.trials);
    }

    // The program's arguments are the union of its outputs' free
    // symbols, so the uncertain set -- and with it the design
    // matrix, the copula, and every sampled draw -- matches
    // runManyReport() over the same expressions exactly.
    std::set<std::string> used_set;
    validateBindings(prog.argNames(), in, used_set);
    const std::vector<std::string> used(used_set.begin(),
                                        used_set.end());

    const auto sampler = makeSampler(cfg.sampler);
    UniformDesign design =
        sampler->design(cfg.trials, used.size(), rng);
    applyCorrelations(design, used, used_set, in);

    const auto plan = buildPlan(prog.argNames(), in, used);
    const auto dists = primedDists(used, in);

    const std::size_t trials = cfg.trials;
    const std::size_t n_out = prog.numOutputs();
    std::vector<std::vector<double>> columns(
        used.size(), std::vector<double>(trials, 0.0));
    std::vector<std::vector<double>> results(
        n_out, std::vector<double>(trials, 0.0));

    // Same blocked SoA scheme as runManyReport(), but one fused tape
    // pass computes every output of the block.
    const std::size_t n_blocks =
        (trials + kBlockTrials - 1) / kBlockTrials;
    ar::util::parallelFor(cfg.threads, n_blocks, [&](std::size_t b) {
        const std::size_t t0 = b * kBlockTrials;
        const std::size_t t1 =
            std::min(trials, t0 + kBlockTrials);
        const std::size_t len = t1 - t0;

        {
            obs::ScopedPhase phase("mc.sample",
                                   mcMetrics().sample_ns);
            // Per-dimension batched inverse-CDF straight off the
            // column-major design, exactly as in runManyReport().
            for (std::size_t k = 0; k < used.size(); ++k) {
                dists[k]->sampleFromUniformBatch(
                    design.column(k) + t0,
                    columns[k].data() + t0, len);
            }
        }

        obs::ScopedPhase phase("mc.eval", mcMetrics().eval_ns);
        std::vector<ar::symbolic::BatchArg> bargs(plan.size());
        for (std::size_t a = 0; a < plan.size(); ++a) {
            if (plan[a].is_uncertain) {
                bargs[a] = {columns[plan[a].draw_index].data() + t0,
                            false};
            } else {
                bargs[a] = {&plan[a].fixed_value, true};
            }
        }
        std::vector<double *> outs(n_out);
        for (std::size_t o = 0; o < n_out; ++o)
            outs[o] = results[o].data() + t0;
        prog.evalBatch(bargs, len, outs);
    }, cfg.cancel);

    // Identical serial fault post-pass; attribution replays the
    // faulting trial on the per-output tape the program keeps for
    // diagnosis, so kinds and labels match the unfused path.
    Propagation out;
    out.faults.policy = cfg.fault_policy;
    out.faults.trials = trials;
    out.faults.by_output.assign(n_out, 0);
    std::vector<std::size_t> faulty;
    std::vector<double> scalar_args(plan.size());
    {
        obs::ScopedPhase phase("mc.faults", mcMetrics().fault_ns);
        const bool cancellable = cfg.cancel.cancellable();
        for (std::size_t t = 0; t < trials; ++t) {
            if (cancellable && (t & 4095u) == 0)
                cfg.cancel.throwIfExpired("fault scan");
            bool trial_faulty = false;
            for (std::size_t o = 0; o < n_out; ++o) {
                if (std::isfinite(results[o][t]))
                    continue;
                trial_faulty = true;
                for (std::size_t a = 0; a < plan.size(); ++a) {
                    scalar_args[a] =
                        plan[a].is_uncertain
                            ? columns[plan[a].draw_index][t]
                            : plan[a].fixed_value;
                }
                ar::symbolic::EvalFault fault;
                prog.evalDiagnosed(o, scalar_args, fault);
                out.faults.record(
                    t, o,
                    fault.faulted
                        ? fault.kind
                        : ar::util::classifyNonFinite(results[o][t]),
                    fault.faulted ? fault.op : std::string());
            }
            if (trial_faulty)
                faulty.push_back(t);
        }
    }
    out.faults.faulty_trials = faulty.size();
    out.faults.effective_trials = trials;
    if (obs::metricsEnabled()) {
        mcMetrics().faulty_trials.add(faulty.size());
        if (cfg.fault_policy == ar::util::FaultPolicy::Discard)
            mcMetrics().discarded_trials.add(faulty.size());
    }
    applyFaultPolicy(results, faulty, cfg.fault_policy, out.faults);
    out.samples = std::move(results);
    return out;
}

} // namespace ar::mc
