#include "mc/propagator.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ar::mc
{

Propagator::Propagator(PropagationConfig cfg_in) : cfg(std::move(cfg_in))
{
    if (cfg.trials == 0)
        ar::util::fatal("Propagator: trial count must be positive");
}

std::vector<double>
Propagator::run(const ar::symbolic::CompiledExpr &fn,
                const InputBindings &in, ar::util::Rng &rng) const
{
    return runMany({&fn}, in, rng).front();
}

std::vector<std::vector<double>>
Propagator::runMany(
    const std::vector<const ar::symbolic::CompiledExpr *> &fns,
    const InputBindings &in, ar::util::Rng &rng) const
{
    // Union of uncertain variables actually used by any function.
    std::vector<std::string> used;
    for (const auto *fn : fns) {
        if (!fn)
            ar::util::panic("Propagator::runMany: null function");
        for (const auto &arg : fn->argNames()) {
            const bool is_uncertain = in.uncertain.count(arg) > 0;
            const bool is_fixed = in.fixed.count(arg) > 0;
            if (is_uncertain && is_fixed) {
                ar::util::fatal("Propagator: '", arg,
                                "' bound as both fixed and uncertain");
            }
            if (!is_uncertain && !is_fixed) {
                ar::util::fatal("Propagator: no binding for model "
                                "input '", arg, "'");
            }
            if (is_uncertain &&
                std::find(used.begin(), used.end(), arg) == used.end()) {
                used.push_back(arg);
            }
        }
    }
    std::sort(used.begin(), used.end());

    const auto sampler = makeSampler(cfg.sampler);
    UniformDesign design =
        sampler->design(cfg.trials, used.size(), rng);

    if (!in.correlations.empty()) {
        // Validate names, then keep only the pairs where both sides
        // are inputs of the evaluated functions (an unused input
        // cannot influence the outputs, so its correlations are
        // irrelevant here).
        std::vector<Correlation> active;
        for (const auto &corr : in.correlations) {
            for (const auto &name : {corr.a, corr.b}) {
                if (!in.uncertain.count(name)) {
                    ar::util::fatal("Propagator: correlation names "
                                    "unknown uncertain input '",
                                    name, "'");
                }
            }
            const bool a_used =
                std::find(used.begin(), used.end(), corr.a) !=
                used.end();
            const bool b_used =
                std::find(used.begin(), used.end(), corr.b) !=
                used.end();
            if (a_used && b_used)
                active.push_back(corr);
        }
        if (!active.empty()) {
            // Columns of the distinct variables named by the active
            // pairs, in `used` order.
            std::vector<std::string> involved;
            std::vector<std::size_t> dims;
            for (std::size_t k = 0; k < used.size(); ++k) {
                for (const auto &corr : active) {
                    if (corr.a == used[k] || corr.b == used[k]) {
                        involved.push_back(used[k]);
                        dims.push_back(k);
                        break;
                    }
                }
            }
            const GaussianCopula copula(involved, active);
            copula.apply(design, dims);
        }
    }

    // Per-function argument plumbing: for each argument, either a
    // fixed value or an index into the uncertain-draws row.
    struct ArgPlan
    {
        bool is_uncertain;
        std::size_t draw_index;
        double fixed_value;
    };
    std::vector<std::vector<ArgPlan>> plans;
    plans.reserve(fns.size());
    for (const auto *fn : fns) {
        std::vector<ArgPlan> plan;
        plan.reserve(fn->argNames().size());
        for (const auto &arg : fn->argNames()) {
            if (auto it = in.fixed.find(arg); it != in.fixed.end()) {
                plan.push_back({false, 0, it->second});
            } else {
                const auto pos = std::lower_bound(used.begin(),
                                                  used.end(), arg);
                plan.push_back(
                    {true,
                     static_cast<std::size_t>(pos - used.begin()),
                     0.0});
            }
        }
        plans.push_back(std::move(plan));
    }

    std::vector<const ar::dist::Distribution *> dists;
    dists.reserve(used.size());
    for (const auto &name : used)
        dists.push_back(in.uncertain.at(name).get());

    std::vector<std::vector<double>> results(
        fns.size(), std::vector<double>(cfg.trials, 0.0));
    std::vector<double> draws(used.size(), 0.0);
    std::vector<double> argbuf;
    for (std::size_t t = 0; t < cfg.trials; ++t) {
        for (std::size_t k = 0; k < used.size(); ++k)
            draws[k] = dists[k]->sampleFromUniform(design.at(t, k));
        for (std::size_t f = 0; f < fns.size(); ++f) {
            const auto &plan = plans[f];
            argbuf.resize(plan.size());
            for (std::size_t a = 0; a < plan.size(); ++a) {
                argbuf[a] = plan[a].is_uncertain
                                ? draws[plan[a].draw_index]
                                : plan[a].fixed_value;
            }
            results[f][t] = fns[f]->eval(argbuf);
        }
    }
    return results;
}

} // namespace ar::mc
