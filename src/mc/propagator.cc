#include "mc/propagator.hh"

#include <algorithm>
#include <optional>
#include <set>

#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace ar::mc
{

namespace
{

struct McMetrics
{
    obs::Counter propagations =
        obs::MetricsRegistry::global().counter("mc.propagations");
    obs::Counter trials =
        obs::MetricsRegistry::global().counter("mc.trials");
    obs::Counter sample_ns =
        obs::MetricsRegistry::global().counter("mc.sample_ns");
    obs::Counter eval_ns =
        obs::MetricsRegistry::global().counter("mc.eval_ns");
};

McMetrics &
mcMetrics()
{
    static McMetrics m;
    return m;
}

/**
 * Check the bindings cover one argument list, and collect the
 * uncertain arguments into @p used_set.
 */
void
validateBindings(const std::vector<std::string> &arg_names,
                 const InputBindings &in,
                 std::set<std::string> &used_set)
{
    for (const auto &arg : arg_names) {
        const bool is_uncertain = in.uncertain.count(arg) > 0;
        const bool is_fixed = in.fixed.count(arg) > 0;
        if (is_uncertain && is_fixed) {
            ar::util::fatal("Propagator: '", arg,
                            "' bound as both fixed and uncertain");
        }
        if (!is_uncertain && !is_fixed) {
            ar::util::fatal("Propagator: no binding for model "
                            "input '", arg, "'");
        }
        if (is_uncertain)
            used_set.insert(arg);
    }
}

/**
 * Realize the requested pairwise correlations on the columns of the
 * design matrix that correspond to inputs the evaluated functions
 * actually use (an unused input cannot influence the outputs, so its
 * correlations are irrelevant here).
 */
void
applyCorrelations(UniformDesign &design,
                  const std::vector<std::string> &used,
                  const std::set<std::string> &used_set,
                  const InputBindings &in)
{
    if (in.correlations.empty())
        return;
    std::vector<Correlation> active;
    for (const auto &corr : in.correlations) {
        for (const auto &name : {corr.a, corr.b}) {
            if (!in.uncertain.count(name)) {
                ar::util::fatal("Propagator: correlation names "
                                "unknown uncertain input '",
                                name, "'");
            }
        }
        const bool a_used = used_set.count(corr.a) > 0;
        const bool b_used = used_set.count(corr.b) > 0;
        if (a_used && b_used)
            active.push_back(corr);
    }
    if (active.empty())
        return;
    // Columns of the distinct variables named by the active pairs,
    // in `used` order.
    std::vector<std::string> involved;
    std::vector<std::size_t> dims;
    for (std::size_t k = 0; k < used.size(); ++k) {
        for (const auto &corr : active) {
            if (corr.a == used[k] || corr.b == used[k]) {
                involved.push_back(used[k]);
                dims.push_back(k);
                break;
            }
        }
    }
    const GaussianCopula copula(involved, active);
    copula.apply(design, dims);
}

/**
 * Per-argument plumbing: either a fixed value or an index into the
 * uncertain-draws columns.
 */
struct ArgPlan
{
    bool is_uncertain;
    std::size_t draw_index;
    double fixed_value;
};

std::vector<ArgPlan>
buildPlan(const std::vector<std::string> &arg_names,
          const InputBindings &in,
          const std::vector<std::string> &used)
{
    std::vector<ArgPlan> plan;
    plan.reserve(arg_names.size());
    for (const auto &arg : arg_names) {
        if (auto it = in.fixed.find(arg); it != in.fixed.end()) {
            plan.push_back({false, 0, it->second});
        } else {
            const auto pos =
                std::lower_bound(used.begin(), used.end(), arg);
            plan.push_back(
                {true, static_cast<std::size_t>(pos - used.begin()),
                 0.0});
        }
    }
    return plan;
}

/** Look up the distributions of the used columns and prime their
 * lazily-built inversion tables (e.g. KDE quantile caches) on this
 * thread before the columns are filled concurrently. */
std::vector<const ar::dist::Distribution *>
primedDists(const std::vector<std::string> &used,
            const InputBindings &in)
{
    std::vector<const ar::dist::Distribution *> dists;
    dists.reserve(used.size());
    for (const auto &name : used)
        dists.push_back(in.uncertain.at(name).get());
    for (const auto *dist : dists)
        dist->sampleFromUniform(0.5);
    return dists;
}

/**
 * The design strategy of one propagation: either a fully materialized
 * (and possibly correlated) design matrix, or -- for a streamable
 * sampler without correlations in streaming mode -- a master seed
 * from which any block of uniforms is regenerated on demand.
 */
struct DesignPlan
{
    std::optional<UniformDesign> design;
    std::uint64_t master = 0;

    bool streamed() const { return !design.has_value(); }

    std::size_t bytes() const
    {
        if (!design)
            return 0;
        return design->trials() * design->dims() * sizeof(double);
    }
};

DesignPlan
planDesign(const PropagationConfig &cfg, const Sampler &sampler,
           const std::vector<std::string> &used,
           const std::set<std::string> &used_set,
           const InputBindings &in, ar::util::Rng &rng)
{
    DesignPlan plan;
    // The copula imposes a whole-design rank reordering, so any
    // active correlation forces materialization.
    if (!cfg.stream.keep_samples && sampler.streamable() &&
        in.correlations.empty()) {
        plan.master = rng.nextU64();
        return plan;
    }
    plan.design.emplace(sampler.design(cfg.trials, used.size(), rng));
    applyCorrelations(*plan.design, used, used_set, in);
    return plan;
}

/** Fill the block's physical-draw columns from the design plan. */
void
sampleBlock(const DesignPlan &dplan, const Sampler &sampler,
            const std::vector<const ar::dist::Distribution *> &dists,
            std::size_t t0, std::size_t len,
            std::vector<std::vector<double>> &cols)
{
    obs::ScopedPhase phase("mc.sample", mcMetrics().sample_ns);
    if (dplan.streamed()) {
        UniformDesign block(len, dists.size());
        sampler.fillBlock(dplan.master, t0, block);
        for (std::size_t k = 0; k < dists.size(); ++k) {
            dists[k]->sampleFromUniformBatch(block.column(k),
                                             cols[k].data(), len);
        }
        return;
    }
    // The design is column-major, so each dimension's slice of
    // uniforms feeds the distribution's batched inverse-CDF directly
    // (one ar::simd quantile-kernel call for Normal and LogNormal, a
    // scalar loop otherwise), no gather needed.
    for (std::size_t k = 0; k < dists.size(); ++k) {
        dists[k]->sampleFromUniformBatch(
            dplan.design->column(k) + t0, cols[k].data(), len);
    }
}

/** Copy one trial's physical arguments for scalar re-diagnosis. */
void
scalarArgs(const std::vector<ArgPlan> &plan,
           const std::vector<std::vector<double>> &cols,
           std::size_t local, std::vector<double> &args)
{
    args.resize(plan.size());
    for (std::size_t a = 0; a < plan.size(); ++a) {
        args[a] = plan[a].is_uncertain
                      ? cols[plan[a].draw_index][local]
                      : plan[a].fixed_value;
    }
}

/** Translate an engine result into the public Propagation type. */
Propagation
toPropagation(StreamEngine::Result &&er)
{
    Propagation out;
    out.samples = std::move(er.samples);
    out.faults = std::move(er.faults);
    out.stats = std::move(er.stats);
    out.blocks = er.blocks;
    out.trials_run = er.trials_run;
    out.peak_bytes = er.peak_bytes;
    out.early_stopped = er.early_stopped;
    return out;
}

/** The engine spec shared by both propagation entry points. */
StreamEngine::Spec
makeSpec(const PropagationConfig &cfg, std::size_t dims,
         std::size_t outputs, const StreamObserver &observer,
         const DesignPlan &dplan)
{
    StreamEngine::Spec spec;
    spec.trials = cfg.trials;
    spec.dims = dims;
    spec.outputs = outputs;
    spec.threads = cfg.threads;
    spec.policy = cfg.fault_policy;
    spec.cancel = cfg.cancel;
    spec.stream = cfg.stream;
    spec.fault_skip = StreamEngine::FaultSkip::PerTrial;
    spec.risk_scope = observer.cost ? StreamEngine::RiskScope::First
                                    : StreamEngine::RiskScope::None;
    spec.risk_reference = observer.reference;
    spec.extra_bytes = dplan.bytes();
    return spec;
}

} // namespace

Propagator::Propagator(PropagationConfig cfg_in) : cfg(std::move(cfg_in))
{
    if (cfg.trials == 0)
        ar::util::fatal("Propagator: trial count must be positive");
}

std::vector<double>
Propagator::run(const ar::symbolic::CompiledExpr &fn,
                const InputBindings &in, ar::util::Rng &rng) const
{
    return runMany({&fn}, in, rng).front();
}

std::vector<std::vector<double>>
Propagator::runMany(
    const std::vector<const ar::symbolic::CompiledExpr *> &fns,
    const InputBindings &in, ar::util::Rng &rng) const
{
    return runManyReport(fns, in, rng).samples;
}

std::vector<std::vector<double>>
Propagator::runMulti(const ar::symbolic::CompiledProgram &prog,
                     const InputBindings &in,
                     ar::util::Rng &rng) const
{
    return runMultiReport(prog, in, rng).samples;
}

Propagation
Propagator::runManyReport(
    const std::vector<const ar::symbolic::CompiledExpr *> &fns,
    const InputBindings &in, ar::util::Rng &rng) const
{
    return runManyReport(fns, in, rng, StreamObserver{});
}

Propagation
Propagator::runManyReport(
    const std::vector<const ar::symbolic::CompiledExpr *> &fns,
    const InputBindings &in, ar::util::Rng &rng,
    const StreamObserver &observer) const
{
    obs::TraceSpan run_span("mc.run_many");
    cfg.cancel.throwIfExpired("propagation");
    if (obs::metricsEnabled()) {
        mcMetrics().propagations.add();
        mcMetrics().trials.add(cfg.trials);
    }

    // Union of uncertain variables actually used by any function.
    std::set<std::string> used_set;
    for (const auto *fn : fns) {
        if (!fn)
            ar::util::panic("Propagator::runMany: null function");
        validateBindings(fn->argNames(), in, used_set);
    }
    const std::vector<std::string> used(used_set.begin(),
                                        used_set.end());

    const auto sampler = makeSampler(cfg.sampler);
    const DesignPlan dplan =
        planDesign(cfg, *sampler, used, used_set, in, rng);

    std::vector<std::vector<ArgPlan>> plans;
    plans.reserve(fns.size());
    for (const auto *fn : fns)
        plans.push_back(buildPlan(fn->argNames(), in, used));

    const auto dists = primedDists(used, in);

    StreamEngine::Hooks hooks;
    hooks.sample = [&](std::size_t t0, std::size_t len,
                       std::vector<std::vector<double>> &cols) {
        sampleBlock(dplan, *sampler, dists, t0, len, cols);
    };
    hooks.eval = [&](std::size_t, std::size_t len,
                     const std::vector<std::vector<double>> &cols,
                     const std::vector<double *> &outs) {
        obs::ScopedPhase phase("mc.eval", mcMetrics().eval_ns);
        std::vector<ar::symbolic::BatchArg> bargs;
        for (std::size_t f = 0; f < fns.size(); ++f) {
            const auto &plan = plans[f];
            bargs.resize(plan.size());
            for (std::size_t a = 0; a < plan.size(); ++a) {
                if (plan[a].is_uncertain) {
                    bargs[a] = {cols[plan[a].draw_index].data(),
                                false};
                } else {
                    bargs[a] = {&plan[a].fixed_value, true};
                }
            }
            fns[f]->evalBatch(bargs, len, outs[f]);
        }
    };
    // The precise scalar tape re-runs only the rare faulting trials
    // to attribute each fault to its first offending op.
    hooks.diagnose = [&](std::size_t output, std::size_t,
                         const std::vector<std::vector<double>> &cols,
                         std::size_t local, double value,
                         ar::util::FaultKind &kind, std::string &op) {
        std::vector<double> args;
        scalarArgs(plans[output], cols, local, args);
        ar::symbolic::EvalFault fault;
        fns[output]->evalDiagnosed(args, fault);
        kind = fault.faulted ? fault.kind
                             : ar::util::classifyNonFinite(value);
        op = fault.faulted ? fault.op : std::string();
    };
    if (observer.cost) {
        hooks.cost = [&](std::size_t, double x) {
            return observer.cost(x);
        };
    }
    hooks.on_frame = observer.on_frame;

    return toPropagation(StreamEngine::run(
        makeSpec(cfg, used.size(), fns.size(), observer, dplan),
        hooks));
}

Propagation
Propagator::runMultiReport(const ar::symbolic::CompiledProgram &prog,
                           const InputBindings &in,
                           ar::util::Rng &rng) const
{
    return runMultiReport(prog, in, rng, StreamObserver{});
}

Propagation
Propagator::runMultiReport(const ar::symbolic::CompiledProgram &prog,
                           const InputBindings &in,
                           ar::util::Rng &rng,
                           const StreamObserver &observer) const
{
    obs::TraceSpan run_span("mc.run_multi");
    cfg.cancel.throwIfExpired("propagation");
    if (obs::metricsEnabled()) {
        mcMetrics().propagations.add();
        mcMetrics().trials.add(cfg.trials);
    }

    // The program's arguments are the union of its outputs' free
    // symbols, so the uncertain set -- and with it the design
    // matrix, the copula, and every sampled draw -- matches
    // runManyReport() over the same expressions exactly.
    std::set<std::string> used_set;
    validateBindings(prog.argNames(), in, used_set);
    const std::vector<std::string> used(used_set.begin(),
                                        used_set.end());

    const auto sampler = makeSampler(cfg.sampler);
    const DesignPlan dplan =
        planDesign(cfg, *sampler, used, used_set, in, rng);

    const auto plan = buildPlan(prog.argNames(), in, used);
    const auto dists = primedDists(used, in);
    const std::size_t n_out = prog.numOutputs();

    StreamEngine::Hooks hooks;
    hooks.sample = [&](std::size_t t0, std::size_t len,
                       std::vector<std::vector<double>> &cols) {
        sampleBlock(dplan, *sampler, dists, t0, len, cols);
    };
    // One fused tape pass computes every output of the block.
    hooks.eval = [&](std::size_t, std::size_t len,
                     const std::vector<std::vector<double>> &cols,
                     const std::vector<double *> &outs) {
        obs::ScopedPhase phase("mc.eval", mcMetrics().eval_ns);
        std::vector<ar::symbolic::BatchArg> bargs(plan.size());
        for (std::size_t a = 0; a < plan.size(); ++a) {
            if (plan[a].is_uncertain) {
                bargs[a] = {cols[plan[a].draw_index].data(), false};
            } else {
                bargs[a] = {&plan[a].fixed_value, true};
            }
        }
        prog.evalBatch(bargs, len, outs);
    };
    // Attribution replays the faulting trial on the per-output tape
    // the program keeps for diagnosis, so kinds and labels match the
    // unfused path.
    hooks.diagnose = [&](std::size_t output, std::size_t,
                         const std::vector<std::vector<double>> &cols,
                         std::size_t local, double value,
                         ar::util::FaultKind &kind, std::string &op) {
        std::vector<double> args;
        scalarArgs(plan, cols, local, args);
        ar::symbolic::EvalFault fault;
        prog.evalDiagnosed(output, args, fault);
        kind = fault.faulted ? fault.kind
                             : ar::util::classifyNonFinite(value);
        op = fault.faulted ? fault.op : std::string();
    };
    if (observer.cost) {
        hooks.cost = [&](std::size_t, double x) {
            return observer.cost(x);
        };
    }
    hooks.on_frame = observer.on_frame;

    return toPropagation(StreamEngine::run(
        makeSpec(cfg, used.size(), n_out, observer, dplan), hooks));
}

} // namespace ar::mc
