/**
 * @file
 * Uncertainty injection and propagation (Figure 5 of the paper): bind
 * uncertain variables to distributions and fixed inputs to values,
 * push N sampled trials through compiled model expressions, and
 * return the responsive-variable samples for distribution
 * reconstruction and risk calculation.
 */

#ifndef AR_MC_PROPAGATOR_HH
#define AR_MC_PROPAGATOR_HH

#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "dist/distribution.hh"
#include "mc/copula.hh"
#include "mc/sampler.hh"
#include "mc/stream_engine.hh"
#include "symbolic/compile.hh"
#include "symbolic/program.hh"
#include "util/cancel.hh"
#include "util/fault.hh"

namespace ar::mc
{

/** Propagation settings. */
struct PropagationConfig
{
    std::size_t trials = 10000;          ///< Paper default N = 10,000.
    std::string sampler = "latin-hypercube";

    /**
     * Worker threads for the trial loop; 0 means hardware
     * concurrency.  Results are bit-identical for any value.
     */
    std::size_t threads = 0;

    /**
     * What to do with trials whose output is non-finite (NaN/Inf from
     * a domain violation or overflow).  See ar::util::FaultPolicy.
     */
    ar::util::FaultPolicy fault_policy = ar::util::FaultPolicy::FailFast;

    /**
     * Cooperative cancellation / deadline token, polled at trial-block
     * boundaries of the evaluation loop and periodically during the
     * fault post-pass.  When it trips, the run stops within one block
     * and throws ar::util::CancelledError.  Cancellation has no RNG
     * side effects: re-running the same seed afterwards is
     * bit-identical to a run that was never cancelled.  The default
     * (null) token costs one pointer test per block.
     */
    ar::util::CancelToken cancel{};

    /**
     * Streaming execution knobs (see mc::StreamEngine).  The default
     * keeps every sample (classic behaviour).  With
     * stream.keep_samples = false the propagation runs in O(block)
     * memory: Propagation::samples stays empty and consumers read the
     * streaming accumulators instead.  A streamable sampler
     * ("counter") without correlations additionally avoids
     * materializing the uniform design.
     */
    StreamConfig stream{};
};

/** Samples plus the fault accounting of one propagation run. */
struct Propagation
{
    /** One sample vector per function, aligned by trial (after any
     * discard the alignment across functions is still preserved).
     * Empty when the run streamed (keep_samples = false). */
    std::vector<std::vector<double>> samples;

    /** Deterministic fault report (bit-identical for any threads). */
    ar::util::FaultReport faults;

    /**
     * Per-function streaming accumulators, folded in fixed block
     * order: bit-identical for any thread count and between streamed
     * and sample-keeping runs of the same configuration.
     */
    std::vector<ar::stats::StreamStats> stats;

    std::size_t blocks = 0;     ///< Pipeline blocks merged.
    std::size_t trials_run = 0; ///< Trials merged (early stopping
                                ///< truncates below cfg.trials).
    std::size_t peak_bytes = 0; ///< Engine's peak-memory estimate.
    bool early_stopped = false; ///< True when ci_target halted the run.
};

/**
 * Optional per-run streaming consumer: a risk cost folded into the
 * first function's accumulator (enabling ci_target early stopping)
 * and a progress callback invoked at in-order block boundaries.
 */
struct StreamObserver
{
    /** Risk cost of one output-0 sample (archRisk's per-sample term). */
    std::function<double(double)> cost;

    /** Reference value for the exceedance counter (NaN disables). */
    double reference = std::numeric_limits<double>::quiet_NaN();

    /** Progress frames (see StreamConfig::frame_every). */
    std::function<void(const StreamFrame &)> on_frame;
};

/** Named inputs for one propagation run. */
struct InputBindings
{
    /** Uncertain variables and their injected distributions. */
    std::map<std::string, ar::dist::DistPtr> uncertain;

    /** Certain inputs provided by the system designer. */
    std::map<std::string, double> fixed;

    /**
     * Optional pairwise correlations between uncertain inputs,
     * realized through a Gaussian copula (marginals are preserved
     * exactly).  Unlisted pairs remain independent.
     */
    std::vector<Correlation> correlations;
};

/** Monte-Carlo propagation engine. */
class Propagator
{
  public:
    /** @param cfg Trial count and sampling plan. */
    explicit Propagator(PropagationConfig cfg = {});

    /**
     * Propagate through one compiled expression.
     *
     * @param fn Compiled responsive-variable expression.
     * @param in Bindings covering every argument of @p fn.
     * @param rng Random stream.
     * @return one sample of the responsive variable per trial.
     */
    std::vector<double> run(const ar::symbolic::CompiledExpr &fn,
                            const InputBindings &in,
                            ar::util::Rng &rng) const;

    /**
     * Propagate several responsive variables over the SAME sampled
     * trials, preserving the correlation induced by shared uncertain
     * inputs.
     *
     * @param fns Compiled expressions.
     * @param in Bindings covering every argument of every function.
     * @param rng Random stream.
     * @return one sample vector per function, aligned by trial.
     */
    std::vector<std::vector<double>>
    runMany(const std::vector<const ar::symbolic::CompiledExpr *> &fns,
            const InputBindings &in, ar::util::Rng &rng) const;

    /**
     * Like runMany() but with explicit fault containment: every trial
     * whose output is non-finite is detected (cheap output scan),
     * re-diagnosed on the scalar tape for attribution (op + kind),
     * and handled per the configured FaultPolicy.  The report is a
     * pure function of the sampled design matrix, hence bit-identical
     * for any thread count.
     *
     * @throws ar::util::FaultError under FaultPolicy::FailFast when
     *         any trial faults (the report rides on the exception),
     *         or under Saturate when an output has no finite sample.
     */
    Propagation
    runManyReport(
        const std::vector<const ar::symbolic::CompiledExpr *> &fns,
        const InputBindings &in, ar::util::Rng &rng) const;

    /** runManyReport() with a streaming observer (risk accumulation
     * on the first function, progress frames, early stopping). */
    Propagation
    runManyReport(
        const std::vector<const ar::symbolic::CompiledExpr *> &fns,
        const InputBindings &in, ar::util::Rng &rng,
        const StreamObserver &observer) const;

    /**
     * Like runMany() but evaluating every output through one fused
     * CompiledProgram: subexpressions shared between outputs run
     * once per trial instead of once per output.  Given the same
     * rng state, the samples are bit-identical to runMany() over
     * per-output tapes of the same expressions, for every fault
     * policy and thread count.
     */
    std::vector<std::vector<double>>
    runMulti(const ar::symbolic::CompiledProgram &prog,
             const InputBindings &in, ar::util::Rng &rng) const;

    /** runMulti() with the runManyReport() fault accounting. */
    Propagation
    runMultiReport(const ar::symbolic::CompiledProgram &prog,
                   const InputBindings &in, ar::util::Rng &rng) const;

    /** runMultiReport() with a streaming observer. */
    Propagation
    runMultiReport(const ar::symbolic::CompiledProgram &prog,
                   const InputBindings &in, ar::util::Rng &rng,
                   const StreamObserver &observer) const;

    /** @return the configured trial count. */
    std::size_t trials() const { return cfg.trials; }

  private:
    PropagationConfig cfg;
};

} // namespace ar::mc

#endif // AR_MC_PROPAGATOR_HH
