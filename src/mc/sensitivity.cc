#include "mc/sensitivity.hh"

#include <algorithm>

#include "math/numeric.hh"
#include "mc/sampler.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ar::mc
{

const SobolIndex &
SensitivityResult::of(const std::string &input) const
{
    for (const auto &idx : indices) {
        if (idx.input == input)
            return idx;
    }
    ar::util::fatal("SensitivityResult: no index for input '", input,
                    "'");
}

SensitivityResult
sobolIndices(const ar::symbolic::CompiledExpr &fn,
             const InputBindings &in, const SensitivityConfig &cfg,
             ar::util::Rng &rng)
{
    if (cfg.trials < 8)
        ar::util::fatal("sobolIndices: need at least 8 trials");

    // Uncertain inputs actually used by the model, sorted.
    std::vector<std::string> names;
    std::vector<const ar::dist::Distribution *> dists;
    for (const auto &arg : fn.argNames()) {
        if (auto it = in.uncertain.find(arg);
            it != in.uncertain.end()) {
            names.push_back(arg);
            dists.push_back(it->second.get());
        } else if (!in.fixed.count(arg)) {
            ar::util::fatal("sobolIndices: no binding for model "
                            "input '", arg, "'");
        }
    }
    const std::size_t k = names.size();
    if (k == 0)
        ar::util::fatal("sobolIndices: model has no uncertain inputs");

    const auto sampler = makeSampler(cfg.sampler);
    const std::size_t n = cfg.trials;
    const UniformDesign ua = sampler->design(n, k, rng);
    const UniformDesign ub = sampler->design(n, k, rng);

    // Value matrices in input space.
    auto realize = [&](const UniformDesign &u, std::size_t trial,
                       std::size_t dim) {
        return dists[dim]->sampleFromUniform(u.at(trial, dim));
    };

    // Evaluation plumbing: map compiled argument order onto either a
    // fixed value or an uncertain dimension.
    struct ArgPlan
    {
        bool is_uncertain;
        std::size_t dim;
        double fixed_value;
    };
    std::vector<ArgPlan> plan;
    plan.reserve(fn.argNames().size());
    for (const auto &arg : fn.argNames()) {
        const auto pos = std::find(names.begin(), names.end(), arg);
        if (pos != names.end()) {
            plan.push_back(
                {true,
                 static_cast<std::size_t>(pos - names.begin()),
                 0.0});
        } else {
            plan.push_back({false, 0, in.fixed.at(arg)});
        }
    }

    std::vector<double> fa(n), fb(n);
    std::vector<std::vector<double>> fab(k, std::vector<double>(n));
    // The evaluation sweep is a pure function of the two design
    // matrices, so trial blocks parallelize with bit-identical
    // results for any thread count.
    constexpr std::size_t kBlock = 256;
    const std::size_t n_blocks = (n + kBlock - 1) / kBlock;
    ar::util::parallelFor(cfg.threads, n_blocks, [&](std::size_t b) {
        std::vector<double> row_a(k), row_b(k),
            argbuf(plan.size());
        auto eval_with = [&](const std::vector<double> &row) {
            for (std::size_t a = 0; a < plan.size(); ++a) {
                argbuf[a] = plan[a].is_uncertain
                                ? row[plan[a].dim]
                                : plan[a].fixed_value;
            }
            return fn.eval(argbuf);
        };
        const std::size_t t1 = std::min(n, (b + 1) * kBlock);
        for (std::size_t t = b * kBlock; t < t1; ++t) {
            for (std::size_t d = 0; d < k; ++d) {
                row_a[d] = realize(ua, t, d);
                row_b[d] = realize(ub, t, d);
            }
            fa[t] = eval_with(row_a);
            fb[t] = eval_with(row_b);
            for (std::size_t i = 0; i < k; ++i) {
                // AB_i: A with column i swapped in from B.
                const double keep = row_a[i];
                row_a[i] = row_b[i];
                fab[i][t] = eval_with(row_a);
                row_a[i] = keep;
            }
        }
    });

    // Fault containment: serial post-pass in trial order (hence
    // thread-count independent).  A trial is faulty when any of its
    // k + 2 evaluations is non-finite; the policy then applies to the
    // whole trial so pick-freeze pairs stay aligned.
    SensitivityResult res;
    res.faults.policy = cfg.fault_policy;
    res.faults.trials = n;
    res.faults.by_output.assign(k + 2, 0);
    std::vector<std::size_t> faulty;
    {
        std::vector<double> row_a(k), row_b(k), argbuf(plan.size());
        auto diagnose = [&](std::size_t t, std::size_t output,
                            const std::vector<double> &row,
                            double observed) {
            for (std::size_t a = 0; a < plan.size(); ++a) {
                argbuf[a] = plan[a].is_uncertain
                                ? row[plan[a].dim]
                                : plan[a].fixed_value;
            }
            ar::symbolic::EvalFault fault;
            fn.evalDiagnosed(argbuf, fault);
            res.faults.record(
                t, output,
                fault.faulted ? fault.kind
                              : ar::util::classifyNonFinite(observed),
                fault.faulted ? fault.op : std::string());
        };
        for (std::size_t t = 0; t < n; ++t) {
            bool bad =
                !std::isfinite(fa[t]) || !std::isfinite(fb[t]);
            for (std::size_t i = 0; !bad && i < k; ++i)
                bad = !std::isfinite(fab[i][t]);
            if (!bad)
                continue;
            faulty.push_back(t);
            for (std::size_t d = 0; d < k; ++d) {
                row_a[d] = realize(ua, t, d);
                row_b[d] = realize(ub, t, d);
            }
            if (!std::isfinite(fa[t]))
                diagnose(t, 0, row_a, fa[t]);
            if (!std::isfinite(fb[t]))
                diagnose(t, 1, row_b, fb[t]);
            for (std::size_t i = 0; i < k; ++i) {
                if (std::isfinite(fab[i][t]))
                    continue;
                const double keep = row_a[i];
                row_a[i] = row_b[i];
                diagnose(t, 2 + i, row_a, fab[i][t]);
                row_a[i] = keep;
            }
        }
    }
    res.faults.faulty_trials = faulty.size();
    res.faults.effective_trials = n;
    if (!faulty.empty()) {
        switch (cfg.fault_policy) {
          case ar::util::FaultPolicy::FailFast:
            res.faults.effective_trials = n - faulty.size();
            throw ar::util::FaultError(res.faults);
          case ar::util::FaultPolicy::Discard:
            ar::util::discardSamples(fa, faulty);
            ar::util::discardSamples(fb, faulty);
            for (auto &col : fab)
                ar::util::discardSamples(col, faulty);
            res.faults.effective_trials = n - faulty.size();
            break;
          case ar::util::FaultPolicy::Saturate:
            for (auto *vec : {&fa, &fb}) {
                if (ar::util::countNonFinite(*vec) > 0)
                    ar::util::saturateSamples(*vec, res.faults);
            }
            for (auto &col : fab) {
                if (ar::util::countNonFinite(col) > 0)
                    ar::util::saturateSamples(col, res.faults);
            }
            break;
        }
    }
    const std::size_t m = fa.size(); // surviving trials
    if (m < 2)
        throw ar::util::FaultError(res.faults);

    // Output moments over the pooled A and B evaluations.
    ar::math::KahanSum mean_acc;
    for (std::size_t t = 0; t < m; ++t) {
        mean_acc.add(fa[t]);
        mean_acc.add(fb[t]);
    }
    const double mean = mean_acc.value() / (2.0 * m);
    ar::math::KahanSum var_acc;
    for (std::size_t t = 0; t < m; ++t) {
        var_acc.add((fa[t] - mean) * (fa[t] - mean));
        var_acc.add((fb[t] - mean) * (fb[t] - mean));
    }
    const double variance = var_acc.value() / (2.0 * m - 1.0);

    res.output_mean = mean;
    res.output_variance = variance;
    res.trials = n;
    res.indices.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
        ar::math::KahanSum first_acc, total_acc;
        for (std::size_t t = 0; t < m; ++t) {
            const double db = fb[t] - fab[i][t];
            const double da = fa[t] - fab[i][t];
            first_acc.add(db * db);
            total_acc.add(da * da);
        }
        SobolIndex &idx = res.indices[i];
        idx.input = names[i];
        if (variance > 0.0) {
            // Jansen estimators over the surviving trials.
            idx.first_order =
                1.0 - first_acc.value() / (2.0 * m * variance);
            idx.total = total_acc.value() / (2.0 * m * variance);
            idx.first_order =
                ar::math::clamp(idx.first_order, 0.0, 1.0);
            idx.total = ar::math::clamp(idx.total, 0.0, 1.5);
        }
    }
    return res;
}

} // namespace ar::mc
