#include "mc/sensitivity.hh"

#include <algorithm>

#include "math/numeric.hh"
#include "mc/sampler.hh"
#include "mc/stream_engine.hh"
#include "obs/telemetry.hh"
#include "stats/stream.hh"
#include "obs/trace.hh"
#include "symbolic/substitute.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace ar::mc
{

namespace
{

struct SobolMetrics
{
    obs::Counter runs =
        obs::MetricsRegistry::global().counter("mc.sobol.runs");
    obs::Counter evals =
        obs::MetricsRegistry::global().counter("mc.sobol.evals");
    obs::Counter sweep_ns =
        obs::MetricsRegistry::global().counter("mc.sobol.sweep_ns");
};

SobolMetrics &
sobolMetrics()
{
    static SobolMetrics m;
    return m;
}

/** Suffix appended to uncertain-input names for the B-matrix copy of
 * a pick-freeze variant.  '!' sorts before every identifier
 * character, so "name!B" keeps the lexicographic position of "name"
 * relative to all other symbols -- renameSymbols() therefore
 * preserves operand order and the variant tapes stay bit-identical
 * to the base tape. */
constexpr const char *kBSuffix = "!B";

/**
 * Streaming Jansen partial: pooled f(A)/f(B) moments plus the per-
 * input squared-difference sums, accumulated per block and merged in
 * fixed block order through the engine's fold hooks.
 */
struct SobolFold
{
    ar::stats::StreamMoments pooled; ///< Over f(A) and f(B).
    std::vector<ar::math::KahanSum> first; ///< sum (fb - fab_i)^2.
    std::vector<ar::math::KahanSum> total; ///< sum (fa - fab_i)^2.
    std::size_t m = 0;                     ///< Surviving trials.
};

/**
 * Core Saltelli/Jansen estimator.  When @p prog is non-null it holds
 * the fused variant forest (outputs 0 = f(A), 1 = f(B), 2+i =
 * f(AB_i)) and the evaluation sweep runs one batched program pass
 * per trial block; otherwise each variant is a scalar walk of
 * @p fn's tape.  Everything else -- sampling, fault containment,
 * estimators -- is shared, so the two modes differ only in how the
 * f-matrices are filled (bit-identically, per the CompiledProgram
 * equivalence contract).
 */
SensitivityResult
sobolImpl(const ar::symbolic::CompiledExpr &fn,
          const ar::symbolic::CompiledProgram *prog,
          const InputBindings &in, const SensitivityConfig &cfg,
          ar::util::Rng &rng)
{
    if (cfg.trials < 8)
        ar::util::fatal("sobolIndices: need at least 8 trials");

    obs::TraceSpan run_span("mc.sobol");
    cfg.cancel.throwIfExpired("sensitivity analysis");

    // Uncertain inputs actually used by the model, sorted.
    std::vector<std::string> names;
    std::vector<const ar::dist::Distribution *> dists;
    for (const auto &arg : fn.argNames()) {
        if (auto it = in.uncertain.find(arg);
            it != in.uncertain.end()) {
            names.push_back(arg);
            dists.push_back(it->second.get());
        } else if (!in.fixed.count(arg)) {
            ar::util::fatal("sobolIndices: no binding for model "
                            "input '", arg, "'");
        }
    }
    const std::size_t k = names.size();
    if (k == 0)
        ar::util::fatal("sobolIndices: model has no uncertain inputs");

    // Pick-freeze column swaps assume independent inputs: under a
    // correlation the AB_i hybrid matrices no longer follow the
    // joint distribution and the Jansen estimators are meaningless.
    // Refuse loudly instead of returning invalid indices.
    for (const auto &corr : in.correlations) {
        const bool a_used =
            std::find(names.begin(), names.end(), corr.a) !=
            names.end();
        const bool b_used =
            std::find(names.begin(), names.end(), corr.b) !=
            names.end();
        if (a_used && b_used && corr.rho != 0.0) {
            ar::util::raiseDiagnostic(
                "sobolIndices: inputs '" + corr.a + "' and '" +
                corr.b + "' are correlated (rho = " +
                std::to_string(corr.rho) +
                "); Sobol pick-freeze estimators require "
                "independent inputs -- drop the 'correlate' pair or "
                "analyze the independent model");
        }
    }

    const auto sampler = makeSampler(cfg.sampler);
    const std::size_t n = cfg.trials;
    const UniformDesign ua = sampler->design(n, k, rng);
    const UniformDesign ub = sampler->design(n, k, rng);

    // Prime lazily-built inversion tables (e.g. KDE quantile caches)
    // on this thread before the sweep samples concurrently.
    for (const auto *dist : dists)
        dist->sampleFromUniform(0.5);

    // Value matrices in input space.
    auto realize = [&](const UniformDesign &u, std::size_t trial,
                       std::size_t dim) {
        return dists[dim]->sampleFromUniform(u.at(trial, dim));
    };

    // Evaluation plumbing: map compiled argument order onto either a
    // fixed value or an uncertain dimension.
    struct ArgPlan
    {
        bool is_uncertain;
        std::size_t dim;
        double fixed_value;
    };
    std::vector<ArgPlan> plan;
    plan.reserve(fn.argNames().size());
    for (const auto &arg : fn.argNames()) {
        const auto pos = std::find(names.begin(), names.end(), arg);
        if (pos != names.end()) {
            plan.push_back(
                {true,
                 static_cast<std::size_t>(pos - names.begin()),
                 0.0});
        } else {
            plan.push_back({false, 0, in.fixed.at(arg)});
        }
    }

    if (obs::metricsEnabled()) {
        // Pick-freeze evaluates f(A), f(B), and one f(AB_i) per
        // uncertain input for every trial.
        sobolMetrics().runs.add();
        sobolMetrics().evals.add(n * (k + 2));
    }

    if (cfg.stream &&
        cfg.fault_policy == ar::util::FaultPolicy::Saturate) {
        ar::util::fatal("sobolIndices: stream mode is incompatible "
                        "with the saturate policy (saturation needs "
                        "the materialized f-matrices)");
    }

    // The evaluation sweep runs on the block-pipelined engine: the
    // k + 2 variant evaluations of a trial are the engine outputs,
    // trial blocks are pure functions of the two design matrices,
    // and per-block results merge in fixed block order -- so
    // f-matrices, fault report, and estimators are bit-identical for
    // any thread count.  cfg.stream folds the Jansen sums per block
    // instead of retaining the f-matrices.
    const std::size_t outputs = k + 2;
    StreamEngine::Spec espec;
    espec.trials = n;
    espec.dims = prog ? 2 * k : 0;
    espec.outputs = outputs;
    espec.threads = cfg.threads;
    espec.policy = cfg.fault_policy;
    espec.cancel = cfg.cancel;
    espec.stream.keep_samples = !cfg.stream;
    espec.fault_skip = StreamEngine::FaultSkip::PerTrial;
    espec.accumulate = false;
    // Streamed runs let the engine apply the policy (FailFast throw,
    // Discard via the per-trial skip mask); the materializing path
    // keeps the bespoke per-matrix handling below.
    espec.apply_policy = cfg.stream;
    espec.extra_bytes = 2 * n * k * sizeof(double);

    StreamEngine::Hooks hooks;
    if (prog) {
        // Fused sweep: the program's arguments are the fixed inputs
        // plus two copies of every uncertain input -- "name" bound
        // to the A column and "name!B" to the B column.  One batched
        // pass per block computes all k + 2 variants of the block.
        struct ProgArg
        {
            enum { A, B, Fixed } src;
            std::size_t dim;
            double fixed_value;
        };
        auto pplan = std::make_shared<std::vector<ProgArg>>();
        pplan->reserve(prog->argNames().size());
        const std::string suffix = kBSuffix;
        for (const auto &arg : prog->argNames()) {
            if (arg.size() > suffix.size() &&
                arg.compare(arg.size() - suffix.size(),
                            suffix.size(), suffix) == 0) {
                const auto base =
                    arg.substr(0, arg.size() - suffix.size());
                const auto pos =
                    std::find(names.begin(), names.end(), base);
                if (pos == names.end())
                    ar::util::panic("sobolIndices: unplanned "
                                    "variant input '", arg, "'");
                pplan->push_back(
                    {ProgArg::B,
                     static_cast<std::size_t>(pos - names.begin()),
                     0.0});
            } else if (const auto pos = std::find(
                           names.begin(), names.end(), arg);
                       pos != names.end()) {
                pplan->push_back(
                    {ProgArg::A,
                     static_cast<std::size_t>(pos - names.begin()),
                     0.0});
            } else {
                pplan->push_back(
                    {ProgArg::Fixed, 0, in.fixed.at(arg)});
            }
        }
        // Engine columns [0, k) carry the A draws, [k, 2k) the B
        // draws: one batched inverse-CDF (ar::simd quantile kernel
        // for Normal/LogNormal) per column slice, straight off the
        // column-major designs.
        hooks.sample = [&, k](std::size_t t0, std::size_t len,
                              std::vector<std::vector<double>> &cols) {
            for (std::size_t d = 0; d < k; ++d) {
                dists[d]->sampleFromUniformBatch(
                    ua.column(d) + t0, cols[d].data(), len);
                dists[d]->sampleFromUniformBatch(
                    ub.column(d) + t0, cols[k + d].data(), len);
            }
        };
        hooks.eval = [&, k, pplan](
                         std::size_t, std::size_t len,
                         const std::vector<std::vector<double>> &cols,
                         const std::vector<double *> &outs) {
            obs::ScopedPhase sweep_phase("mc.sobol.sweep_fused",
                                         sobolMetrics().sweep_ns);
            std::vector<ar::symbolic::BatchArg> bargs(pplan->size());
            for (std::size_t a = 0; a < pplan->size(); ++a) {
                switch ((*pplan)[a].src) {
                  case ProgArg::A:
                    bargs[a] = {cols[(*pplan)[a].dim].data(), false};
                    break;
                  case ProgArg::B:
                    bargs[a] = {cols[k + (*pplan)[a].dim].data(),
                                false};
                    break;
                  case ProgArg::Fixed:
                    bargs[a] = {&(*pplan)[a].fixed_value, true};
                    break;
                }
            }
            prog->evalBatch(bargs, len, outs);
        };
    } else {
        // Unfused sweep: k + 2 scalar tape walks per trial, rows
        // realized from the designs exactly as before (scalar
        // inverse-CDF per cell).
        hooks.eval = [&, k](std::size_t t0, std::size_t len,
                            const std::vector<std::vector<double>> &,
                            const std::vector<double *> &outs) {
            obs::ScopedPhase sweep_phase("mc.sobol.sweep",
                                         sobolMetrics().sweep_ns);
            std::vector<double> row_a(k), row_b(k),
                argbuf(plan.size());
            auto eval_with = [&](const std::vector<double> &row) {
                for (std::size_t a = 0; a < plan.size(); ++a) {
                    argbuf[a] = plan[a].is_uncertain
                                    ? row[plan[a].dim]
                                    : plan[a].fixed_value;
                }
                return fn.eval(argbuf);
            };
            for (std::size_t i = 0; i < len; ++i) {
                const std::size_t t = t0 + i;
                for (std::size_t d = 0; d < k; ++d) {
                    row_a[d] = realize(ua, t, d);
                    row_b[d] = realize(ub, t, d);
                }
                outs[0][i] = eval_with(row_a);
                outs[1][i] = eval_with(row_b);
                for (std::size_t j = 0; j < k; ++j) {
                    // AB_j: A with column j swapped in from B.
                    const double keep = row_a[j];
                    row_a[j] = row_b[j];
                    outs[2 + j][i] = eval_with(row_a);
                    row_a[j] = keep;
                }
            }
        };
    }

    // Diagnosis always replays the base tape on scalar-realized
    // rows, so attribution is identical for the fused and unfused
    // sweeps (and to the pre-engine serial post-pass).
    hooks.diagnose = [&, k](std::size_t output, std::size_t trial,
                            const std::vector<std::vector<double>> &,
                            std::size_t, double observed,
                            ar::util::FaultKind &kind,
                            std::string &op) {
        std::vector<double> row(k), argbuf(plan.size());
        const UniformDesign &u = output == 1 ? ub : ua;
        for (std::size_t d = 0; d < k; ++d)
            row[d] = realize(u, trial, d);
        if (output >= 2) // AB_i: column i comes from B.
            row[output - 2] = realize(ub, trial, output - 2);
        for (std::size_t a = 0; a < plan.size(); ++a) {
            argbuf[a] = plan[a].is_uncertain ? row[plan[a].dim]
                                             : plan[a].fixed_value;
        }
        ar::symbolic::EvalFault fault;
        fn.evalDiagnosed(argbuf, fault);
        kind = fault.faulted ? fault.kind
                             : ar::util::classifyNonFinite(observed);
        op = fault.faulted ? fault.op : std::string();
    };

    if (cfg.stream) {
        hooks.fold = [&, k](std::size_t, std::size_t len,
                            const std::vector<double *> &outs,
                            const std::vector<unsigned char> &skip) {
            auto f = std::make_shared<SobolFold>();
            f->first.resize(k);
            f->total.resize(k);
            for (std::size_t i = 0; i < len; ++i) {
                if (skip[i])
                    continue;
                ++f->m;
                const double a = outs[0][i];
                const double b = outs[1][i];
                f->pooled.add(a);
                f->pooled.add(b);
                for (std::size_t j = 0; j < k; ++j) {
                    const double db = b - outs[2 + j][i];
                    const double da = a - outs[2 + j][i];
                    f->first[j].add(db * db);
                    f->total[j].add(da * da);
                }
            }
            return std::static_pointer_cast<void>(f);
        };
        hooks.fold_merge = [k](const std::shared_ptr<void> &master,
                               const std::shared_ptr<void> &partial) {
            auto *dst = static_cast<SobolFold *>(master.get());
            auto *src = static_cast<SobolFold *>(partial.get());
            dst->pooled.merge(src->pooled);
            for (std::size_t j = 0; j < k; ++j) {
                dst->first[j].add(src->first[j].value());
                dst->total[j].add(src->total[j].value());
            }
            dst->m += src->m;
        };
    }

    SensitivityResult res;
    auto er = StreamEngine::run(espec, hooks);
    res.faults = std::move(er.faults);
    res.trials = n;

    if (cfg.stream) {
        const auto *fold =
            static_cast<const SobolFold *>(er.fold.get());
        const std::size_t m = fold ? fold->m : 0;
        if (m < 2)
            throw ar::util::FaultError(res.faults);
        const double variance = fold->pooled.variance();
        res.output_mean = fold->pooled.mean();
        res.output_variance = variance;
        res.indices.resize(k);
        for (std::size_t i = 0; i < k; ++i) {
            SobolIndex &idx = res.indices[i];
            idx.input = names[i];
            if (variance > 0.0) {
                idx.first_order =
                    1.0 - fold->first[i].value() /
                              (2.0 * m * variance);
                idx.total =
                    fold->total[i].value() / (2.0 * m * variance);
                idx.first_order =
                    ar::math::clamp(idx.first_order, 0.0, 1.0);
                idx.total = ar::math::clamp(idx.total, 0.0, 1.5);
            }
        }
        return res;
    }

    std::vector<double> fa = std::move(er.samples[0]);
    std::vector<double> fb = std::move(er.samples[1]);
    std::vector<std::vector<double>> fab(k);
    for (std::size_t i = 0; i < k; ++i)
        fab[i] = std::move(er.samples[2 + i]);

    // Bespoke policy application over the materialized f-matrices: a
    // faulty trial drops (or saturates) as a whole so pick-freeze
    // pairs stay aligned.
    if (res.faults.faulty_trials > 0) {
        // Recover the faulty-trial list deterministically from the
        // retained matrices (a trial is faulty when any of its k + 2
        // evaluations is non-finite).
        std::vector<std::size_t> bad;
        for (std::size_t t = 0; t < n; ++t) {
            bool is_bad =
                !std::isfinite(fa[t]) || !std::isfinite(fb[t]);
            for (std::size_t i = 0; !is_bad && i < k; ++i)
                is_bad = !std::isfinite(fab[i][t]);
            if (is_bad)
                bad.push_back(t);
        }
        switch (cfg.fault_policy) {
          case ar::util::FaultPolicy::FailFast:
            res.faults.effective_trials = n - bad.size();
            throw ar::util::FaultError(res.faults);
          case ar::util::FaultPolicy::Discard:
            ar::util::discardSamples(fa, bad);
            ar::util::discardSamples(fb, bad);
            for (auto &col : fab)
                ar::util::discardSamples(col, bad);
            res.faults.effective_trials = n - bad.size();
            break;
          case ar::util::FaultPolicy::Saturate:
            for (auto *vec : {&fa, &fb}) {
                if (ar::util::countNonFinite(*vec) > 0)
                    ar::util::saturateSamples(*vec, res.faults);
            }
            for (auto &col : fab) {
                if (ar::util::countNonFinite(col) > 0)
                    ar::util::saturateSamples(col, res.faults);
            }
            break;
        }
    }
    const std::size_t m = fa.size(); // surviving trials
    if (m < 2)
        throw ar::util::FaultError(res.faults);

    // Output moments over the pooled A and B evaluations.
    ar::math::KahanSum mean_acc;
    for (std::size_t t = 0; t < m; ++t) {
        mean_acc.add(fa[t]);
        mean_acc.add(fb[t]);
    }
    const double mean = mean_acc.value() / (2.0 * m);
    ar::math::KahanSum var_acc;
    for (std::size_t t = 0; t < m; ++t) {
        var_acc.add((fa[t] - mean) * (fa[t] - mean));
        var_acc.add((fb[t] - mean) * (fb[t] - mean));
    }
    const double variance = var_acc.value() / (2.0 * m - 1.0);

    res.output_mean = mean;
    res.output_variance = variance;
    res.trials = n;
    res.indices.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
        ar::math::KahanSum first_acc, total_acc;
        for (std::size_t t = 0; t < m; ++t) {
            const double db = fb[t] - fab[i][t];
            const double da = fa[t] - fab[i][t];
            first_acc.add(db * db);
            total_acc.add(da * da);
        }
        SobolIndex &idx = res.indices[i];
        idx.input = names[i];
        if (variance > 0.0) {
            // Jansen estimators over the surviving trials.
            idx.first_order =
                1.0 - first_acc.value() / (2.0 * m * variance);
            idx.total = total_acc.value() / (2.0 * m * variance);
            idx.first_order =
                ar::math::clamp(idx.first_order, 0.0, 1.0);
            idx.total = ar::math::clamp(idx.total, 0.0, 1.5);
        }
    }
    return res;
}

} // namespace

const SobolIndex &
SensitivityResult::of(const std::string &input) const
{
    for (const auto &idx : indices) {
        if (idx.input == input)
            return idx;
    }
    ar::util::fatal("SensitivityResult: no index for input '", input,
                    "'");
}

SensitivityResult
sobolIndices(const ar::symbolic::CompiledExpr &fn,
             const InputBindings &in, const SensitivityConfig &cfg,
             ar::util::Rng &rng)
{
    return sobolImpl(fn, nullptr, in, cfg, rng);
}

SensitivityResult
sobolIndices(const ar::symbolic::ExprPtr &expr,
             const InputBindings &in, const SensitivityConfig &cfg,
             ar::util::Rng &rng)
{
    const ar::symbolic::CompiledExpr fn(expr);
    if (!cfg.fused)
        return sobolImpl(fn, nullptr, in, cfg, rng);

    // Uncertain inputs in tape argument order, as sobolImpl sees
    // them; the suffix-renamed variants below bind dimension i of
    // the B matrix to "names[i]!B".
    std::vector<std::string> names;
    for (const auto &arg : fn.argNames()) {
        if (in.uncertain.count(arg))
            names.push_back(arg);
    }
    for (const auto &name : names) {
        if (name.find('!') != std::string::npos) {
            ar::util::fatal("sobolIndices: input name '", name,
                            "' collides with the pick-freeze "
                            "renaming scheme");
        }
    }
    if (names.empty()) // let sobolImpl produce the standard error
        return sobolImpl(fn, nullptr, in, cfg, rng);

    std::map<std::string, std::string> all_b;
    for (const auto &name : names)
        all_b[name] = name + kBSuffix;
    std::vector<ar::symbolic::ExprPtr> forest;
    forest.reserve(names.size() + 2);
    forest.push_back(expr);                                // f(A)
    forest.push_back(
        ar::symbolic::renameSymbols(expr, all_b));         // f(B)
    for (const auto &name : names) {
        forest.push_back(ar::symbolic::renameSymbols(
            expr, {{name, name + kBSuffix}}));             // f(AB_i)
    }
    const ar::symbolic::CompiledProgram prog(forest);
    return sobolImpl(fn, &prog, in, cfg, rng);
}

} // namespace ar::mc
