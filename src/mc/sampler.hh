/**
 * @file
 * Sampling plans for Monte-Carlo uncertainty propagation: independent
 * uniform sampling and Latin-hypercube stratified sampling (the
 * paper's choice, Figure 5 step 4, after mcerp).
 */

#ifndef AR_MC_SAMPLER_HH
#define AR_MC_SAMPLER_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace ar::mc
{

/** Row-major trials x dims matrix of uniform variates in (0, 1). */
class UniformDesign
{
  public:
    /** @param trials Row count. @param dims Column count. */
    UniformDesign(std::size_t trials, std::size_t dims)
        : trials_(trials), dims_(dims), data(trials * dims, 0.0)
    {}

    /** Mutable element access. */
    double &at(std::size_t trial, std::size_t dim)
    {
        return data[dim * trials_ + trial];
    }

    /** Element access. */
    double at(std::size_t trial, std::size_t dim) const
    {
        return data[dim * trials_ + trial];
    }

    /**
     * Contiguous storage of one dimension's column, trials() values.
     * Storage is column-major precisely so the per-dimension batch
     * quantile transform reads its uniforms without a strided gather.
     */
    const double *column(std::size_t dim) const
    {
        return data.data() + dim * trials_;
    }

    /** @return number of rows (trials). */
    std::size_t trials() const { return trials_; }

    /** @return number of columns (dimensions). */
    std::size_t dims() const { return dims_; }

  private:
    std::size_t trials_;
    std::size_t dims_;
    std::vector<double> data;
};

/** Strategy interface producing a uniform design. */
class Sampler
{
  public:
    virtual ~Sampler() = default;

    /** Generate a trials x dims design of uniforms in (0, 1). */
    virtual UniformDesign design(std::size_t trials, std::size_t dims,
                                 ar::util::Rng &rng) const = 0;

    /** @return a short identifying name. */
    virtual std::string name() const = 0;
};

/** Independent uniform sampling (plain Monte-Carlo). */
class MonteCarloSampler : public Sampler
{
  public:
    UniformDesign design(std::size_t trials, std::size_t dims,
                         ar::util::Rng &rng) const override;
    std::string name() const override { return "monte-carlo"; }
};

/**
 * Latin-hypercube sampling: each dimension is divided into `trials`
 * equal strata; every stratum is hit exactly once, with a random
 * offset inside the stratum and an independent random permutation per
 * dimension.
 */
class LatinHypercubeSampler : public Sampler
{
  public:
    UniformDesign design(std::size_t trials, std::size_t dims,
                         ar::util::Rng &rng) const override;
    std::string name() const override { return "latin-hypercube"; }
};

/** Factory by name ("monte-carlo" or "latin-hypercube"). */
std::unique_ptr<Sampler> makeSampler(const std::string &name);

} // namespace ar::mc

#endif // AR_MC_SAMPLER_HH
