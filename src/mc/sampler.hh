/**
 * @file
 * Sampling plans for Monte-Carlo uncertainty propagation: independent
 * uniform sampling, Latin-hypercube stratified sampling (the paper's
 * choice, Figure 5 step 4, after mcerp), and a counter-based sampler
 * whose draws are a pure function of (master seed, trial index) so
 * streaming engines can regenerate any trial block on demand without
 * materializing the whole design.
 */

#ifndef AR_MC_SAMPLER_HH
#define AR_MC_SAMPLER_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace ar::mc
{

/**
 * Column-major trials x dims matrix of uniform variates in (0, 1):
 * all trials of dimension d are stored contiguously at
 * data[d * trials .. (d + 1) * trials), so column(d) hands the
 * per-dimension batch quantile transform a gather-free slice.
 * (Logically the design is still "one row per trial"; only the
 * storage order is per-column.)
 */
class UniformDesign
{
  public:
    /** @param trials Row count. @param dims Column count. */
    UniformDesign(std::size_t trials, std::size_t dims)
        : trials_(trials), dims_(dims), data(trials * dims, 0.0)
    {}

    /** Mutable element access. */
    double &at(std::size_t trial, std::size_t dim)
    {
        return data[dim * trials_ + trial];
    }

    /** Element access. */
    double at(std::size_t trial, std::size_t dim) const
    {
        return data[dim * trials_ + trial];
    }

    /**
     * Contiguous storage of one dimension's column, trials() values.
     * Storage is column-major precisely so the per-dimension batch
     * quantile transform reads its uniforms without a strided gather.
     */
    const double *column(std::size_t dim) const
    {
        return data.data() + dim * trials_;
    }

    /** @return number of rows (trials). */
    std::size_t trials() const { return trials_; }

    /** @return number of columns (dimensions). */
    std::size_t dims() const { return dims_; }

  private:
    std::size_t trials_;
    std::size_t dims_;
    std::vector<double> data;
};

/** Strategy interface producing a uniform design. */
class Sampler
{
  public:
    virtual ~Sampler() = default;

    /** Generate a trials x dims design of uniforms in (0, 1). */
    virtual UniformDesign design(std::size_t trials, std::size_t dims,
                                 ar::util::Rng &rng) const = 0;

    /**
     * True when fillBlock() can regenerate any trial range of the
     * design on demand from a master seed.  Stratified plans (LHS)
     * are whole-design by construction and return false; streaming
     * engines then fall back to one materialized design.
     */
    virtual bool streamable() const { return false; }

    /**
     * Regenerate the design slice for trials [t0, t0 + block.trials())
     * into @p block (streamable samplers only).  The values are a pure
     * function of (master, trial, dim): independent of the requested
     * range, of thread count, and identical to the same trials of
     * design() seeded with the same master draw.
     */
    virtual void fillBlock(std::uint64_t master, std::size_t t0,
                           UniformDesign &block) const;

    /** @return a short identifying name. */
    virtual std::string name() const = 0;
};

/** Independent uniform sampling (plain Monte-Carlo). */
class MonteCarloSampler : public Sampler
{
  public:
    UniformDesign design(std::size_t trials, std::size_t dims,
                         ar::util::Rng &rng) const override;
    std::string name() const override { return "monte-carlo"; }
};

/**
 * Latin-hypercube sampling: each dimension is divided into `trials`
 * equal strata; every stratum is hit exactly once, with a random
 * offset inside the stratum and an independent random permutation per
 * dimension.
 */
class LatinHypercubeSampler : public Sampler
{
  public:
    UniformDesign design(std::size_t trials, std::size_t dims,
                         ar::util::Rng &rng) const override;
    std::string name() const override { return "latin-hypercube"; }
};

/**
 * Counter-based streaming sampler: uniforms are drawn from fixed-size
 * granules of kGranule trials, granule g fed by the independent RNG
 * substream Rng::substream(master, g).  The value at (trial, dim)
 * therefore depends only on the master seed and the trial index --
 * never on block size, thread count, or how much of the design was
 * generated -- which is what lets mc::StreamEngine run 10^7-trial
 * propagations in O(block) memory.  design() consumes exactly one
 * nextU64() from the caller's rng (the master seed) so a streamed and
 * a materialized run advance the caller's stream identically.
 */
class CounterSampler : public Sampler
{
  public:
    /** Trials per RNG substream granule. */
    static constexpr std::size_t kGranule = 4096;

    UniformDesign design(std::size_t trials, std::size_t dims,
                         ar::util::Rng &rng) const override;
    bool streamable() const override { return true; }
    void fillBlock(std::uint64_t master, std::size_t t0,
                   UniformDesign &block) const override;
    std::string name() const override { return "counter"; }
};

/** Factory by name ("monte-carlo", "latin-hypercube", "counter"). */
std::unique_ptr<Sampler> makeSampler(const std::string &name);

} // namespace ar::mc

#endif // AR_MC_SAMPLER_HH
