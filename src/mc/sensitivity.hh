/**
 * @file
 * Variance-based global sensitivity analysis (Sobol indices) for
 * compiled models under uncertainty bindings.
 *
 * Figures 7-9 of the paper probe "which input uncertainty drives the
 * output" by manually toggling one type at a time; Sobol first-order
 * and total-effect indices automate exactly that question.  The
 * implementation uses the Saltelli pick-freeze scheme with the
 * Jansen estimators:
 *
 *   S_i  = (V - (1/2N) sum (f(B) - f(AB_i))^2) / V     (first order)
 *   ST_i = ((1/2N) sum (f(A) - f(AB_i))^2) / V         (total)
 *
 * where A and B are independent sample matrices and AB_i equals A
 * with column i replaced by B's.
 */

#ifndef AR_MC_SENSITIVITY_HH
#define AR_MC_SENSITIVITY_HH

#include <string>
#include <vector>

#include "mc/propagator.hh"

namespace ar::mc
{

/** Sensitivity indices for one uncertain input. */
struct SobolIndex
{
    std::string input;
    double first_order = 0.0; ///< S_i: variance explained alone.
    double total = 0.0;       ///< ST_i: including all interactions.
};

/** Full sensitivity analysis result. */
struct SensitivityResult
{
    std::vector<SobolIndex> indices; ///< One per uncertain input.
    double output_mean = 0.0;
    double output_variance = 0.0;
    std::size_t trials = 0;          ///< Requested N per matrix.

    /**
     * Fault accounting over the N * (k + 2) evaluations.  Outputs are
     * numbered 0 = f(A), 1 = f(B), 2 + i = f(AB_i); a trial is faulty
     * when any of its k + 2 evaluations is non-finite, and the policy
     * applies to the whole trial so the pick-freeze pairing stays
     * aligned.  effective_trials is the N the estimators used.
     */
    ar::util::FaultReport faults;

    /** @return the index entry for a named input (fatal if absent). */
    const SobolIndex &of(const std::string &input) const;
};

/** Sobol analysis settings. */
struct SensitivityConfig
{
    std::size_t trials = 4096;  ///< N; total evals = N * (k + 2).
    std::string sampler = "latin-hypercube";

    /**
     * Worker threads for the evaluation loop; 0 means hardware
     * concurrency.  Indices are bit-identical for any value.
     */
    std::size_t threads = 0;

    /** Handling of trials with non-finite evaluations. */
    ar::util::FaultPolicy fault_policy = ar::util::FaultPolicy::FailFast;

    /**
     * Cooperative cancellation / deadline token, polled at trial-block
     * boundaries of the pick-freeze sweep; a tripped token raises
     * ar::util::CancelledError within one block.  Null by default.
     */
    ar::util::CancelToken cancel{};

    /**
     * Evaluate the k + 2 pick-freeze variants through one fused
     * CompiledProgram instead of k + 2 scalar tape walks per trial
     * (subtrees not touching the swapped column are computed once
     * and shared).  Only honored by the ExprPtr overload, which can
     * build the variant forest; results are bit-identical either
     * way.
     */
    bool fused = true;

    /**
     * Stream the Jansen estimator sums instead of materializing the
     * k + 2 pick-freeze f-matrices: per-block partial sums are merged
     * in fixed block order (bit-identical for any thread count), so
     * memory drops from O(trials * k) to O(block * k) for the
     * evaluation sweep.  The streamed mean/variance use a
     * Welford/Chan accumulation rather than the materializing path's
     * two-pass sums, so indices agree to ~1e-12 relative tolerance,
     * not bitwise.  Incompatible with fault_policy saturate.
     */
    bool stream = false;
};

/**
 * Estimate Sobol indices of a compiled model's output with respect
 * to its uncertain inputs.
 *
 * @param fn Compiled responsive-variable expression.
 * @param in Bindings; every uncertain input bound to a distribution.
 * @param cfg Trial count and sampling plan.
 * @param rng Random stream.
 */
SensitivityResult sobolIndices(const ar::symbolic::CompiledExpr &fn,
                               const InputBindings &in,
                               const SensitivityConfig &cfg,
                               ar::util::Rng &rng);

/**
 * Estimate Sobol indices from the source expression.  When
 * cfg.fused is set (the default), the base model and every
 * pick-freeze variant (B-matrix columns suffix-renamed "name!B")
 * are compiled into one fused CompiledProgram so their shared trunk
 * is evaluated once per trial; otherwise this is exactly the
 * CompiledExpr overload.  Both paths are bit-identical for every
 * fault policy and thread count.
 */
SensitivityResult sobolIndices(const ar::symbolic::ExprPtr &expr,
                               const InputBindings &in,
                               const SensitivityConfig &cfg,
                               ar::util::Rng &rng);

} // namespace ar::mc

#endif // AR_MC_SENSITIVITY_HH
