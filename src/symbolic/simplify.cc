#include "symbolic/simplify.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.hh"

namespace ar::symbolic
{

namespace
{

/**
 * Split a term into (constant coefficient, symbolic rest), e.g.
 * 3*x*y -> (3, x*y) and x -> (1, x).
 */
std::pair<double, ExprPtr>
splitCoefficient(const ExprPtr &term)
{
    if (term->kind() != ExprKind::Mul)
        return {1.0, term};
    double coef = 1.0;
    std::vector<ExprPtr> rest;
    for (const auto &f : term->operands()) {
        if (f->isConstant())
            coef *= f->value();
        else
            rest.push_back(f);
    }
    return {coef, Expr::mul(std::move(rest))};
}

/**
 * Flatten already-simplified same-kind children into one list, in
 * canonical order.  The factories sort operands at construction, but
 * simplifying a child can change its sort position (e.g. Mul(0.1, 1)
 * collapses to the constant 0.1), so the list is re-sorted here.
 * Without this, the order constants are folded in -- and hence the
 * rounded result -- depends on how the input happened to be
 * associated, and algebraically-equal inputs simplify to trees with
 * different constants.
 */
std::vector<ExprPtr>
flattenKind(ExprKind kind, const std::vector<ExprPtr> &ops)
{
    std::vector<ExprPtr> flat;
    flat.reserve(ops.size());
    for (const auto &op : ops) {
        if (op->kind() == kind) {
            for (const auto &sub : op->operands())
                flat.push_back(sub);
        } else {
            flat.push_back(op);
        }
    }
    std::stable_sort(flat.begin(), flat.end(),
                     [](const ExprPtr &a, const ExprPtr &b) {
                         return Expr::compare(a, b) < 0;
                     });
    return flat;
}

ExprPtr
simplifyAdd(const std::vector<ExprPtr> &raw_ops)
{
    const auto ops = flattenKind(ExprKind::Add, raw_ops);
    double const_acc = 0.0;
    // Collect like terms: coefficient per distinct symbolic part.
    // With interned nodes, Expr::equal is (almost always) a pointer
    // check, so grouping is cheap even for wide sums.
    std::vector<std::pair<ExprPtr, double>> groups;
    for (const auto &op : ops) {
        if (op->isConstant()) {
            const_acc += op->value();
            continue;
        }
        auto [coef, rest] = splitCoefficient(op);
        bool merged = false;
        for (auto &g : groups) {
            if (Expr::equal(g.first, rest)) {
                g.second += coef;
                merged = true;
                break;
            }
        }
        if (!merged)
            groups.emplace_back(rest, coef);
    }
    std::vector<ExprPtr> terms;
    for (const auto &[rest, coef] : groups) {
        if (coef == 0.0)
            continue;
        if (coef == 1.0)
            terms.push_back(rest);
        else
            terms.push_back(Expr::mul(Expr::constant(coef), rest));
    }
    if (const_acc != 0.0 || terms.empty())
        terms.push_back(Expr::constant(const_acc));
    return Expr::add(std::move(terms));
}

ExprPtr
simplifyPow(ExprPtr base, ExprPtr exp)
{
    // The (x^a)^b collapse re-enters at the top (the merged exponent
    // may enable further rules), as a loop rather than recursion so
    // towers of powers cannot deepen the stack.
    while (true) {
        if (exp->isConstant(0.0))
            return Expr::constant(1.0);
        if (exp->isConstant(1.0))
            return base;
        if (base->isConstant(1.0))
            return Expr::constant(1.0);
        if (base->isConstant(0.0) && exp->isConstant() &&
            exp->value() > 0.0) {
            return Expr::constant(0.0);
        }
        if (base->isConstant() && exp->isConstant()) {
            return Expr::constant(
                std::pow(base->value(), exp->value()));
        }
        // (x^a)^b -> x^(a*b) for constant exponents (safe for
        // positive bases, which is the regime of all architectural
        // quantities).
        if (base->kind() == ExprKind::Pow && exp->isConstant() &&
            base->operands()[1]->isConstant()) {
            exp = Expr::constant(base->operands()[1]->value() *
                                 exp->value());
            base = base->operands()[0];
            continue;
        }
        return Expr::pow(std::move(base), std::move(exp));
    }
}

ExprPtr
simplifyMul(const std::vector<ExprPtr> &raw_ops)
{
    const auto ops = flattenKind(ExprKind::Mul, raw_ops);
    double const_acc = 1.0;
    // Merge repeated base factors into powers: x * x -> x^2, and
    // x^a * x^b -> x^(a+b) when a, b are constants.
    struct Entry
    {
        ExprPtr base;
        double const_exp = 0.0;
        std::vector<ExprPtr> sym_exps;
    };
    std::vector<Entry> entries;

    auto fold_factor = [&](const ExprPtr &base, const ExprPtr &exp) {
        for (auto &e : entries) {
            if (Expr::equal(e.base, base)) {
                if (exp->isConstant())
                    e.const_exp += exp->value();
                else
                    e.sym_exps.push_back(exp);
                return;
            }
        }
        Entry e;
        e.base = base;
        if (exp->isConstant())
            e.const_exp = exp->value();
        else
            e.sym_exps.push_back(exp);
        entries.push_back(std::move(e));
    };

    for (const auto &op : ops) {
        if (op->isConstant()) {
            const_acc *= op->value();
        } else if (op->kind() == ExprKind::Pow) {
            fold_factor(op->operands()[0], op->operands()[1]);
        } else {
            fold_factor(op, Expr::constant(1.0));
        }
    }
    if (const_acc == 0.0)
        return Expr::constant(0.0);

    std::vector<ExprPtr> rest;
    for (auto &e : entries) {
        std::vector<ExprPtr> exps = std::move(e.sym_exps);
        if (e.const_exp != 0.0 || exps.empty())
            exps.push_back(Expr::constant(e.const_exp));
        // The merged exponent and the rebuilt factor are themselves
        // simplified so x^a * x^a becomes x^(2*a) in one pass
        // (simplify stays idempotent).
        const ExprPtr total_exp = simplifyAdd(exps);
        if (total_exp->isConstant(0.0))
            continue;
        const ExprPtr factor = simplifyPow(e.base, total_exp);
        if (factor->isConstant())
            const_acc *= factor->value();
        else
            rest.push_back(factor);
    }
    if (const_acc != 1.0 || rest.empty())
        rest.push_back(Expr::constant(const_acc));
    return Expr::mul(std::move(rest));
}

ExprPtr
simplifyExtremum(ExprKind kind, std::vector<ExprPtr> raw_ops)
{
    auto ops = flattenKind(kind, raw_ops);
    // Fold all constants into a single representative.
    bool has_const = false;
    double folded = 0.0;
    std::vector<ExprPtr> rest;
    for (auto &op : ops) {
        if (op->isConstant()) {
            if (!has_const) {
                folded = op->value();
                has_const = true;
            } else {
                folded = kind == ExprKind::Max
                             ? std::max(folded, op->value())
                             : std::min(folded, op->value());
            }
        } else {
            rest.push_back(std::move(op));
        }
    }
    if (has_const)
        rest.push_back(Expr::constant(folded));
    return kind == ExprKind::Max ? Expr::max(std::move(rest))
                                 : Expr::min(std::move(rest));
}

ExprPtr
simplifyFunc(const std::string &name, const ExprPtr &arg)
{
    if (arg->isConstant()) {
        const double v = arg->value();
        if (name == "log")
            return Expr::constant(std::log(v));
        if (name == "exp")
            return Expr::constant(std::exp(v));
        if (name == "gtz")
            return Expr::constant(v > 0.0 ? 1.0 : 0.0);
    }
    return Expr::func(name, arg);
}

/** Canonicalize one node whose children are already simplified. */
ExprPtr
simplifyNode(const Expr &e, std::vector<ExprPtr> ops)
{
    switch (e.kind()) {
      case ExprKind::Add:
        return simplifyAdd(ops);
      case ExprKind::Mul:
        return simplifyMul(ops);
      case ExprKind::Pow:
        return simplifyPow(ops[0], ops[1]);
      case ExprKind::Max:
      case ExprKind::Min:
        return simplifyExtremum(e.kind(), std::move(ops));
      case ExprKind::Func:
        return simplifyFunc(e.name(), ops[0]);
      default:
        ar::util::panic("simplify: unhandled kind");
    }
}

} // namespace

ExprPtr
simplify(const ExprPtr &e)
{
    if (!e)
        ar::util::panic("simplify: null expression");

    // Fast path: the node is a known fixpoint (atoms, or anything a
    // previous simplify() produced).  Because canonical form is
    // context-free, the flag is valid wherever the node appears.
    if (e->isSimplified() || e->isConstant() || e->isSymbol()) {
        e->markSimplified();
        return e;
    }

    // Explicit post-order worklist over the DAG with a per-call
    // memo, so a subexpression shared n ways is canonicalized once,
    // and a 10k-deep chain does not recurse 10k frames.  Stack
    // entries point into the operand vectors of live ancestors
    // (rooted at e), so the pointees cannot go away mid-walk.
    std::unordered_map<const Expr *, ExprPtr> memo;
    const auto lookup = [&memo](const ExprPtr &x) -> const ExprPtr * {
        if (x->isSimplified() || x->isConstant() || x->isSymbol())
            return &x;
        const auto it = memo.find(x.get());
        return it == memo.end() ? nullptr : &it->second;
    };

    std::vector<const ExprPtr *> stack{&e};
    while (!stack.empty()) {
        const ExprPtr &cur = *stack.back();
        if (lookup(cur)) {
            stack.pop_back();
            continue;
        }
        bool ready = true;
        for (const auto &op : cur->operands()) {
            if (!lookup(op)) {
                stack.push_back(&op);
                ready = false;
            }
        }
        if (!ready)
            continue;
        std::vector<ExprPtr> ops;
        ops.reserve(cur->operands().size());
        for (const auto &op : cur->operands())
            ops.push_back(*lookup(op));
        ExprPtr s = simplifyNode(*cur, std::move(ops));
        s->markSimplified();
        memo.emplace(cur.get(), std::move(s));
        stack.pop_back();
    }
    return memo.at(e.get());
}

double
evalConstant(const ExprPtr &e)
{
    const ExprPtr s = simplify(e);
    if (!s->isConstant()) {
        ar::util::fatal("evalConstant: expression is not closed; free "
                        "symbols remain");
    }
    return s->value();
}

} // namespace ar::symbolic
