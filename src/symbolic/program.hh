/**
 * @file
 * Multi-output tape compilation.  Where CompiledExpr flattens one
 * expression into a stack tape, CompiledProgram compiles a whole
 * forest of resolved outputs at once into a register tape with
 * hash-consed common-subexpression elimination, constant folding,
 * algebraic strength reduction, and dead-op elimination -- so the
 * Hill-Marty trunk shared by every output (or every Sobol pick/freeze
 * variant) is computed once per trial instead of once per output.
 *
 * The optimizer only applies rewrites that are bit-exact on this
 * platform's IEEE-754 doubles (see DESIGN.md section 5.3), so program
 * results are bit-identical to evaluating each output through its own
 * CompiledExpr -- the property the fault-containment and determinism
 * guarantees of the Monte-Carlo engines are built on.
 */

#ifndef AR_SYMBOLIC_PROGRAM_HH
#define AR_SYMBOLIC_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "symbolic/compile.hh"
#include "symbolic/expr.hh"
#include "symbolic/workspace.hh"

namespace ar::symbolic
{

/** Compile-time effect of the optimizer (for tests and reports). */
struct ProgramStats
{
    std::size_t naive_ops = 0;   ///< Sum of per-output CompiledExpr tapes.
    std::size_t program_ops = 0; ///< Ops in the fused, optimized tape.
    std::size_t registers = 0;   ///< Scratch rows after linear scan.
};

/**
 * A forest of expressions compiled into one optimized register tape.
 *
 * Argument order is the sorted union of the outputs' free symbols.
 * Evaluation semantics (operand fold order, std function choice) are
 * exactly CompiledExpr's, so for every output, every argument vector
 * and every trial-block decomposition the results match the
 * per-output CompiledExpr path to the last bit.
 */
class CompiledProgram
{
  public:
    /** Compile @p outputs (at least one, all non-null). */
    explicit CompiledProgram(std::vector<ExprPtr> outputs);

    ~CompiledProgram();
    CompiledProgram(CompiledProgram &&) noexcept;
    CompiledProgram &operator=(CompiledProgram &&) noexcept;
    CompiledProgram(const CompiledProgram &) = delete;
    CompiledProgram &operator=(const CompiledProgram &) = delete;

    /**
     * Constant-slot tape patch.  When @p new_outputs differ from the
     * current sources only in the values of constant leaves, the edit
     * is applied by overwriting the affected Const slots in place --
     * no rebuild, no register movement, and the patched tape is
     * bit-identical to compiling @p new_outputs from scratch.
     *
     * The patch is refused (returns false, program untouched) when
     * the edit is structural, when an old/new constant participates
     * in a value-sensitive rewrite (additive zero, multiplicative
     * one, literal-exponent strength reduction) so that a fresh
     * compile would produce a different tape shape, when the edit
     * would newly enable compile-time folding, or when a changed
     * constant was folded out of the tape entirely.  Callers fall
     * back to recompile() in that case.
     */
    bool tryPatch(const std::vector<ExprPtr> &new_outputs);

    /**
     * Dirty-region recompile.  Rebuilds the tape for @p new_outputs
     * while reusing the persistent hash-consed builder DAG: subtrees
     * pointer-identical to previously compiled expressions are
     * recognised in O(1) and never re-lowered, so the cost of the
     * rebuild is proportional to the edited cone, not the forest.
     * Linearization and register allocation depend only on program
     * structure, so the result is bit-identical to a fresh compile.
     *
     * @return the number of freshly interned DAG nodes (the dirty
     *         cone; 0 when the new forest reuses everything).
     */
    std::size_t recompile(std::vector<ExprPtr> new_outputs);

    /** @return argument names in positional order (sorted union). */
    const std::vector<std::string> &argNames() const { return args_; }

    /** @return index of a named argument; fatal when absent. */
    std::size_t argIndex(const std::string &name) const;

    /** @return number of compiled outputs. */
    std::size_t numOutputs() const { return root_regs_.size(); }

    /** @return ops in the optimized tape (diagnostics/tests). */
    std::size_t tapeLength() const { return ops_.size(); }

    /** @return optimizer statistics. */
    const ProgramStats &stats() const { return stats_; }

    /** @return human-readable label of tape op @p i. */
    const std::string &opLabel(std::size_t i) const;

    /** @return the source expression of output @p o. */
    const ExprPtr &source(std::size_t o) const;

    /**
     * Evaluate one trial.
     *
     * @param args One value per argName(), in order.
     * @param out Receives numOutputs() results.
     */
    void eval(std::span<const double> args, std::span<double> out) const;

    /** eval() drawing scratch from an explicit workspace. */
    void eval(std::span<const double> args, std::span<double> out,
              EvalWorkspace &ws) const;

    /**
     * Evaluate a contiguous block of trials in one tape pass (SoA
     * layout, mirroring CompiledExpr::evalBatch).  Column arguments
     * are consumed in place (no copy into scratch) and each output's
     * root writes straight into its destination column.  Each tape
     * op dispatches to one ar::simd kernel call; at Level::Scalar
     * results are bit-identical to eval() per trial, at vector
     * levels they follow the ULP policy of DESIGN.md section 5.6.
     *
     * @param args One BatchArg per argName(), in order; column args
     *        must hold at least @p n values.
     * @param n Number of trials in the block.
     * @param out One destination column of @p n doubles per output.
     */
    void evalBatch(std::span<const BatchArg> args, std::size_t n,
                   std::span<double *const> out) const;

    /** evalBatch() drawing scratch from an explicit workspace. */
    void evalBatch(std::span<const BatchArg> args, std::size_t n,
                   std::span<double *const> out,
                   EvalWorkspace &ws) const;

    /**
     * Diagnose output @p o for one trial: delegates to that output's
     * own CompiledExpr tape so fault attribution (first faulting op,
     * op label, tape index) is identical to the unfused path.
     *
     * @param args One value per argName() of the *program*; the
     *        subset the output uses is forwarded automatically.
     * @param fault Receives the first fault (reset on entry).
     * @return the output's value (possibly non-finite).
     */
    double evalDiagnosed(std::size_t o, std::span<const double> args,
                         EvalFault &fault) const;

    /** @return the per-output diagnostic tape (labels, op order). */
    const CompiledExpr &diagTape(std::size_t o) const;

  private:
    enum class OpCode : std::uint8_t
    {
        Const, ///< dst = value
        Arg,   ///< dst = args[first]
        Add,   ///< dst = fold(+) over operands, last operand first
        Mul,   ///< dst = fold(*) over operands, last operand first
        Pow,     ///< dst = pow(operand0, operand1)
        Recip,   ///< dst = 1.0 / operand0  (strength-reduced x^-1)
        PowHalf, ///< dst = pow(operand0, 0.5)  (strength-reduced x^0.5)
        Max,   ///< dst = fold(max) over operands, last operand first
        Min,   ///< dst = fold(min) over operands, last operand first
        Log,
        Exp,
        Gtz,
    };

    struct Op
    {
        OpCode code;
        std::uint32_t dst = 0;   ///< destination register
        std::uint32_t first = 0; ///< operand list start / arg index
        std::uint32_t n = 0;     ///< operand count
        double value = 0.0;      ///< constant payload
    };

    std::vector<Op> ops_;
    std::vector<std::uint32_t> operand_regs_; ///< flattened operands
    std::vector<std::string> labels_;
    std::vector<std::string> args_;
    std::vector<ExprPtr> sources_;
    std::size_t num_regs_ = 0;

    std::vector<std::uint32_t> root_regs_; ///< per output
    /// Roots whose op writes its destination column directly.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> root_direct_;
    /// Roots copied out in an epilogue (shared or argument roots).
    std::vector<std::pair<std::uint32_t, std::uint32_t>> root_copy_;
    /// (register, argument index) of every Arg op, for column aliasing.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> arg_regs_;

    ProgramStats stats_;

    /// Per-output diagnostic tapes + program-arg index per tape arg.
    std::vector<CompiledExpr> diag_;
    std::vector<std::vector<std::uint32_t>> diag_args_;

    /// Persistent hash-consed builder DAG reused across recompiles.
    struct BuildState;
    std::unique_ptr<BuildState> state_;

    void initArgs();
    void rebuildDiag(const std::vector<ExprPtr> *old_sources);
    std::size_t compile();
};

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_PROGRAM_HH
