/**
 * @file
 * Symbolic differentiation.  Primarily used by the equation solver to
 * recognize and solve equations that are linear in the target
 * variable; also useful for sensitivity analysis of closed-form
 * architecture models.
 */

#ifndef AR_SYMBOLIC_DIFF_HH
#define AR_SYMBOLIC_DIFF_HH

#include <optional>
#include <string>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/**
 * Differentiate an expression with respect to a symbol.
 *
 * @param e Expression to differentiate.
 * @param sym Symbol name.
 * @return the simplified derivative, or std::nullopt when the
 *         expression is not differentiable in closed form (contains
 *         max/min/gtz of the symbol).
 */
std::optional<ExprPtr> diff(const ExprPtr &e, const std::string &sym);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_DIFF_HH
