#include "symbolic/diff.hh"

#include <unordered_map>

#include "symbolic/simplify.hh"
#include "util/logging.hh"

namespace ar::symbolic
{

namespace
{

/**
 * Per-call derivative memo, keyed on node identity: a subexpression
 * shared n ways is differentiated once.  An empty optional in the
 * memo records "not differentiable" so failing subtrees are also
 * visited only once.
 */
using DiffMemo =
    std::unordered_map<const Expr *, std::optional<ExprPtr>>;

std::optional<ExprPtr>
diffImpl(const ExprPtr &e, const std::string &sym, DiffMemo &memo)
{
    // The memoized free-symbol set answers the "constant w.r.t. sym"
    // case -- by far the most common in wide products -- without any
    // walk or allocation.
    if (!e->containsSymbol(sym))
        return Expr::constant(0.0);
    if (const auto it = memo.find(e.get()); it != memo.end())
        return it->second;

    const auto result = [&]() -> std::optional<ExprPtr> {
        switch (e->kind()) {
          case ExprKind::Symbol:
            return Expr::constant(1.0);
          case ExprKind::Add:
            {
                std::vector<ExprPtr> terms;
                for (const auto &op : e->operands()) {
                    auto d = diffImpl(op, sym, memo);
                    if (!d)
                        return std::nullopt;
                    terms.push_back(*d);
                }
                return Expr::add(std::move(terms));
            }
          case ExprKind::Mul:
            {
                // n-ary product rule:
                // sum_i d(op_i) * prod_{j != i} op_j.
                const auto &ops = e->operands();
                std::vector<ExprPtr> terms;
                for (std::size_t i = 0; i < ops.size(); ++i) {
                    if (!ops[i]->containsSymbol(sym))
                        continue;
                    auto d = diffImpl(ops[i], sym, memo);
                    if (!d)
                        return std::nullopt;
                    std::vector<ExprPtr> factors{*d};
                    for (std::size_t j = 0; j < ops.size(); ++j) {
                        if (j != i)
                            factors.push_back(ops[j]);
                    }
                    terms.push_back(Expr::mul(std::move(factors)));
                }
                return Expr::add(std::move(terms));
            }
          case ExprKind::Pow:
            {
                const ExprPtr &base = e->operands()[0];
                const ExprPtr &exp = e->operands()[1];
                const bool base_has = base->containsSymbol(sym);
                const bool exp_has = exp->containsSymbol(sym);
                if (base_has && !exp_has) {
                    // d(b^e) = e * b^(e-1) * db.
                    auto db = diffImpl(base, sym, memo);
                    if (!db)
                        return std::nullopt;
                    return Expr::mul(
                        {exp,
                         Expr::pow(base, Expr::sub(
                                             exp, Expr::constant(1.0))),
                         *db});
                }
                if (!base_has && exp_has) {
                    // d(b^e) = b^e * log(b) * de.
                    auto de = diffImpl(exp, sym, memo);
                    if (!de)
                        return std::nullopt;
                    return Expr::mul(
                        {e, Expr::func("log", base), *de});
                }
                // Both vary: b^e * (de*log(b) + e*db/b).
                auto db = diffImpl(base, sym, memo);
                auto de = diffImpl(exp, sym, memo);
                if (!db || !de)
                    return std::nullopt;
                return Expr::mul(
                    {e,
                     Expr::add(Expr::mul(*de, Expr::func("log", base)),
                               Expr::mul(exp, Expr::div(*db, base)))});
            }
          case ExprKind::Func:
            {
                const std::string &fn = e->name();
                const ExprPtr &arg = e->operands()[0];
                auto da = diffImpl(arg, sym, memo);
                if (!da)
                    return std::nullopt;
                if (fn == "log")
                    return Expr::mul(
                        *da, Expr::div(Expr::constant(1.0), arg));
                if (fn == "exp")
                    return Expr::mul(*da, e);
                return std::nullopt; // gtz: not differentiable
            }
          case ExprKind::Max:
          case ExprKind::Min:
            return std::nullopt;
          default:
            ar::util::panic("diff: unhandled expression kind");
        }
    }();
    memo.emplace(e.get(), result);
    return result;
}

} // namespace

std::optional<ExprPtr>
diff(const ExprPtr &e, const std::string &sym)
{
    if (!e)
        ar::util::panic("diff: null expression");
    DiffMemo memo;
    auto d = diffImpl(e, sym, memo);
    if (!d)
        return std::nullopt;
    return simplify(*d);
}

} // namespace ar::symbolic
