#include "symbolic/compile.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.hh"

namespace ar::symbolic
{

CompiledExpr::CompiledExpr(const ExprPtr &e)
{
    if (!e)
        ar::util::panic("CompiledExpr: null expression");
    const auto syms = e->freeSymbols();
    args_.assign(syms.begin(), syms.end()); // std::set is sorted
    emit(e);

    // Compute the maximum stack depth for the scratch buffer.
    std::size_t depth = 0;
    for (const auto &op : ops) {
        switch (op.code) {
          case OpCode::PushConst:
          case OpCode::PushArg:
            ++depth;
            break;
          case OpCode::Add:
          case OpCode::Mul:
          case OpCode::Max:
          case OpCode::Min:
            depth -= op.n - 1;
            break;
          case OpCode::Pow:
            --depth;
            break;
          default:
            break; // unary ops keep depth unchanged
        }
        max_stack = std::max(max_stack, depth);
    }
    if (depth != 1)
        ar::util::panic("CompiledExpr: unbalanced tape");
}

void
CompiledExpr::emit(const ExprPtr &e)
{
    switch (e->kind()) {
      case ExprKind::Constant:
        ops.push_back({OpCode::PushConst, 0, e->value()});
        return;
      case ExprKind::Symbol:
        {
            const auto it =
                std::lower_bound(args_.begin(), args_.end(), e->name());
            ops.push_back(
                {OpCode::PushArg,
                 static_cast<std::uint32_t>(it - args_.begin()), 0.0});
            return;
        }
      default:
        break;
    }
    for (const auto &op : e->operands())
        emit(op);
    const auto n = static_cast<std::uint32_t>(e->operands().size());
    switch (e->kind()) {
      case ExprKind::Add:
        ops.push_back({OpCode::Add, n, 0.0});
        return;
      case ExprKind::Mul:
        ops.push_back({OpCode::Mul, n, 0.0});
        return;
      case ExprKind::Pow:
        ops.push_back({OpCode::Pow, 2, 0.0});
        return;
      case ExprKind::Max:
        ops.push_back({OpCode::Max, n, 0.0});
        return;
      case ExprKind::Min:
        ops.push_back({OpCode::Min, n, 0.0});
        return;
      case ExprKind::Func:
        if (e->name() == "log")
            ops.push_back({OpCode::Log, 1, 0.0});
        else if (e->name() == "exp")
            ops.push_back({OpCode::Exp, 1, 0.0});
        else if (e->name() == "gtz")
            ops.push_back({OpCode::Gtz, 1, 0.0});
        else
            ar::util::panic("CompiledExpr: unknown function ",
                            e->name());
        return;
      default:
        ar::util::panic("CompiledExpr: unhandled expression kind");
    }
}

std::size_t
CompiledExpr::argIndex(const std::string &name) const
{
    const auto it = std::lower_bound(args_.begin(), args_.end(), name);
    if (it == args_.end() || *it != name)
        ar::util::fatal("CompiledExpr: no argument named '", name, "'");
    return static_cast<std::size_t>(it - args_.begin());
}

double
CompiledExpr::eval(std::span<const double> args) const
{
    if (args.size() != args_.size()) {
        ar::util::fatal("CompiledExpr::eval: expected ", args_.size(),
                        " arguments, got ", args.size());
    }
    thread_local std::vector<double> stack;
    stack.clear();
    stack.reserve(max_stack);

    for (const auto &op : ops) {
        switch (op.code) {
          case OpCode::PushConst:
            stack.push_back(op.value);
            break;
          case OpCode::PushArg:
            stack.push_back(args[op.n]);
            break;
          case OpCode::Add:
            {
                double acc = 0.0;
                for (std::uint32_t i = 0; i < op.n; ++i) {
                    acc += stack.back();
                    stack.pop_back();
                }
                stack.push_back(acc);
                break;
            }
          case OpCode::Mul:
            {
                double acc = 1.0;
                for (std::uint32_t i = 0; i < op.n; ++i) {
                    acc *= stack.back();
                    stack.pop_back();
                }
                stack.push_back(acc);
                break;
            }
          case OpCode::Pow:
            {
                const double exp = stack.back();
                stack.pop_back();
                const double base = stack.back();
                stack.back() = std::pow(base, exp);
                break;
            }
          case OpCode::Max:
            {
                double acc = stack.back();
                stack.pop_back();
                for (std::uint32_t i = 1; i < op.n; ++i) {
                    acc = std::max(acc, stack.back());
                    stack.pop_back();
                }
                stack.push_back(acc);
                break;
            }
          case OpCode::Min:
            {
                double acc = stack.back();
                stack.pop_back();
                for (std::uint32_t i = 1; i < op.n; ++i) {
                    acc = std::min(acc, stack.back());
                    stack.pop_back();
                }
                stack.push_back(acc);
                break;
            }
          case OpCode::Log:
            stack.back() = std::log(stack.back());
            break;
          case OpCode::Exp:
            stack.back() = std::exp(stack.back());
            break;
          case OpCode::Gtz:
            stack.back() = stack.back() > 0.0 ? 1.0 : 0.0;
            break;
        }
    }
    return stack.back();
}

} // namespace ar::symbolic
