#include "symbolic/compile.hh"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "obs/telemetry.hh"
#include "simd/dispatch.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ar::symbolic
{

namespace
{

/** Truncate a display label for reports. */
std::string
clipLabel(std::string s)
{
    constexpr std::size_t kMaxLabel = 48;
    if (s.size() > kMaxLabel) {
        s.resize(kMaxLabel - 3);
        s += "...";
    }
    return s;
}

// Printer precedence levels (Add=1, Mul=2, Pow=3, atoms=4), used to
// parenthesize label joins exactly like toString() does.
int
labelPrec(const Expr &e)
{
    switch (e.kind()) {
      case ExprKind::Add:
        return 1;
      case ExprKind::Mul:
        return 2;
      case ExprKind::Pow:
        return 3;
      default:
        return 4;
    }
}

} // namespace

CompiledExpr::CompiledExpr(const ExprPtr &e)
{
    if (!e)
        ar::util::panic("CompiledExpr: null expression");
    const auto &syms = e->freeSymbols(); // memoized, not rebuilt
    args_.assign(syms.begin(), syms.end()); // std::set is sorted
    emit(e);

    // Compute the maximum stack depth for the scratch buffer.
    std::size_t depth = 0;
    for (const auto &op : ops) {
        switch (op.code) {
          case OpCode::PushConst:
          case OpCode::PushArg:
            ++depth;
            break;
          case OpCode::Add:
          case OpCode::Mul:
          case OpCode::Max:
          case OpCode::Min:
            depth -= op.n - 1;
            break;
          case OpCode::Pow:
            --depth;
            break;
          default:
            break; // unary ops keep depth unchanged
        }
        max_stack = std::max(max_stack, depth);
    }
    if (depth != 1)
        ar::util::panic("CompiledExpr: unbalanced tape");
}

void
CompiledExpr::emit(const ExprPtr &root)
{
    // Each op carries a label of the subexpression it computes so
    // fault diagnostics can name the offending operation; labels are
    // built once at compile time and never touched on the hot path.
    //
    // Labels are assembled from the children's already-clipped labels
    // (memoized per node) rather than by rendering each subexpression
    // in full -- a full render per op is quadratic in expression
    // depth.  For any subexpression whose rendering fits the clip
    // limit the result is byte-identical to clipping toString(e); the
    // parenthesization rules below mirror the printer's.  Lookups
    // recurse only into nodes emission skipped (atoms, x^1), so the
    // recursion depth stays shallow.
    std::unordered_map<const Expr *, std::string> lmemo;
    const std::function<const std::string &(const ExprPtr &)>
        labelOf = [&](const ExprPtr &e) -> const std::string & {
        if (const auto it = lmemo.find(e.get()); it != lmemo.end())
            return it->second;
        const auto child = [&](const ExprPtr &op,
                               int parent_prec) -> std::string {
            const std::string &s = labelOf(op);
            if (labelPrec(*op) < parent_prec)
                return "(" + s + ")";
            return s;
        };
        std::string s;
        switch (e->kind()) {
          case ExprKind::Constant:
            s = e->value() < 0.0
                    ? "(" + ar::util::formatDouble(e->value()) + ")"
                    : ar::util::formatDouble(e->value());
            break;
          case ExprKind::Symbol:
            s = e->name();
            break;
          case ExprKind::Add:
          case ExprKind::Mul:
            {
                const bool add = e->kind() == ExprKind::Add;
                bool first = true;
                for (const auto &op : e->operands()) {
                    if (!first)
                        s += add ? " + " : " * ";
                    s += child(op, add ? 1 : 2);
                    first = false;
                }
                break;
            }
          case ExprKind::Pow:
            s = child(e->operands()[0], 4) + "^" +
                child(e->operands()[1], 4);
            break;
          case ExprKind::Max:
          case ExprKind::Min:
            {
                s = e->kind() == ExprKind::Max ? "max(" : "min(";
                bool first = true;
                for (const auto &op : e->operands()) {
                    if (!first)
                        s += ", ";
                    s += labelOf(op);
                    first = false;
                }
                s += ")";
                break;
            }
          case ExprKind::Func:
            s = e->name() + "(" + labelOf(e->operands()[0]) + ")";
            break;
          default:
            ar::util::panic("CompiledExpr: unhandled expression kind");
        }
        return lmemo.emplace(e.get(), clipLabel(std::move(s)))
            .first->second;
    };

    // The node's own op, pushed after its children have been emitted.
    const auto emitOp = [&](const ExprPtr &e) {
        const auto n =
            static_cast<std::uint32_t>(e->operands().size());
        switch (e->kind()) {
          case ExprKind::Add:
            ops.push_back({OpCode::Add, n, 0.0});
            break;
          case ExprKind::Mul:
            ops.push_back({OpCode::Mul, n, 0.0});
            break;
          case ExprKind::Pow:
            {
                // A literal exponent of exactly 2.0 / -1.0 / 0.5 can
                // only arrive here via the strength-reduced dispatch
                // below (which pushed just the base); every other Pow
                // went the generic two-child route.
                const ExprPtr &ex = e->operands()[1];
                if (ex->isConstant() &&
                    (ex->value() == 2.0 || ex->value() == -1.0 ||
                     ex->value() == 0.5)) {
                    ops.push_back({ex->value() == 2.0 ? OpCode::Sq
                                   : ex->value() == -1.0
                                       ? OpCode::Recip
                                       : OpCode::PowHalf,
                                   1, 0.0});
                } else {
                    ops.push_back({OpCode::Pow, 2, 0.0});
                }
                break;
            }
          case ExprKind::Max:
            ops.push_back({OpCode::Max, n, 0.0});
            break;
          case ExprKind::Min:
            ops.push_back({OpCode::Min, n, 0.0});
            break;
          case ExprKind::Func:
            if (e->name() == "log")
                ops.push_back({OpCode::Log, 1, 0.0});
            else if (e->name() == "exp")
                ops.push_back({OpCode::Exp, 1, 0.0});
            else if (e->name() == "gtz")
                ops.push_back({OpCode::Gtz, 1, 0.0});
            else
                ar::util::panic("CompiledExpr: unknown function ",
                                e->name());
            break;
          default:
            ar::util::panic("CompiledExpr: unhandled expression kind");
        }
        labels.push_back(labelOf(e));
    };

    // Explicit postorder worklist (children first, then the node's
    // own op) so deep chains cannot overflow the call stack.  The
    // emitted tape is identical to the recursive formulation's.
    struct Item
    {
        const ExprPtr *node;
        bool emit_op; ///< children done; emit the node's own op
    };
    std::vector<Item> stack{{&root, false}};
    while (!stack.empty()) {
        const auto [pe, emit_op] = stack.back();
        stack.pop_back();
        const ExprPtr &e = *pe;
        if (emit_op) {
            emitOp(e);
            continue;
        }
        switch (e->kind()) {
          case ExprKind::Constant:
            ops.push_back({OpCode::PushConst, 0, e->value()});
            labels.push_back(labelOf(e));
            continue;
          case ExprKind::Symbol:
            {
                const auto it = std::lower_bound(
                    args_.begin(), args_.end(), e->name());
                ops.push_back(
                    {OpCode::PushArg,
                     static_cast<std::uint32_t>(it - args_.begin()),
                     0.0});
                labels.push_back(e->name());
                continue;
            }
          default:
            break;
        }
        if (e->kind() == ExprKind::Pow &&
            e->operands()[1]->kind() == ExprKind::Constant) {
            // Literal-exponent strength reduction.  glibc's pow() is
            // not correctly rounded, so x*x and 1.0/x are NOT
            // bit-identical to pow(x, 2.0) and pow(x, -1.0) (roughly
            // 1 in 2400 and 1 in 600 random inputs differ by 1 ulp).
            // Lowering here, in the reference tape, keeps the whole
            // stack -- CompiledExpr, CompiledProgram, and their batch
            // kernels -- on one shared definition of these powers.
            // Only literal exponents are lowered: a computed exponent
            // that merely happens to equal 2.0 at runtime still goes
            // through pow().  x^0.5 (the canonical form of sqrt())
            // lowers to PowHalf, which keeps std::pow(x, 0.5)
            // semantics scalar-side but lets the vector backends use
            // hardware sqrt instead of a per-lane pow() call.
            const double ex = e->operands()[1]->value();
            if (ex == 1.0 || ex == 2.0 || ex == -1.0 || ex == 0.5) {
                if (ex != 1.0) // pow(x, 1) == x, bit for bit: no op
                    stack.push_back({pe, true});
                stack.push_back({&e->operands()[0], false});
                continue;
            }
        }
        stack.push_back({pe, true});
        const auto &kids = e->operands();
        for (std::size_t i = kids.size(); i-- > 0;)
            stack.push_back({&kids[i], false});
    }
}

std::size_t
CompiledExpr::argIndex(const std::string &name) const
{
    const auto it = std::lower_bound(args_.begin(), args_.end(), name);
    if (it == args_.end() || *it != name)
        ar::util::fatal("CompiledExpr: no argument named '", name, "'");
    return static_cast<std::size_t>(it - args_.begin());
}

double
CompiledExpr::eval(std::span<const double> args) const
{
    return eval(args, threadEvalWorkspace());
}

double
CompiledExpr::eval(std::span<const double> args,
                   EvalWorkspace &ws) const
{
    if (args.size() != args_.size()) {
        ar::util::fatal("CompiledExpr::eval: expected ", args_.size(),
                        " arguments, got ", args.size());
    }
    // Scratch windows nest LIFO, so evaluations triggered while an
    // outer evaluation is between blocks never alias its rows.
    double *sp = ws.acquire(max_stack);
    std::size_t top = 0;

    for (const auto &op : ops) {
        switch (op.code) {
          case OpCode::PushConst:
            sp[top++] = op.value;
            break;
          case OpCode::PushArg:
            sp[top++] = args[op.n];
            break;
          case OpCode::Add:
            {
                // Fold from the top of the stack downward; evalBatch
                // uses the same order so results are bit-identical.
                double acc = sp[top - 1];
                for (std::uint32_t i = 1; i < op.n; ++i)
                    acc += sp[top - 1 - i];
                top -= op.n;
                sp[top++] = acc;
                break;
            }
          case OpCode::Mul:
            {
                double acc = sp[top - 1];
                for (std::uint32_t i = 1; i < op.n; ++i)
                    acc *= sp[top - 1 - i];
                top -= op.n;
                sp[top++] = acc;
                break;
            }
          case OpCode::Pow:
            {
                const double exp = sp[--top];
                sp[top - 1] = std::pow(sp[top - 1], exp);
                break;
            }
          case OpCode::Sq:
            sp[top - 1] = sp[top - 1] * sp[top - 1];
            break;
          case OpCode::Recip:
            sp[top - 1] = 1.0 / sp[top - 1];
            break;
          case OpCode::PowHalf:
            sp[top - 1] = std::pow(sp[top - 1], 0.5);
            break;
          case OpCode::Max:
            {
                double acc = sp[top - 1];
                for (std::uint32_t i = 1; i < op.n; ++i)
                    acc = std::max(acc, sp[top - 1 - i]);
                top -= op.n;
                sp[top++] = acc;
                break;
            }
          case OpCode::Min:
            {
                double acc = sp[top - 1];
                for (std::uint32_t i = 1; i < op.n; ++i)
                    acc = std::min(acc, sp[top - 1 - i]);
                top -= op.n;
                sp[top++] = acc;
                break;
            }
          case OpCode::Log:
            sp[top - 1] = std::log(sp[top - 1]);
            break;
          case OpCode::Exp:
            sp[top - 1] = std::exp(sp[top - 1]);
            break;
          case OpCode::Gtz:
            sp[top - 1] = sp[top - 1] > 0.0 ? 1.0 : 0.0;
            break;
        }
    }
    const double result = sp[top - 1];
    ws.release(max_stack);
    return result;
}

const std::string &
CompiledExpr::opLabel(std::size_t i) const
{
    if (i >= labels.size())
        ar::util::panic("CompiledExpr::opLabel: index ", i,
                        " out of range");
    return labels[i];
}

double
CompiledExpr::evalDiagnosed(std::span<const double> args,
                            EvalFault &fault) const
{
    return evalDiagnosed(args, fault, threadEvalWorkspace());
}

double
CompiledExpr::evalDiagnosed(std::span<const double> args,
                            EvalFault &fault, EvalWorkspace &ws) const
{
    using ar::util::FaultKind;
    if (args.size() != args_.size()) {
        ar::util::fatal("CompiledExpr::evalDiagnosed: expected ",
                        args_.size(), " arguments, got ", args.size());
    }
    fault = EvalFault{};
    double *sp = ws.acquire(max_stack);
    std::size_t top = 0;

    const auto flag = [&](std::uint32_t i, FaultKind kind) {
        if (fault.faulted)
            return;
        fault.faulted = true;
        fault.kind = kind;
        fault.op_index = i;
        fault.op = labels[i];
    };

    for (std::uint32_t i = 0; i < ops.size(); ++i) {
        const auto &op = ops[i];
        switch (op.code) {
          case OpCode::PushConst:
            sp[top++] = op.value;
            break;
          case OpCode::PushArg:
            sp[top++] = args[op.n];
            break;
          case OpCode::Add:
            {
                double acc = sp[top - 1];
                for (std::uint32_t j = 1; j < op.n; ++j)
                    acc += sp[top - 1 - j];
                top -= op.n;
                sp[top++] = acc;
                break;
            }
          case OpCode::Mul:
            {
                double acc = sp[top - 1];
                for (std::uint32_t j = 1; j < op.n; ++j)
                    acc *= sp[top - 1 - j];
                top -= op.n;
                sp[top++] = acc;
                break;
            }
          case OpCode::Pow:
            {
                const double exp = sp[--top];
                const double base = sp[top - 1];
                if (base < 0.0 && exp != std::trunc(exp))
                    flag(i, FaultKind::PowDomain);
                else if (base == 0.0 && exp < 0.0)
                    flag(i, FaultKind::DivByZero);
                sp[top - 1] = std::pow(base, exp);
                break;
            }
          case OpCode::Sq:
            sp[top - 1] = sp[top - 1] * sp[top - 1];
            break;
          case OpCode::Recip:
            // Same precondition pow(0, -1) would have tripped.
            if (sp[top - 1] == 0.0)
                flag(i, FaultKind::DivByZero);
            sp[top - 1] = 1.0 / sp[top - 1];
            break;
          case OpCode::PowHalf:
            // Same precondition pow(x, 0.5) would have tripped: a
            // fractional exponent over any negative base.
            if (sp[top - 1] < 0.0)
                flag(i, FaultKind::PowDomain);
            sp[top - 1] = std::pow(sp[top - 1], 0.5);
            break;
          case OpCode::Max:
            {
                double acc = sp[top - 1];
                for (std::uint32_t j = 1; j < op.n; ++j)
                    acc = std::max(acc, sp[top - 1 - j]);
                top -= op.n;
                sp[top++] = acc;
                break;
            }
          case OpCode::Min:
            {
                double acc = sp[top - 1];
                for (std::uint32_t j = 1; j < op.n; ++j)
                    acc = std::min(acc, sp[top - 1 - j]);
                top -= op.n;
                sp[top++] = acc;
                break;
            }
          case OpCode::Log:
            if (std::isfinite(sp[top - 1]) && sp[top - 1] <= 0.0)
                flag(i, FaultKind::LogDomain);
            sp[top - 1] = std::log(sp[top - 1]);
            break;
          case OpCode::Exp:
            sp[top - 1] = std::exp(sp[top - 1]);
            break;
          case OpCode::Gtz:
            sp[top - 1] = sp[top - 1] > 0.0 ? 1.0 : 0.0;
            break;
        }
        if (!std::isfinite(sp[top - 1]))
            flag(i, ar::util::classifyNonFinite(sp[top - 1]));
    }
    const double result = sp[top - 1];
    ws.release(max_stack);
    return result;
}

void
CompiledExpr::evalBatch(std::span<const BatchArg> args, std::size_t n,
                        double *out) const
{
    evalBatch(args, n, out, threadEvalWorkspace());
}

void
CompiledExpr::evalBatch(std::span<const BatchArg> args, std::size_t n,
                        double *out, EvalWorkspace &ws) const
{
    if (args.size() != args_.size()) {
        ar::util::fatal("CompiledExpr::evalBatch: expected ",
                        args_.size(), " arguments, got ", args.size());
    }
    if (n == 0)
        return;
    // Every per-trial loop below is one ar::simd kernel call,
    // dispatched once per batch to the active SIMD level.  Kernels
    // are alias-safe for in-place operand rows (dst == a or b).
    const ar::simd::KernelTable &kt = ar::simd::kernels();
    if (obs::metricsEnabled())
        ar::simd::recordBatch(ops.size());
    // Stack of rows: row r lives at sp + r * n and holds one value
    // per trial of the block.  The workspace window is uninitialised;
    // every row is fully written by a push before it is read.
    double *sp = ws.acquire(max_stack * n);

    // Column tiles keep the live stack rows L1-resident (see the
    // matching comment in CompiledProgram::evalBatch); each tile
    // replays the full tape over its slice of the trial axis, which
    // is bit-exact because every kernel is elementwise.
    constexpr std::size_t kTileDoubles = 3072; // 24KB hot window
    std::size_t tile = n;
    if (max_stack * n > kTileDoubles)
        tile = std::max<std::size_t>(64, kTileDoubles / max_stack);

    for (std::size_t t0 = 0; t0 < n; t0 += tile) {
    const std::size_t tn = std::min(tile, n - t0);
    std::size_t top = 0;
    for (const auto &op : ops) {
        switch (op.code) {
          case OpCode::PushConst:
            {
                double *row = sp + top++ * n + t0;
                std::fill(row, row + tn, op.value);
                break;
            }
          case OpCode::PushArg:
            {
                double *row = sp + top++ * n + t0;
                const BatchArg &arg = args[op.n];
                if (arg.broadcast)
                    std::fill(row, row + tn, arg.values[0]);
                else
                    std::copy(arg.values + t0, arg.values + t0 + tn,
                              row);
                break;
            }
          case OpCode::Add:
            {
                // Same top-down fold as eval(): row j accumulates
                // row j+1 (the running value) plus itself.
                for (std::size_t j = top - 1; j-- > top - op.n;) {
                    const double *acc = sp + (j + 1) * n + t0;
                    double *row = sp + j * n + t0;
                    kt.add(acc, row, row, tn);
                }
                top -= op.n - 1;
                break;
            }
          case OpCode::Mul:
            {
                for (std::size_t j = top - 1; j-- > top - op.n;) {
                    const double *acc = sp + (j + 1) * n + t0;
                    double *row = sp + j * n + t0;
                    kt.mul(acc, row, row, tn);
                }
                top -= op.n - 1;
                break;
            }
          case OpCode::Pow:
            {
                const double *exp = sp + (top - 1) * n + t0;
                double *base = sp + (top - 2) * n + t0;
                kt.pow(base, exp, base, tn);
                --top;
                break;
            }
          case OpCode::Sq:
            kt.sq(sp + (top - 1) * n + t0,
                  sp + (top - 1) * n + t0, tn);
            break;
          case OpCode::Recip:
            kt.recip(sp + (top - 1) * n + t0,
                     sp + (top - 1) * n + t0, tn);
            break;
          case OpCode::PowHalf:
            kt.pow_half(sp + (top - 1) * n + t0,
                        sp + (top - 1) * n + t0, tn);
            break;
          case OpCode::Max:
            {
                for (std::size_t j = top - 1; j-- > top - op.n;) {
                    const double *acc = sp + (j + 1) * n + t0;
                    double *row = sp + j * n + t0;
                    kt.max(acc, row, row, tn);
                }
                top -= op.n - 1;
                break;
            }
          case OpCode::Min:
            {
                for (std::size_t j = top - 1; j-- > top - op.n;) {
                    const double *acc = sp + (j + 1) * n + t0;
                    double *row = sp + j * n + t0;
                    kt.min(acc, row, row, tn);
                }
                top -= op.n - 1;
                break;
            }
          case OpCode::Log:
            kt.log(sp + (top - 1) * n + t0,
                   sp + (top - 1) * n + t0, tn);
            break;
          case OpCode::Exp:
            kt.exp(sp + (top - 1) * n + t0,
                   sp + (top - 1) * n + t0, tn);
            break;
          case OpCode::Gtz:
            kt.gtz(sp + (top - 1) * n + t0,
                   sp + (top - 1) * n + t0, tn);
            break;
        }
    }
    }
    std::copy(sp, sp + n, out);
    ws.release(max_stack * n);
}

} // namespace ar::symbolic
