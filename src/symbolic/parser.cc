#include "symbolic/parser.hh"

#include <cctype>
#include <cstdlib>
#include <string>

#include "symbolic/structure.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

namespace ar::symbolic
{

namespace
{

/** Hand-written tokenizer + recursive-descent parser. */
class Parser
{
  public:
    /**
     * @param text The slice to parse.
     * @param line 1-based diagnostic line (0 = unknown).
     * @param full The full source line for the caret snippet (equal
     *        to @p text unless parsing a slice of a larger line).
     * @param col_offset Offset of @p text within @p full.
     */
    Parser(std::string_view text, std::size_t line,
           std::string_view full, std::size_t col_offset)
        : src(text), full_src(full), line_(line), col_offset(col_offset)
    {
    }

    ExprPtr
    parseFull()
    {
        ExprPtr e = expr();
        skipSpace();
        if (pos != src.size())
            fail("unexpected trailing input");
        return e;
    }

  private:
    [[noreturn]] void
    fail(const std::string &msg) const
    {
        ar::util::raiseParse("parse error: " + msg, line_,
                             col_offset + pos + 1,
                             std::string(full_src));
    }

    void
    skipSpace()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos]))) {
            ++pos;
        }
    }

    bool
    peek(char c)
    {
        skipSpace();
        return pos < src.size() && src[pos] == c;
    }

    bool
    accept(char c)
    {
        if (peek(c)) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!accept(c))
            fail(std::string("expected '") + c + "'");
    }

    ExprPtr
    expr()
    {
        ExprPtr lhs = term();
        for (;;) {
            if (accept('+'))
                lhs = Expr::add(lhs, term());
            else if (accept('-'))
                lhs = Expr::sub(lhs, term());
            else
                return lhs;
        }
    }

    ExprPtr
    term()
    {
        ExprPtr lhs = unary();
        for (;;) {
            if (accept('*'))
                lhs = Expr::mul(lhs, unary());
            else if (accept('/'))
                lhs = Expr::div(lhs, unary());
            else
                return lhs;
        }
    }

    ExprPtr
    unary()
    {
        if (accept('-'))
            return Expr::neg(unary());
        return power();
    }

    ExprPtr
    power()
    {
        ExprPtr base = primary();
        if (accept('^'))
            return Expr::pow(base, unary());
        return base;
    }

    ExprPtr
    primary()
    {
        skipSpace();
        if (pos >= src.size())
            fail("unexpected end of input");
        const char c = src[pos];
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.')
            return number();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
            return identifier();
        if (accept('(')) {
            ExprPtr e = expr();
            expect(')');
            return e;
        }
        fail("expected a number, name, or '('");
    }

    ExprPtr
    number()
    {
        const char *begin = src.data() + pos;
        char *end = nullptr;
        const double v = std::strtod(begin, &end);
        if (end == begin)
            fail("malformed number");
        pos += static_cast<std::size_t>(end - begin);
        return Expr::constant(v);
    }

    ExprPtr
    identifier()
    {
        const std::size_t start = pos;
        while (pos < src.size() &&
               (std::isalnum(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '_')) {
            ++pos;
        }
        std::string name(src.substr(start, pos - start));
        if (!peek('('))
            return Expr::symbol(name);

        expect('(');
        std::vector<ExprPtr> args;
        if (!peek(')')) {
            args.push_back(expr());
            while (accept(','))
                args.push_back(expr());
        }
        expect(')');

        // Function-level complaints point at the name, not at the
        // closing paren the cursor has already consumed.
        if (name == "sqrt" || name == "log" || name == "exp" ||
            name == "gtz") {
            if (args.size() != 1) {
                pos = start;
                fail(name + " takes exactly one argument");
            }
            if (name == "sqrt")
                return Expr::sqrt(args[0]);
            return Expr::func(name, args[0]);
        }
        if (name == "max" || name == "min") {
            if (args.empty()) {
                pos = start;
                fail(name + " needs at least one argument");
            }
            return name == "max" ? Expr::max(std::move(args))
                                 : Expr::min(std::move(args));
        }
        // Reliability structure functions (structure.hh lowerings).
        if (name == "series" || name == "parallel") {
            if (args.empty()) {
                pos = start;
                fail(name + " needs at least one argument");
            }
            return name == "series"
                       ? seriesStructure(std::move(args))
                       : parallelStructure(std::move(args));
        }
        if (name == "kofn") {
            if (args.size() < 2) {
                pos = start;
                fail("kofn needs a count and at least one element");
            }
            ExprPtr k = std::move(args.front());
            args.erase(args.begin());
            return kOfNStructure(std::move(k), std::move(args));
        }
        pos = start;
        fail("unknown function '" + name + "'");
    }

    std::string_view src;
    std::string_view full_src;
    std::size_t line_ = 0;
    std::size_t col_offset = 0;
    std::size_t pos = 0;
};

} // namespace

ExprPtr
parseExpr(std::string_view text, std::size_t line)
{
    return Parser(text, line, text, 0).parseFull();
}

Equation
parseEquation(std::string_view text, std::size_t line)
{
    const auto eq_pos = text.find('=');
    if (eq_pos == std::string_view::npos) {
        ar::util::raiseParse("parse error: equation is missing '='",
                             line, text.size() + 1, std::string(text));
    }
    const auto second = text.find('=', eq_pos + 1);
    if (second != std::string_view::npos) {
        ar::util::raiseParse("parse error: multiple '=' in equation",
                             line, second + 1, std::string(text));
    }
    Equation eq;
    eq.lhs = Parser(text.substr(0, eq_pos), line, text, 0).parseFull();
    eq.rhs = Parser(text.substr(eq_pos + 1), line, text, eq_pos + 1)
                 .parseFull();
    return eq;
}

} // namespace ar::symbolic
