#include "symbolic/system.hh"

#include "symbolic/parser.hh"
#include "symbolic/printer.hh"
#include "symbolic/simplify.hh"
#include "symbolic/solve.hh"
#include "symbolic/substitute.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

namespace ar::symbolic
{

void
EquationSystem::addEquation(const Equation &eq)
{
    memo.clear();
    memo_deps.clear();
    if (eq.lhs->isSymbol()) {
        const std::string &name = eq.lhs->name();
        if (defs.count(name)) {
            throw ar::util::ParseError({"variable '" + name +
                                            "' defined twice",
                                        0, 0, toString(eq)});
        }
        defs[name] = simplify(eq.rhs);
        return;
    }

    // General form: solve for the unique not-yet-defined symbol.
    std::set<std::string> syms = eq.lhs->freeSymbols();
    const auto rhs_syms = eq.rhs->freeSymbols();
    syms.insert(rhs_syms.begin(), rhs_syms.end());
    std::vector<std::string> candidates;
    for (const auto &s : syms) {
        if (!defs.count(s))
            candidates.push_back(s);
    }
    for (const auto &cand : candidates) {
        if (auto solved = solveFor(eq, cand)) {
            defs[cand] = *solved;
            return;
        }
    }
    throw ar::util::ParseError(
        {"cannot determine the variable defined by this equation", 0, 0,
         toString(eq)});
}

void
EquationSystem::addEquation(std::string_view text)
{
    addEquation(parseEquation(text));
}

void
EquationSystem::markUncertain(const std::string &name)
{
    memo.clear();
    memo_deps.clear();
    uncertain_.insert(name);
}

std::size_t
EquationSystem::replaceEquation(const Equation &eq)
{
    if (!eq.lhs->isSymbol()) {
        throw ar::util::ParseError(
            {"replaceEquation requires a bare symbol on the "
             "left-hand side",
             0, 0, toString(eq)});
    }
    const std::string &name = eq.lhs->name();
    const bool existed = defs.count(name) > 0;
    defs[name] = simplify(eq.rhs);

    if (!existed) {
        // A brand-new definition can turn what every memo entry
        // treated as an input leaf into an expandable variable, so
        // nothing memoized is trustworthy.
        const std::size_t n = memo.size();
        memo.clear();
        memo_deps.clear();
        return n;
    }

    // Dirty cone: the entry for the edited name itself plus every
    // entry whose expansion pulled it in (memo_deps is transitive).
    std::size_t invalidated = 0;
    for (auto it = memo.begin(); it != memo.end();) {
        const bool dirty =
            it->first == name || memo_deps[it->first].count(name) > 0;
        if (dirty) {
            memo_deps.erase(it->first);
            it = memo.erase(it);
            ++invalidated;
        } else {
            ++it;
        }
    }
    return invalidated;
}

std::size_t
EquationSystem::replaceEquation(std::string_view text)
{
    return replaceEquation(parseEquation(text));
}

bool
EquationSystem::defines(const std::string &name) const
{
    return defs.count(name) > 0;
}

ExprPtr
EquationSystem::definitionOf(const std::string &name) const
{
    auto it = defs.find(name);
    if (it == defs.end())
        ar::util::fatal("EquationSystem: no definition for '", name,
                        "'");
    return it->second;
}

std::vector<std::string>
EquationSystem::definedNames() const
{
    std::vector<std::string> out;
    out.reserve(defs.size());
    for (const auto &[name, expr] : defs)
        out.push_back(name);
    return out;
}

ExprPtr
EquationSystem::resolveImpl(const std::string &name,
                            std::set<std::string> &in_progress) const
{
    if (auto it = memo.find(name); it != memo.end())
        return it->second;
    auto def_it = defs.find(name);
    if (def_it == defs.end())
        ar::util::fatal("EquationSystem: no definition for '", name,
                        "'");
    if (in_progress.count(name)) {
        ar::util::fatal("EquationSystem: cyclic definition involving '",
                        name, "'");
    }
    in_progress.insert(name);

    Bindings bindings;
    std::set<std::string> deps;
    for (const auto &sym : def_it->second->freeSymbols()) {
        if (uncertain_.count(sym) || !defs.count(sym))
            continue; // leave uncertain vars and inputs as leaves
        bindings[sym] = resolveImpl(sym, in_progress);
        deps.insert(sym);
        const auto &sub = memo_deps[sym]; // filled by the recursion
        deps.insert(sub.begin(), sub.end());
    }
    ExprPtr resolved = bindings.empty()
        ? simplify(def_it->second)
        : substitute(def_it->second, bindings);

    in_progress.erase(name);
    memo[name] = resolved;
    memo_deps[name] = std::move(deps);
    return resolved;
}

ExprPtr
EquationSystem::resolve(const std::string &name) const
{
    std::set<std::string> in_progress;
    return resolveImpl(name, in_progress);
}

std::set<std::string>
EquationSystem::resolvedInputs(const std::string &name) const
{
    return resolve(name)->freeSymbols();
}

} // namespace ar::symbolic
