/**
 * @file
 * Immutable symbolic expression DAGs.
 *
 * This is the core of the "symbolic algebra" substrate that replaces
 * SymPy in the original Archrisk tool.  Expressions are built either
 * programmatically (operator overloads below) or by parsing equation
 * strings (parser.hh), then simplified, solved, substituted, and
 * finally compiled to flat evaluation tapes (compile.hh).
 *
 * Node kinds:
 *  - Constant: a double literal
 *  - Symbol: a named free variable
 *  - Add / Mul: n-ary, flattened by the factories
 *  - Pow: base ^ exponent (division and sqrt canonicalize to Pow)
 *  - Max / Min: n-ary extrema (Hill-Marty serial-core selection)
 *  - Func: unary named functions (log, exp, gtz)
 *
 * `gtz(x)` is the unit step (1 when x > 0 else 0) used to express
 * conditional structure such as "cores with at least one working
 * instance" (Eq. 6 of the paper).
 *
 * Every node is hash-consed through ExprPool (expr_pool.hh):
 * structurally identical expressions are the SAME heap object, so
 * equal() is a pointer check, shared subtrees are stored once, and
 * per-node metadata -- free-symbol set, depth, structural hash, the
 * simplifier's canonical-form flag -- is computed once per unique
 * node and memoized for the node's lifetime.  The only equal-but-
 * distinct pair the pool keeps is +0.0 / -0.0 (their bits must stay
 * distinguishable for bit-exact tape lowering); equal() handles that
 * one case through the structural comparator.
 */

#ifndef AR_SYMBOLIC_EXPR_HH
#define AR_SYMBOLIC_EXPR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace ar::symbolic
{

class Expr;
class ExprPool;

/** Shared handle to an immutable expression node. */
using ExprPtr = std::shared_ptr<const Expr>;

/** Discriminator for expression node kinds. */
enum class ExprKind
{
    Constant,
    Symbol,
    Add,
    Mul,
    Pow,
    Max,
    Min,
    Func,
};

/** A single immutable, interned node in an expression DAG. */
class Expr
{
  public:
    /** @return the node kind. */
    ExprKind kind() const { return kind_; }

    /** @return the literal value; valid only for Constant nodes. */
    double value() const;

    /** @return the symbol or function name. */
    const std::string &name() const;

    /** @return child expressions. */
    const std::vector<ExprPtr> &operands() const { return ops; }

    /** @return true for Constant nodes. */
    bool isConstant() const { return kind_ == ExprKind::Constant; }

    /** @return true for a Constant equal to v. */
    bool isConstant(double v) const;

    /** @return true for Symbol nodes. */
    bool isSymbol() const { return kind_ == ExprKind::Symbol; }

    /**
     * All distinct symbol names in the expression.  Memoized at
     * intern time; repeat queries return the same set object and
     * allocate nothing.  Nodes sharing the same symbol set share one
     * set object.
     */
    const std::set<std::string> &freeSymbols() const { return *free_; }

    /** @return true when the named symbol occurs in the expression. */
    bool
    containsSymbol(const std::string &sym) const
    {
        return free_->count(sym) > 0;
    }

    /**
     * Number of occurrences of the named symbol, counted over the
     * expression TREE (a subexpression referenced through n parents
     * contributes n times, exactly as the pre-interning trees did).
     */
    std::size_t countSymbol(const std::string &sym) const;

    /** @return unique id of this interned node (children < parents). */
    std::uint64_t id() const { return id_; }

    /** @return the structural hash the pool interned this node under. */
    std::size_t hash() const { return hash_; }

    /** @return longest root-to-leaf path length (leaves have depth 1). */
    std::size_t depth() const { return depth_; }

    /**
     * @return true when this node is a known fixpoint of simplify().
     * Maintained by simplify(); sticky for the node's lifetime
     * (canonical form is context-free and immutable).
     */
    bool
    isSimplified() const
    {
        return simplified_.load(std::memory_order_relaxed);
    }

    /** Record that simplify() returned this node unchanged. */
    void
    markSimplified() const
    {
        simplified_.store(true, std::memory_order_relaxed);
    }

    /**
     * Structural equality.  Interned nodes make this a pointer check
     * except for the deliberate +0.0 / -0.0 double-entry, which
     * falls through to compare().
     */
    static bool
    equal(const ExprPtr &a, const ExprPtr &b)
    {
        return a.get() == b.get() || compare(a, b) == 0;
    }

    /**
     * Deterministic structural ordering (used to canonicalize operand
     * order inside commutative nodes).  The order is exactly the
     * seed comparator's -- (kind, payload, arity, children
     * lexicographically) -- so canonical forms are unchanged; what
     * interning buys is that recursion prunes at the first shared
     * (pointer-identical) pair.
     *
     * @return negative / zero / positive like strcmp.
     */
    static int compare(const ExprPtr &a, const ExprPtr &b);

    // Factories -- the only way to create nodes.  They perform light
    // canonicalization (flattening, operand sorting); deep rewriting
    // lives in simplify().

    /** Literal constant. */
    static ExprPtr constant(double v);

    /** Named free variable. */
    static ExprPtr symbol(const std::string &name);

    /** n-ary sum; flattens nested Adds. */
    static ExprPtr add(std::vector<ExprPtr> terms);

    /** Binary convenience sum. */
    static ExprPtr add(ExprPtr a, ExprPtr b);

    /** a - b, canonicalized to a + (-1)*b. */
    static ExprPtr sub(ExprPtr a, ExprPtr b);

    /** n-ary product; flattens nested Muls. */
    static ExprPtr mul(std::vector<ExprPtr> factors);

    /** Binary convenience product. */
    static ExprPtr mul(ExprPtr a, ExprPtr b);

    /** a / b, canonicalized to a * b^-1. */
    static ExprPtr div(ExprPtr a, ExprPtr b);

    /** base ^ exponent. */
    static ExprPtr pow(ExprPtr base, ExprPtr exponent);

    /** sqrt(x), canonicalized to x^0.5. */
    static ExprPtr sqrt(ExprPtr x);

    /**
     * -x, canonicalized to (-1)*x.  A nonzero constant folds to the
     * negated constant directly (exact in IEEE-754), which makes
     * printing a fixpoint: "(-c)" parses back to the same Constant
     * node instead of a fresh Mul(-1, c).  Zeros keep the Mul form:
     * simplify() canonicalizes Mul(-1, 0) to +0.0, and folding here
     * to -0.0 would flip that sign bit.
     */
    static ExprPtr neg(ExprPtr x);

    /** n-ary maximum. */
    static ExprPtr max(std::vector<ExprPtr> xs);

    /** n-ary minimum. */
    static ExprPtr min(std::vector<ExprPtr> xs);

    /** Unary named function: log, exp, gtz. */
    static ExprPtr func(const std::string &name, ExprPtr arg);

  private:
    friend class ExprPool;

    Expr(ExprKind kind, double value, std::string name,
         std::vector<ExprPtr> ops);

    /** Intern through ExprPool::global(). */
    static ExprPtr make(ExprKind kind, double value, std::string name,
                        std::vector<ExprPtr> ops);

    ExprKind kind_;
    double value_;
    std::string name_;
    std::vector<ExprPtr> ops;

    // Interning metadata, written once by ExprPool before the node
    // is published and immutable afterwards (simplified_ excepted:
    // it flips false -> true at most once, under a relaxed atomic).
    std::uint64_t id_ = 0;
    std::size_t hash_ = 0;
    std::uint32_t depth_ = 1;
    std::shared_ptr<const std::set<std::string>> free_;
    mutable std::atomic<bool> simplified_{false};
};

/** An equation lhs = rhs. */
struct Equation
{
    ExprPtr lhs;
    ExprPtr rhs;
};

// Expression-building operators for a readable model-definition DSL.

ExprPtr operator+(const ExprPtr &a, const ExprPtr &b);
ExprPtr operator-(const ExprPtr &a, const ExprPtr &b);
ExprPtr operator*(const ExprPtr &a, const ExprPtr &b);
ExprPtr operator/(const ExprPtr &a, const ExprPtr &b);
ExprPtr operator+(const ExprPtr &a, double b);
ExprPtr operator-(const ExprPtr &a, double b);
ExprPtr operator*(const ExprPtr &a, double b);
ExprPtr operator/(const ExprPtr &a, double b);
ExprPtr operator+(double a, const ExprPtr &b);
ExprPtr operator-(double a, const ExprPtr &b);
ExprPtr operator*(double a, const ExprPtr &b);
ExprPtr operator/(double a, const ExprPtr &b);
ExprPtr operator-(const ExprPtr &a);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_EXPR_HH
