/**
 * @file
 * Immutable symbolic expression trees.
 *
 * This is the core of the "symbolic algebra" substrate that replaces
 * SymPy in the original Archrisk tool.  Expressions are built either
 * programmatically (operator overloads below) or by parsing equation
 * strings (parser.hh), then simplified, solved, substituted, and
 * finally compiled to flat evaluation tapes (compile.hh).
 *
 * Node kinds:
 *  - Constant: a double literal
 *  - Symbol: a named free variable
 *  - Add / Mul: n-ary, flattened by the factories
 *  - Pow: base ^ exponent (division and sqrt canonicalize to Pow)
 *  - Max / Min: n-ary extrema (Hill-Marty serial-core selection)
 *  - Func: unary named functions (log, exp, gtz)
 *
 * `gtz(x)` is the unit step (1 when x > 0 else 0) used to express
 * conditional structure such as "cores with at least one working
 * instance" (Eq. 6 of the paper).
 */

#ifndef AR_SYMBOLIC_EXPR_HH
#define AR_SYMBOLIC_EXPR_HH

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace ar::symbolic
{

class Expr;

/** Shared handle to an immutable expression node. */
using ExprPtr = std::shared_ptr<const Expr>;

/** Discriminator for expression node kinds. */
enum class ExprKind
{
    Constant,
    Symbol,
    Add,
    Mul,
    Pow,
    Max,
    Min,
    Func,
};

/** A single immutable node in an expression tree. */
class Expr
{
  public:
    /** @return the node kind. */
    ExprKind kind() const { return kind_; }

    /** @return the literal value; valid only for Constant nodes. */
    double value() const;

    /** @return the symbol or function name. */
    const std::string &name() const;

    /** @return child expressions. */
    const std::vector<ExprPtr> &operands() const { return ops; }

    /** @return true for Constant nodes. */
    bool isConstant() const { return kind_ == ExprKind::Constant; }

    /** @return true for a Constant equal to v. */
    bool isConstant(double v) const;

    /** @return true for Symbol nodes. */
    bool isSymbol() const { return kind_ == ExprKind::Symbol; }

    /** @return all distinct symbol names in the tree. */
    std::set<std::string> freeSymbols() const;

    /** @return number of occurrences of the named symbol. */
    std::size_t countSymbol(const std::string &sym) const;

    /** Structural equality. */
    static bool equal(const ExprPtr &a, const ExprPtr &b);

    /**
     * Deterministic structural ordering (used to canonicalize operand
     * order inside commutative nodes).
     *
     * @return negative / zero / positive like strcmp.
     */
    static int compare(const ExprPtr &a, const ExprPtr &b);

    // Factories -- the only way to create nodes.  They perform light
    // canonicalization (flattening, operand sorting); deep rewriting
    // lives in simplify().

    /** Literal constant. */
    static ExprPtr constant(double v);

    /** Named free variable. */
    static ExprPtr symbol(const std::string &name);

    /** n-ary sum; flattens nested Adds. */
    static ExprPtr add(std::vector<ExprPtr> terms);

    /** Binary convenience sum. */
    static ExprPtr add(ExprPtr a, ExprPtr b);

    /** a - b, canonicalized to a + (-1)*b. */
    static ExprPtr sub(ExprPtr a, ExprPtr b);

    /** n-ary product; flattens nested Muls. */
    static ExprPtr mul(std::vector<ExprPtr> factors);

    /** Binary convenience product. */
    static ExprPtr mul(ExprPtr a, ExprPtr b);

    /** a / b, canonicalized to a * b^-1. */
    static ExprPtr div(ExprPtr a, ExprPtr b);

    /** base ^ exponent. */
    static ExprPtr pow(ExprPtr base, ExprPtr exponent);

    /** sqrt(x), canonicalized to x^0.5. */
    static ExprPtr sqrt(ExprPtr x);

    /** -x, canonicalized to (-1)*x. */
    static ExprPtr neg(ExprPtr x);

    /** n-ary maximum. */
    static ExprPtr max(std::vector<ExprPtr> xs);

    /** n-ary minimum. */
    static ExprPtr min(std::vector<ExprPtr> xs);

    /** Unary named function: log, exp, gtz. */
    static ExprPtr func(const std::string &name, ExprPtr arg);

  private:
    Expr(ExprKind kind, double value, std::string name,
         std::vector<ExprPtr> ops);

    static ExprPtr make(ExprKind kind, double value, std::string name,
                        std::vector<ExprPtr> ops);

    ExprKind kind_;
    double value_;
    std::string name_;
    std::vector<ExprPtr> ops;
};

/** An equation lhs = rhs. */
struct Equation
{
    ExprPtr lhs;
    ExprPtr rhs;
};

// Expression-building operators for a readable model-definition DSL.

ExprPtr operator+(const ExprPtr &a, const ExprPtr &b);
ExprPtr operator-(const ExprPtr &a, const ExprPtr &b);
ExprPtr operator*(const ExprPtr &a, const ExprPtr &b);
ExprPtr operator/(const ExprPtr &a, const ExprPtr &b);
ExprPtr operator+(const ExprPtr &a, double b);
ExprPtr operator-(const ExprPtr &a, double b);
ExprPtr operator*(const ExprPtr &a, double b);
ExprPtr operator/(const ExprPtr &a, double b);
ExprPtr operator+(double a, const ExprPtr &b);
ExprPtr operator-(double a, const ExprPtr &b);
ExprPtr operator*(double a, const ExprPtr &b);
ExprPtr operator/(double a, const ExprPtr &b);
ExprPtr operator-(const ExprPtr &a);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_EXPR_HH
