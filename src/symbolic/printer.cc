#include "symbolic/printer.hh"

#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ar::symbolic
{

namespace
{

// Precedence levels: Add=1, Mul=2, unary-/Pow=3, atoms=4.
int
precedence(const ExprPtr &e)
{
    switch (e->kind()) {
      case ExprKind::Add:
        return 1;
      case ExprKind::Mul:
        return 2;
      case ExprKind::Pow:
        return 3;
      default:
        return 4;
    }
}

std::string render(const ExprPtr &e);

std::string
renderChild(const ExprPtr &child, int parent_prec)
{
    std::string s = render(child);
    if (precedence(child) < parent_prec)
        return "(" + s + ")";
    return s;
}

std::string
render(const ExprPtr &e)
{
    switch (e->kind()) {
      case ExprKind::Constant:
        {
            const double v = e->value();
            if (v < 0.0)
                return "(" + ar::util::formatDouble(v) + ")";
            return ar::util::formatDouble(v);
        }
      case ExprKind::Symbol:
        return e->name();
      case ExprKind::Add:
        {
            std::ostringstream oss;
            bool first = true;
            for (const auto &op : e->operands()) {
                if (!first)
                    oss << " + ";
                oss << renderChild(op, 1);
                first = false;
            }
            return oss.str();
        }
      case ExprKind::Mul:
        {
            std::ostringstream oss;
            bool first = true;
            for (const auto &op : e->operands()) {
                if (!first)
                    oss << " * ";
                oss << renderChild(op, 2);
                first = false;
            }
            return oss.str();
        }
      case ExprKind::Pow:
        return renderChild(e->operands()[0], 4) + "^" +
               renderChild(e->operands()[1], 4);
      case ExprKind::Max:
      case ExprKind::Min:
        {
            std::ostringstream oss;
            oss << (e->kind() == ExprKind::Max ? "max(" : "min(");
            bool first = true;
            for (const auto &op : e->operands()) {
                if (!first)
                    oss << ", ";
                oss << render(op);
                first = false;
            }
            oss << ")";
            return oss.str();
        }
      case ExprKind::Func:
        return e->name() + "(" + render(e->operands()[0]) + ")";
      default:
        ar::util::panic("toString: unhandled expression kind");
    }
}

} // namespace

std::string
toString(const ExprPtr &e)
{
    if (!e)
        ar::util::panic("toString: null expression");
    return render(e);
}

std::string
toString(const Equation &eq)
{
    return toString(eq.lhs) + " = " + toString(eq.rhs);
}

} // namespace ar::symbolic
