#include "symbolic/printer.hh"

#include <sstream>
#include <unordered_map>
#include <vector>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace ar::symbolic
{

namespace
{

// Precedence levels: Add=1, Mul=2, unary-/Pow=3, atoms=4.
int
precedence(const Expr &e)
{
    switch (e.kind()) {
      case ExprKind::Add:
        return 1;
      case ExprKind::Mul:
        return 2;
      case ExprKind::Pow:
        return 3;
      default:
        return 4;
    }
}

bool
isAtom(const Expr &e)
{
    return e.isConstant() || e.isSymbol();
}

std::string
renderAtom(const Expr &e)
{
    if (e.isConstant()) {
        const double v = e.value();
        if (v < 0.0)
            return "(" + ar::util::formatDouble(v) + ")";
        return ar::util::formatDouble(v);
    }
    return e.name(); // Symbol
}

/**
 * Join already-rendered children into this node's string, adding
 * parentheses where a child binds looser than its context.
 */
std::string
renderNode(const Expr &e,
           const std::unordered_map<const Expr *, std::string> &memo)
{
    const auto child = [&](const ExprPtr &op,
                           int parent_prec) -> std::string {
        const std::string &s = memo.at(op.get());
        if (precedence(*op) < parent_prec)
            return "(" + s + ")";
        return s;
    };

    switch (e.kind()) {
      case ExprKind::Add:
        {
            std::ostringstream oss;
            bool first = true;
            for (const auto &op : e.operands()) {
                if (!first)
                    oss << " + ";
                oss << child(op, 1);
                first = false;
            }
            return oss.str();
        }
      case ExprKind::Mul:
        {
            std::ostringstream oss;
            bool first = true;
            for (const auto &op : e.operands()) {
                if (!first)
                    oss << " * ";
                oss << child(op, 2);
                first = false;
            }
            return oss.str();
        }
      case ExprKind::Pow:
        return child(e.operands()[0], 4) + "^" +
               child(e.operands()[1], 4);
      case ExprKind::Max:
      case ExprKind::Min:
        {
            std::ostringstream oss;
            oss << (e.kind() == ExprKind::Max ? "max(" : "min(");
            bool first = true;
            for (const auto &op : e.operands()) {
                if (!first)
                    oss << ", ";
                oss << memo.at(op.get());
                first = false;
            }
            oss << ")";
            return oss.str();
        }
      case ExprKind::Func:
        return e.name() + "(" + memo.at(e.operands()[0].get()) + ")";
      default:
        ar::util::panic("toString: unhandled expression kind");
    }
}

/**
 * Iterative post-order render with a per-call memo keyed on node
 * identity: a shared subexpression is stringified once, and printing
 * a 10k-deep chain never recurses.
 */
std::string
render(const ExprPtr &root)
{
    if (isAtom(*root))
        return renderAtom(*root);

    std::unordered_map<const Expr *, std::string> memo;
    const auto done = [&](const ExprPtr &x) {
        if (!memo.count(x.get())) {
            if (!isAtom(*x))
                return false;
            memo.emplace(x.get(), renderAtom(*x));
        }
        return true;
    };

    std::vector<const ExprPtr *> stack{&root};
    while (!stack.empty()) {
        const ExprPtr &cur = *stack.back();
        if (memo.count(cur.get())) {
            stack.pop_back();
            continue;
        }
        bool ready = true;
        for (const auto &op : cur->operands()) {
            if (!done(op)) {
                stack.push_back(&op);
                ready = false;
            }
        }
        if (!ready)
            continue;
        memo.emplace(cur.get(), renderNode(*cur, memo));
        stack.pop_back();
    }
    return memo.at(root.get());
}

} // namespace

std::string
toString(const ExprPtr &e)
{
    if (!e)
        ar::util::panic("toString: null expression");
    return render(e);
}

std::string
toString(const Equation &eq)
{
    return toString(eq.lhs) + " = " + toString(eq.rhs);
}

} // namespace ar::symbolic
