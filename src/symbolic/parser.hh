/**
 * @file
 * Recursive-descent parser turning equation strings into expression
 * trees.  This is the "plain string-formatted equations" entry point
 * of the framework front-end (Figure 4, step 2 of the paper).
 *
 * Grammar:
 *   equation :=  expr '=' expr
 *   expr     :=  term (('+' | '-') term)*
 *   term     :=  unary (('*' | '/') unary)*
 *   unary    :=  '-' unary | power
 *   power    :=  primary ('^' unary)?          (right associative)
 *   primary  :=  number | ident ['(' expr (',' expr)* ')'] |
 *                '(' expr ')'
 *
 * Recognized functions: sqrt, log, exp, gtz (unary); max, min (n-ary).
 */

#ifndef AR_SYMBOLIC_PARSER_HH
#define AR_SYMBOLIC_PARSER_HH

#include <string_view>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/** Parse a single expression; fatal on syntax errors. */
ExprPtr parseExpr(std::string_view text);

/** Parse "lhs = rhs"; fatal when no '=' is present. */
Equation parseEquation(std::string_view text);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_PARSER_HH
