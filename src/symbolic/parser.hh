/**
 * @file
 * Recursive-descent parser turning equation strings into expression
 * trees.  This is the "plain string-formatted equations" entry point
 * of the framework front-end (Figure 4, step 2 of the paper).
 *
 * Grammar:
 *   equation :=  expr '=' expr
 *   expr     :=  term (('+' | '-') term)*
 *   term     :=  unary (('*' | '/') unary)*
 *   unary    :=  '-' unary | power
 *   power    :=  primary ('^' unary)?          (right associative)
 *   primary  :=  number | ident ['(' expr (',' expr)* ')'] |
 *                '(' expr ')'
 *
 * Recognized functions: sqrt, log, exp, gtz (unary); max, min (n-ary).
 */

#ifndef AR_SYMBOLIC_PARSER_HH
#define AR_SYMBOLIC_PARSER_HH

#include <cstddef>
#include <string_view>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/**
 * Parse a single expression.
 *
 * @param text The expression source (one line).
 * @param line 1-based source line for diagnostics (0 = unknown), used
 *        by callers parsing multi-line inputs (the spec loader).
 * @throws ar::util::ParseError on syntax errors, carrying the line,
 *         the 1-based column, and the offending source line.
 */
ExprPtr parseExpr(std::string_view text, std::size_t line = 0);

/**
 * Parse "lhs = rhs".
 *
 * @throws ar::util::ParseError when no '=' (or more than one) is
 *         present, or either side fails to parse; columns refer to
 *         @p text as a whole.
 */
Equation parseEquation(std::string_view text, std::size_t line = 0);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_PARSER_HH
