#include "symbolic/substitute.hh"

#include "symbolic/simplify.hh"
#include "util/logging.hh"

namespace ar::symbolic
{

namespace
{

ExprPtr
replace(const ExprPtr &e, const Bindings &bindings)
{
    switch (e->kind()) {
      case ExprKind::Constant:
        return e;
      case ExprKind::Symbol:
        {
            auto it = bindings.find(e->name());
            return it != bindings.end() ? it->second : e;
        }
      default:
        break;
    }
    std::vector<ExprPtr> ops;
    ops.reserve(e->operands().size());
    bool changed = false;
    for (const auto &op : e->operands()) {
        ExprPtr r = replace(op, bindings);
        changed = changed || r.get() != op.get();
        ops.push_back(std::move(r));
    }
    if (!changed)
        return e;
    switch (e->kind()) {
      case ExprKind::Add:
        return Expr::add(std::move(ops));
      case ExprKind::Mul:
        return Expr::mul(std::move(ops));
      case ExprKind::Pow:
        return Expr::pow(ops[0], ops[1]);
      case ExprKind::Max:
        return Expr::max(std::move(ops));
      case ExprKind::Min:
        return Expr::min(std::move(ops));
      case ExprKind::Func:
        return Expr::func(e->name(), ops[0]);
      default:
        ar::util::panic("substitute: unhandled expression kind");
    }
}

} // namespace

ExprPtr
substitute(const ExprPtr &e, const Bindings &bindings)
{
    if (!e)
        ar::util::panic("substitute: null expression");
    return simplify(replace(e, bindings));
}

ExprPtr
substitute(const ExprPtr &e, const std::map<std::string, double> &values)
{
    Bindings b;
    for (const auto &[name, v] : values)
        b[name] = Expr::constant(v);
    return substitute(e, b);
}

ExprPtr
renameSymbols(const ExprPtr &e,
              const std::map<std::string, std::string> &renames)
{
    if (!e)
        ar::util::panic("renameSymbols: null expression");
    Bindings b;
    for (const auto &[from, to] : renames)
        b[from] = Expr::symbol(to);
    // replace() rebuilds through the factories without simplifying;
    // a symbol-for-symbol swap cannot create foldable constants, so
    // the only structural effect is the factories re-sorting operand
    // lists under the new names.
    return replace(e, b);
}

} // namespace ar::symbolic
