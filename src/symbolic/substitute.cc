#include "symbolic/substitute.hh"

#include <unordered_map>

#include "symbolic/simplify.hh"
#include "util/logging.hh"

namespace ar::symbolic
{

namespace
{

/** @return true when any bound symbol occurs in @p e. */
bool
touches(const Expr &e, const Bindings &bindings)
{
    const auto &free = e.freeSymbols();
    if (free.size() <= bindings.size()) {
        for (const auto &s : free)
            if (bindings.count(s))
                return true;
    } else {
        for (const auto &[name, repl] : bindings)
            if (free.count(name))
                return true;
    }
    return false;
}

ExprPtr
rebuild(const Expr &e, std::vector<ExprPtr> ops)
{
    switch (e.kind()) {
      case ExprKind::Add:
        return Expr::add(std::move(ops));
      case ExprKind::Mul:
        return Expr::mul(std::move(ops));
      case ExprKind::Pow:
        return Expr::pow(ops[0], ops[1]);
      case ExprKind::Max:
        return Expr::max(std::move(ops));
      case ExprKind::Min:
        return Expr::min(std::move(ops));
      case ExprKind::Func:
        return Expr::func(e.name(), ops[0]);
      default:
        ar::util::panic("substitute: unhandled expression kind");
    }
}

ExprPtr
replace(const ExprPtr &root, const Bindings &bindings)
{
    if (!touches(*root, bindings))
        return root;
    if (root->isSymbol())
        return bindings.at(root->name());

    // DAG-aware rewrite: an explicit post-order worklist with a
    // per-call memo keyed on node identity.  Subtrees free of every
    // bound symbol (the memoized free-symbol set answers that in one
    // lookup) are returned as-is without being walked at all.
    std::unordered_map<const Expr *, ExprPtr> memo;
    const auto lookup =
        [&](const ExprPtr &x) -> const ExprPtr * {
        if (!touches(*x, bindings))
            return &x;
        if (x->isSymbol())
            return &bindings.at(x->name());
        const auto it = memo.find(x.get());
        return it == memo.end() ? nullptr : &it->second;
    };

    std::vector<const ExprPtr *> stack{&root};
    while (!stack.empty()) {
        const ExprPtr &cur = *stack.back();
        if (lookup(cur)) {
            stack.pop_back();
            continue;
        }
        bool ready = true;
        for (const auto &op : cur->operands()) {
            if (!lookup(op)) {
                stack.push_back(&op);
                ready = false;
            }
        }
        if (!ready)
            continue;
        std::vector<ExprPtr> ops;
        ops.reserve(cur->operands().size());
        for (const auto &op : cur->operands())
            ops.push_back(*lookup(op));
        memo.emplace(cur.get(), rebuild(*cur, std::move(ops)));
        stack.pop_back();
    }
    return memo.at(root.get());
}

} // namespace

ExprPtr
substitute(const ExprPtr &e, const Bindings &bindings)
{
    if (!e)
        ar::util::panic("substitute: null expression");
    return simplify(replace(e, bindings));
}

ExprPtr
substitute(const ExprPtr &e, const std::map<std::string, double> &values)
{
    Bindings b;
    for (const auto &[name, v] : values)
        b[name] = Expr::constant(v);
    return substitute(e, b);
}

ExprPtr
renameSymbols(const ExprPtr &e,
              const std::map<std::string, std::string> &renames)
{
    if (!e)
        ar::util::panic("renameSymbols: null expression");
    Bindings b;
    for (const auto &[from, to] : renames)
        b[from] = Expr::symbol(to);
    // replace() rebuilds through the factories without simplifying;
    // a symbol-for-symbol swap cannot create foldable constants, so
    // the only structural effect is the factories re-sorting operand
    // lists under the new names.
    return replace(e, b);
}

} // namespace ar::symbolic
