/**
 * @file
 * Single-variable equation solving by inverse-operation isolation.
 *
 * Covers the algebra needed for closed-form architecture models:
 * the target may sit under sums, products, powers with constant
 * exponents, exponents over constant bases, and log/exp.  Equations
 * where the target appears more than once, or under non-invertible
 * operators (max/min/gtz), are reported as unsolvable.
 */

#ifndef AR_SYMBOLIC_SOLVE_HH
#define AR_SYMBOLIC_SOLVE_HH

#include <optional>
#include <string>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/**
 * Solve an equation for a symbol.
 *
 * @param eq Equation containing exactly one occurrence of @p target.
 * @param target Symbol name to isolate.
 * @return the simplified right-hand side of "target = ...", or
 *         std::nullopt when the equation cannot be inverted.
 */
std::optional<ExprPtr> solveFor(const Equation &eq,
                                const std::string &target);

/**
 * Like solveFor() but fatal on failure; use when solvability is an
 * invariant of the caller.
 */
ExprPtr solveForOrDie(const Equation &eq, const std::string &target);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_SOLVE_HH
