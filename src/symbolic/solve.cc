#include "symbolic/solve.hh"

#include "symbolic/diff.hh"
#include "symbolic/printer.hh"
#include "symbolic/simplify.hh"
#include "symbolic/substitute.hh"
#include "util/diagnostics.hh"
#include "util/logging.hh"

namespace ar::symbolic
{

namespace
{

/**
 * Solve cur == other for @p target when cur is affine in the target:
 * cur = d * target + g0  =>  target = (other - g0) / d.
 * Affineness is established by symbolic differentiation: d must not
 * itself contain the target.
 */
std::optional<ExprPtr>
linearSolve(const ExprPtr &cur, const ExprPtr &other,
            const std::string &target)
{
    auto d = diff(cur, target);
    if (!d || (*d)->containsSymbol(target) || (*d)->isConstant(0.0))
        return std::nullopt;
    Bindings at_zero;
    at_zero[target] = Expr::constant(0.0);
    const ExprPtr g0 = substitute(cur, at_zero);
    return simplify(Expr::div(Expr::sub(other, g0), *d));
}

/**
 * Isolate the target inside cur, given cur == other, by inverting
 * operations while all occurrences stay confined to one operand;
 * fall back to a linear solve when they split or an operation is not
 * structurally invertible.  All occurrence tests are one lookup in
 * the node's memoized free-symbol set, so the walk down is linear in
 * the isolation path rather than quadratic in the tree.
 */
std::optional<ExprPtr>
isolate(ExprPtr cur, ExprPtr other, const std::string &target)
{
    while (true) {
        if (cur->isSymbol() && cur->name() == target)
            return simplify(other);

        switch (cur->kind()) {
          case ExprKind::Add:
          case ExprKind::Mul:
            {
                ExprPtr with;
                std::size_t holders = 0;
                std::vector<ExprPtr> rest;
                for (const auto &op : cur->operands()) {
                    if (op->containsSymbol(target)) {
                        ++holders;
                        with = op;
                    } else {
                        rest.push_back(op);
                    }
                }
                if (holders != 1)
                    return linearSolve(cur, other, target);
                if (cur->kind() == ExprKind::Add) {
                    other =
                        Expr::sub(other, Expr::add(std::move(rest)));
                } else {
                    other =
                        Expr::div(other, Expr::mul(std::move(rest)));
                }
                cur = with;
                break;
            }
          case ExprKind::Pow:
            {
                const ExprPtr &base = cur->operands()[0];
                const ExprPtr &exp = cur->operands()[1];
                const bool base_has = base->containsSymbol(target);
                const bool exp_has = exp->containsSymbol(target);
                if (base_has && exp_has)
                    return linearSolve(cur, other, target);
                if (base_has) {
                    // base^exp = other  =>  base = other^(1/exp).
                    other = Expr::pow(
                        other, Expr::div(Expr::constant(1.0), exp));
                    cur = base;
                } else {
                    // base^exp = other => exp = log(other)/log(base).
                    other = Expr::div(Expr::func("log", other),
                                      Expr::func("log", base));
                    cur = exp;
                }
                break;
            }
          case ExprKind::Func:
            {
                const std::string &fn = cur->name();
                if (fn == "log") {
                    other = Expr::func("exp", other);
                } else if (fn == "exp") {
                    other = Expr::func("log", other);
                } else {
                    return std::nullopt; // gtz is not invertible
                }
                cur = cur->operands()[0];
                break;
            }
          case ExprKind::Max:
          case ExprKind::Min:
            return std::nullopt;
          default:
            return std::nullopt;
        }
    }
}

} // namespace

std::optional<ExprPtr>
solveFor(const Equation &eq, const std::string &target)
{
    if (!eq.lhs || !eq.rhs)
        ar::util::panic("solveFor: null equation side");
    const bool in_l = eq.lhs->containsSymbol(target);
    const bool in_r = eq.rhs->containsSymbol(target);
    if (!in_l && !in_r)
        return std::nullopt;
    if (in_l && in_r) {
        // Occurrences on both sides: move everything to one side and
        // attempt a linear solve of (lhs - rhs) == 0.
        return linearSolve(Expr::sub(eq.lhs, eq.rhs),
                           Expr::constant(0.0), target);
    }
    if (in_l)
        return isolate(eq.lhs, eq.rhs, target);
    return isolate(eq.rhs, eq.lhs, target);
}

ExprPtr
solveForOrDie(const Equation &eq, const std::string &target)
{
    auto res = solveFor(eq, target);
    if (!res) {
        throw ar::util::ParseError(
            {"cannot isolate '" + target + "' in this equation", 0, 0,
             toString(eq)});
    }
    return *res;
}

} // namespace ar::symbolic
