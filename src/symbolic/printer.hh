/**
 * @file
 * Infix pretty-printing of expressions and equations.
 */

#ifndef AR_SYMBOLIC_PRINTER_HH
#define AR_SYMBOLIC_PRINTER_HH

#include <string>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/** Render an expression as an infix string (parses back to itself). */
std::string toString(const ExprPtr &e);

/** Render an equation as "lhs = rhs". */
std::string toString(const Equation &eq);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_PRINTER_HH
