/**
 * @file
 * Systems of mutually dependent closed-form equations and the partial
 * symbolic solving step of the framework front-end (Figure 4): every
 * derived variable is expanded down to model inputs and uncertain
 * variables, which are deliberately left unresolved so the back-end
 * can inject distributions for them.
 */

#ifndef AR_SYMBOLIC_SYSTEM_HH
#define AR_SYMBOLIC_SYSTEM_HH

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/** A set of equations with designated uncertain variables. */
class EquationSystem
{
  public:
    /**
     * Add one equation.  The defined variable is the bare symbol on
     * the left-hand side; if the LHS is not a bare symbol the
     * equation is solved for the (unique) symbol not yet defined
     * elsewhere.
     */
    void addEquation(const Equation &eq);

    /** Parse and add an equation string such as "P = sqrt(A)". */
    void addEquation(std::string_view text);

    /**
     * Mark a variable as uncertain: it is never expanded during
     * resolution even when a defining equation exists (its definition
     * remains available through definitionOf() so the back-end can
     * centre a distribution on the nominal value, Figure 5 step 2).
     */
    void markUncertain(const std::string &name);

    /** @return the set of uncertain variable names. */
    const std::set<std::string> &uncertain() const { return uncertain_; }

    /** @return true if a defining equation exists for the name. */
    bool defines(const std::string &name) const;

    /** @return the raw (unexpanded) definition; fatal when missing. */
    ExprPtr definitionOf(const std::string &name) const;

    /** @return all defined variable names. */
    std::vector<std::string> definedNames() const;

    /**
     * Replace (or add) the defining equation of one variable without
     * discarding unrelated resolution work.  The LHS must be a bare
     * symbol.  Resolution results are memoized together with their
     * transitive dependency sets, so only the memo entries in the
     * edited variable's cone (the entries whose expansion used it)
     * are invalidated; everything outside the cone stays resolved.
     *
     * @return the number of memoized resolutions invalidated.
     * @throws ar::util::ParseError when the LHS is not a bare symbol.
     */
    std::size_t replaceEquation(const Equation &eq);

    /** Parse and replace, e.g. replaceEquation("P = 2 * sqrt(A)"). */
    std::size_t replaceEquation(std::string_view text);

    /**
     * Fully expand a variable down to inputs and uncertain leaves
     * ("partial symbolic solving").  Results are memoized; cyclic
     * definitions are fatal.
     */
    ExprPtr resolve(const std::string &name) const;

    /**
     * @return the free symbols (inputs + uncertain variables) of the
     * resolved form of @p name.
     */
    std::set<std::string> resolvedInputs(const std::string &name) const;

  private:
    ExprPtr resolveImpl(const std::string &name,
                        std::set<std::string> &in_progress) const;

    std::map<std::string, ExprPtr> defs;
    std::set<std::string> uncertain_;
    mutable std::map<std::string, ExprPtr> memo;
    /// Defined names each memo entry transitively expanded; keeps
    /// replaceEquation() invalidation to the edited cone.
    mutable std::map<std::string, std::set<std::string>> memo_deps;
};

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_SYSTEM_HH
