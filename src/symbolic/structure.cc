#include "symbolic/structure.hh"

#include "util/logging.hh"

namespace ar::symbolic
{

namespace
{

void
requireElements(const std::vector<ExprPtr> &elements, const char *what)
{
    if (elements.empty())
        ar::util::fatal(what, ": needs at least one element");
}

} // namespace

ExprPtr
seriesStructure(std::vector<ExprPtr> elements)
{
    requireElements(elements, "seriesStructure");
    return Expr::mul(std::move(elements));
}

ExprPtr
parallelStructure(std::vector<ExprPtr> elements)
{
    requireElements(elements, "parallelStructure");
    return Expr::max(std::move(elements));
}

ExprPtr
kOfNStructure(ExprPtr k, std::vector<ExprPtr> elements)
{
    requireElements(elements, "kOfNStructure");
    // gtz(sum_i gtz(x_i) - k + 0.5): the up-count is an integer, so
    // the 0.5 offset makes "count >= k" exact for integer k; k = 0
    // degenerates to a constant 1 (the count is never negative).
    std::vector<ExprPtr> up;
    up.reserve(elements.size());
    for (auto &e : elements)
        up.push_back(Expr::func("gtz", std::move(e)));
    ExprPtr count = Expr::add(std::move(up));
    ExprPtr margin = Expr::add(
        Expr::sub(std::move(count), std::move(k)),
        Expr::constant(0.5));
    return Expr::func("gtz", std::move(margin));
}

} // namespace ar::symbolic
