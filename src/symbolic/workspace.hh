/**
 * @file
 * Reusable evaluation scratch.  Every tape evaluation needs a plane
 * of scratch rows; resizing a zero-initialising container per call
 * puts an allocation and a memset in the Monte-Carlo hot loop.  An
 * EvalWorkspace is a grow-only, uninitialised buffer from which
 * evaluations borrow stack-ordered windows: steady state does no
 * allocation and no clearing (tape ops fully overwrite every row
 * before reading it, so uninitialised memory is never observed).
 */

#ifndef AR_SYMBOLIC_WORKSPACE_HH
#define AR_SYMBOLIC_WORKSPACE_HH

#include <cstddef>
#include <memory>

namespace ar::symbolic
{

/**
 * A stack of scratch windows backed by one grow-only allocation.
 *
 * acquire()/release() must nest (LIFO), mirroring nested evaluations
 * on one thread.  Growth preserves the bytes of windows still in use,
 * but callers must not hold pointers from an *outer* window across an
 * inner acquire() -- the buffer may move.  The evaluators respect
 * this: a tape never re-enters user code mid-pass.
 */
class EvalWorkspace
{
  public:
    /** Borrow @p n doubles (uninitialised) at the current top. */
    double *acquire(std::size_t n)
    {
        const std::size_t base = used_;
        if (base + n > cap_)
            grow(base + n);
        used_ = base + n;
        return buf_.get() + base;
    }

    /** Return the most recent @p n doubles (LIFO order). */
    void release(std::size_t n) { used_ -= n; }

    /** @return doubles currently borrowed (diagnostics/tests). */
    std::size_t inUse() const { return used_; }

    /** @return doubles allocated so far (diagnostics/tests). */
    std::size_t capacity() const { return cap_; }

  private:
    void grow(std::size_t need);

    std::unique_ptr<double[]> buf_;
    std::size_t cap_ = 0;
    std::size_t used_ = 0;
};

/**
 * The calling thread's default workspace.  Engines that evaluate in
 * a loop pass this (or a workspace of their own) so every block after
 * the first reuses the same warm allocation.
 */
EvalWorkspace &threadEvalWorkspace();

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_WORKSPACE_HH
