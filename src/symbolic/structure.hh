/**
 * @file
 * Reliability structure functions as symbolic expressions.
 *
 * A multi-state component (ar::risk) contributes one state variable
 * whose sampled value is the component's performance multiplier for
 * the trial.  A system-level structure function composes those
 * variables into the system's effective multiplier; building it
 * symbolically means it compiles through the ordinary
 * symbolic -> interned-DAG -> CompiledProgram -> SIMD-tape pipeline
 * and inherits batching, fault attribution, caching, and incremental
 * what-if edits with no new evaluation machinery.
 *
 * Lowerings (also recognized by the equation parser as the functions
 * `series(...)`, `parallel(...)`, and `kofn(k, ...)`):
 *
 *   series(x...)    -> x1 * x2 * ... (every element is needed; a dead
 *                      element with multiplier 0 kills the chain)
 *   parallel(x...)  -> max(x...)     (the best surviving element
 *                      carries the system)
 *   kofn(k, x...)   -> gtz(gtz(x1) + ... + gtz(xn) - k + 0.5)
 *                      (1 when at least k elements are up -- i.e.
 *                      have a positive multiplier -- else 0; k = 0 is
 *                      identically 1, k = n requires every element)
 *
 * All three return plain ExprPtr trees, so they nest freely inside
 * arbitrary expressions over the state variables.
 */

#ifndef AR_SYMBOLIC_STRUCTURE_HH
#define AR_SYMBOLIC_STRUCTURE_HH

#include <vector>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/** series(x...): product of the element multipliers (fatal when
 * @p elements is empty). */
ExprPtr seriesStructure(std::vector<ExprPtr> elements);

/** parallel(x...): maximum of the element multipliers (fatal when
 * @p elements is empty). */
ExprPtr parallelStructure(std::vector<ExprPtr> elements);

/**
 * kofn(k, x...): 1 when at least @p k of the elements are up (have a
 * multiplier > 0), else 0.  @p k may be any expression; the usual
 * case is a constant.  Fatal when @p elements is empty.
 */
ExprPtr kOfNStructure(ExprPtr k, std::vector<ExprPtr> elements);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_STRUCTURE_HH
