#include "symbolic/workspace.hh"

#include <algorithm>

namespace ar::symbolic
{

void
EvalWorkspace::grow(std::size_t need)
{
    const std::size_t cap = std::max(need, cap_ * 2);
    auto next = std::make_unique_for_overwrite<double[]>(cap);
    // Preserve windows still in use so nested acquires that trigger
    // growth do not corrupt their callers' live scratch.
    std::copy(buf_.get(), buf_.get() + used_, next.get());
    buf_ = std::move(next);
    cap_ = cap;
}

EvalWorkspace &
threadEvalWorkspace()
{
    thread_local EvalWorkspace ws;
    return ws;
}

} // namespace ar::symbolic
