#include "symbolic/program.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <set>
#include <unordered_map>

#include "obs/telemetry.hh"
#include "simd/dispatch.hh"
#include "symbolic/printer.hh"
#include "util/logging.hh"

namespace ar::symbolic
{

namespace
{

struct ProgMetrics
{
    obs::Counter batches =
        obs::MetricsRegistry::global().counter("prog.batches");
    obs::Counter trials =
        obs::MetricsRegistry::global().counter("prog.trials");
    obs::Counter ops =
        obs::MetricsRegistry::global().counter("prog.ops");
    obs::Counter cse_saved_ops =
        obs::MetricsRegistry::global().counter("prog.cse_saved_ops");
};

ProgMetrics &
progMetrics()
{
    static ProgMetrics m;
    return m;
}

/**
 * DAG node kinds, mirroring CompiledProgram's op codes.  The builder
 * lives outside the class, so it uses its own enum and the
 * constructor translates when laying down the tape.
 */
enum class NK : std::uint8_t
{
    Const,
    Arg,
    Add,
    Mul,
    Pow,
    Recip,
    PowHalf,
    Max,
    Min,
    Log,
    Exp,
    Gtz,
};

struct Node
{
    NK kind;
    double value = 0.0;    ///< Const payload.
    std::uint32_t arg = 0; ///< Arg index.
    std::vector<std::uint32_t> kids;
};

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/**
 * Fold operand values with exactly CompiledExpr's operand order: the
 * accumulator seeds from the last operand (top of stack) and folds
 * the remaining operands from high index to low with the accumulator
 * on the left.  Used for compile-time constant folding so a folded
 * constant is bit-identical to what the naive tape would compute.
 */
double
foldNode(NK kind, std::span<const double> v, double payload)
{
    switch (kind) {
      case NK::Const:
        return payload;
      case NK::Add:
        {
            double acc = v[v.size() - 1];
            for (std::size_t j = v.size() - 1; j-- > 0;)
                acc = acc + v[j];
            return acc;
        }
      case NK::Mul:
        {
            double acc = v[v.size() - 1];
            for (std::size_t j = v.size() - 1; j-- > 0;)
                acc = acc * v[j];
            return acc;
        }
      case NK::Max:
        {
            double acc = v[v.size() - 1];
            for (std::size_t j = v.size() - 1; j-- > 0;)
                acc = std::max(acc, v[j]);
            return acc;
        }
      case NK::Min:
        {
            double acc = v[v.size() - 1];
            for (std::size_t j = v.size() - 1; j-- > 0;)
                acc = std::min(acc, v[j]);
            return acc;
        }
      case NK::Pow:
        return std::pow(v[0], v[1]);
      case NK::Recip:
        return 1.0 / v[0];
      case NK::PowHalf:
        return std::pow(v[0], 0.5);
      case NK::Log:
        return std::log(v[0]);
      case NK::Exp:
        return std::exp(v[0]);
      case NK::Gtz:
        return v[0] > 0.0 ? 1.0 : 0.0;
      case NK::Arg:
        break;
    }
    ar::util::panic("CompiledProgram: cannot fold an argument node");
}

struct NodeKey
{
    std::uint8_t kind;
    std::uint64_t payload; ///< Constant bits or argument index.
    std::vector<std::uint32_t> kids;
    bool operator==(const NodeKey &o) const = default;
};

struct NodeKeyHash
{
    std::size_t operator()(const NodeKey &k) const
    {
        std::size_t h = std::hash<std::uint64_t>{}(
            (static_cast<std::uint64_t>(k.kind) << 56) ^ k.payload);
        for (const auto id : k.kids)
            h = h * 1000003u ^ id;
        return h;
    }
};

/**
 * Hash-consing expression-to-DAG builder.  Structurally identical
 * subtrees intern to one node (CSE); the rewrite rules below only
 * fire when the rewritten form is bit-identical to the naive tape on
 * IEEE-754 doubles (DESIGN.md section 5.3 has the case analysis).
 *
 * Two levels of interning cooperate here.  Source expressions are
 * already hash-consed by ExprPool, so expr_memo -- keyed on node
 * identity and shared across every output of the program -- lowers a
 * subexpression referenced n times (including from other outputs)
 * exactly once.  The NodeKey map is still needed on top of it: the
 * rewrites create NK nodes with no source counterpart (x^2 becomes
 * Mul(x, x)), and those must dedup structurally.
 */
struct Builder
{
    /// Program argument names; re-pointed at args_ on every compile
    /// (the builder outlives single compiles and the owning program
    /// may move).
    const std::vector<std::string> *args = nullptr;
    std::vector<Node> nodes;
    std::unordered_map<NodeKey, std::uint32_t, NodeKeyHash> interned;
    std::unordered_map<const Expr *, std::uint32_t> expr_memo;
    /// Strong references backing expr_memo's raw keys: the builder
    /// persists across recompiles, so memoized subtrees must not be
    /// freed (and their addresses reused) between compiles.
    std::vector<ExprPtr> pinned;

    std::uint32_t intern(Node n)
    {
        NodeKey key{static_cast<std::uint8_t>(n.kind),
                    n.kind == NK::Const
                        ? bitsOf(n.value)
                        : static_cast<std::uint64_t>(n.arg),
                    n.kids};
        const auto [it, fresh] = interned.try_emplace(
            std::move(key), static_cast<std::uint32_t>(nodes.size()));
        if (fresh)
            nodes.push_back(std::move(n));
        return it->second;
    }

    std::uint32_t constant(double v)
    {
        return intern({NK::Const, v, 0, {}});
    }

    bool isConst(std::uint32_t id) const
    {
        return nodes[id].kind == NK::Const;
    }

    bool allConst(const std::vector<std::uint32_t> &kids) const
    {
        return std::all_of(kids.begin(), kids.end(),
                           [&](std::uint32_t k) { return isConst(k); });
    }

    std::uint32_t foldAll(NK kind,
                          const std::vector<std::uint32_t> &kids)
    {
        std::vector<double> v;
        v.reserve(kids.size());
        for (const auto k : kids)
            v.push_back(nodes[k].value);
        return constant(foldNode(kind, v, 0.0));
    }

    std::uint32_t addNode(std::vector<std::uint32_t> kids)
    {
        if (allConst(kids))
            return foldAll(NK::Add, kids);
        // Neutral-element pruning.  -0.0 is the exact additive
        // identity (x + -0.0 is bitwise x for every x), so it drops
        // freely.  +0.0 is an identity except that it rewrites a
        // -0.0 sum to +0.0; dropping k of them and folding a single
        // + 0.0 *last* reproduces that canonicalisation exactly.
        std::vector<std::uint32_t> pruned;
        bool dropped_pos = false;
        for (const auto k : kids) {
            if (isConst(k)) {
                const auto b = bitsOf(nodes[k].value);
                if (b == bitsOf(-0.0))
                    continue;
                if (b == bitsOf(0.0)) {
                    dropped_pos = true;
                    continue;
                }
            }
            pruned.push_back(k);
        }
        if (dropped_pos) {
            // Operands fold from last to first, so position 0 folds
            // last: acc = fold(rest) + 0.0.
            pruned.insert(pruned.begin(), constant(0.0));
        }
        if (pruned.size() == 1)
            return pruned[0];
        return intern({NK::Add, 0.0, 0, std::move(pruned)});
    }

    std::uint32_t mulNode(std::vector<std::uint32_t> kids)
    {
        if (allConst(kids))
            return foldAll(NK::Mul, kids);
        // 1.0 is the exact multiplicative identity (x * 1.0 is
        // bitwise x for every x, NaN and signed zeros included).
        std::vector<std::uint32_t> pruned;
        for (const auto k : kids)
            if (!(isConst(k) && bitsOf(nodes[k].value) == bitsOf(1.0)))
                pruned.push_back(k);
        if (pruned.size() == 1)
            return pruned[0];
        return intern({NK::Mul, 0.0, 0, std::move(pruned)});
    }

    std::uint32_t powNode(std::uint32_t base, std::uint32_t exp,
                          bool literal_exp)
    {
        // Strength reduction, mirroring the lowering CompiledExpr::
        // emit applies to the same source shapes so the fused and
        // per-output tapes stay bit-identical.  pow(x, +-0) == 1.0
        // and pow(x, 1) == x hold exactly for every x (NaN included),
        // so those fire for any constant-valued exponent; but glibc's
        // pow() is not correctly rounded, so x*x and 1.0/x differ
        // from pow(x, 2) / pow(x, -1) by 1 ulp on roughly 1 in 2400
        // and 1 in 600 random inputs -- those two fire only for
        // literal exponents, exactly where the reference tape lowers
        // too.  They also run before the all-const fold so a constant
        // square folds as c*c, matching the Sq kernel, not pow().
        if (literal_exp && isConst(exp)) {
            const double e = nodes[exp].value;
            if (e == 2.0)
                return mulNode({base, base});
            if (e == -1.0) {
                if (isConst(base))
                    return constant(1.0 / nodes[base].value);
                return intern({NK::Recip, 0.0, 0, {base}});
            }
            if (e == 0.5) {
                // x^0.5 (sqrt's canonical form) keeps pow(x, 0.5)
                // semantics scalar-side; the vector backends lower
                // it to hardware sqrt.
                if (isConst(base))
                    return constant(std::pow(nodes[base].value, 0.5));
                return intern({NK::PowHalf, 0.0, 0, {base}});
            }
        }
        if (isConst(exp)) {
            const double e = nodes[exp].value;
            if (e == 0.0)
                return constant(1.0);
            if (e == 1.0)
                return base;
        }
        if (isConst(base) && isConst(exp)) {
            return constant(
                std::pow(nodes[base].value, nodes[exp].value));
        }
        return intern({NK::Pow, 0.0, 0, {base, exp}});
    }

    std::uint32_t extremumNode(NK kind,
                               std::vector<std::uint32_t> kids)
    {
        if (allConst(kids))
            return foldAll(kind, kids);
        if (kids.size() == 1)
            return kids[0];
        return intern({kind, 0.0, 0, std::move(kids)});
    }

    std::uint32_t funcNode(NK kind, std::uint32_t kid)
    {
        if (isConst(kid)) {
            const double v[1] = {nodes[kid].value};
            return constant(foldNode(kind, v, 0.0));
        }
        return intern({kind, 0.0, 0, {kid}});
    }

    /** Lower a leaf or a node whose children are already lowered. */
    std::uint32_t buildNode(const Expr &e,
                            std::vector<std::uint32_t> kids)
    {
        switch (e.kind()) {
          case ExprKind::Constant:
            return constant(e.value());
          case ExprKind::Symbol:
            {
                const auto it = std::lower_bound(
                    args->begin(), args->end(), e.name());
                return intern(
                    {NK::Arg, 0.0,
                     static_cast<std::uint32_t>(it - args->begin()),
                     {}});
            }
          case ExprKind::Add:
            return addNode(std::move(kids));
          case ExprKind::Mul:
            return mulNode(std::move(kids));
          case ExprKind::Pow:
            return powNode(kids[0], kids[1],
                           e.operands()[1]->kind() ==
                               ExprKind::Constant);
          case ExprKind::Max:
            return extremumNode(NK::Max, std::move(kids));
          case ExprKind::Min:
            return extremumNode(NK::Min, std::move(kids));
          case ExprKind::Func:
            if (e.name() == "log")
                return funcNode(NK::Log, kids[0]);
            if (e.name() == "exp")
                return funcNode(NK::Exp, kids[0]);
            if (e.name() == "gtz")
                return funcNode(NK::Gtz, kids[0]);
            ar::util::panic("CompiledProgram: unknown function ",
                            e.name());
          default:
            ar::util::panic(
                "CompiledProgram: unhandled expression kind");
        }
    }

    std::uint32_t build(const ExprPtr &root)
    {
        // Iterative post-order over the expression DAG.  Children
        // are pushed in reverse so they lower left-to-right, keeping
        // node creation order -- and hence the final tape layout --
        // identical to the recursive formulation's.
        std::vector<const ExprPtr *> stack{&root};
        while (!stack.empty()) {
            const ExprPtr &e = *stack.back();
            if (expr_memo.count(e.get())) {
                stack.pop_back();
                continue;
            }
            if (e->operands().empty()) {
                expr_memo.emplace(e.get(), buildNode(*e, {}));
                pinned.push_back(e);
                stack.pop_back();
                continue;
            }
            bool ready = true;
            const auto &ops = e->operands();
            for (std::size_t i = ops.size(); i-- > 0;) {
                if (!expr_memo.count(ops[i].get())) {
                    stack.push_back(&ops[i]);
                    ready = false;
                }
            }
            if (!ready)
                continue;
            std::vector<std::uint32_t> kids;
            kids.reserve(ops.size());
            for (const auto &op : ops)
                kids.push_back(expr_memo.at(op.get()));
            expr_memo.emplace(e.get(),
                              buildNode(*e, std::move(kids)));
            pinned.push_back(e);
            stack.pop_back();
        }
        return expr_memo.at(root.get());
    }
};

/** Truncate a display label like CompiledExpr's shortLabel. */
std::string
clipLabel(std::string s)
{
    constexpr std::size_t kMaxLabel = 48;
    if (s.size() > kMaxLabel) {
        s.resize(kMaxLabel - 3);
        s += "...";
    }
    return s;
}

std::string
joinLabels(const std::vector<std::string> &parts,
           const std::vector<std::uint32_t> &kids, const char *sep,
           const char *open, const char *close)
{
    std::string s = open;
    for (std::size_t i = 0; i < kids.size(); ++i) {
        if (i > 0)
            s += sep;
        s += parts[kids[i]];
    }
    s += close;
    return clipLabel(std::move(s));
}

} // namespace

/**
 * Persistent compile state.  The hash-consed builder DAG survives
 * across recompiles so re-lowering an edited forest only pays for
 * the dirty cone: every subtree pointer-identical to a previously
 * compiled expression memo-hits in expr_memo and is never walked.
 */
struct CompiledProgram::BuildState
{
    Builder b;
    /// Reachable node count of the last compile; recompile() resets
    /// the builder when dead nodes from past edits dominate.
    std::size_t last_emitted = 0;
};

CompiledProgram::~CompiledProgram() = default;
CompiledProgram::CompiledProgram(CompiledProgram &&) noexcept = default;
CompiledProgram &
CompiledProgram::operator=(CompiledProgram &&) noexcept = default;

CompiledProgram::CompiledProgram(std::vector<ExprPtr> outputs)
    : state_(std::make_unique<BuildState>())
{
    if (outputs.empty())
        ar::util::panic("CompiledProgram: no outputs");
    for (const auto &e : outputs)
        if (!e)
            ar::util::panic("CompiledProgram: null output expression");
    sources_ = std::move(outputs);
    initArgs();
    rebuildDiag(nullptr);
    compile();
}

void
CompiledProgram::initArgs()
{
    // Fixed argument ordering: the sorted union of free symbols.
    std::set<std::string> all;
    for (const auto &e : sources_) {
        const auto &syms = e->freeSymbols(); // memoized, not rebuilt
        all.insert(syms.begin(), syms.end());
    }
    args_.assign(all.begin(), all.end());
}

void
CompiledProgram::rebuildDiag(const std::vector<ExprPtr> *old_sources)
{
    // Per-output diagnostic tapes (also the "naive" op-count
    // baseline the optimizer is measured against).  On recompile,
    // outputs whose source is pointer-identical keep their tape; the
    // arg-index maps are always recomputed because args_ may have
    // been reordered by the edit.
    std::vector<CompiledExpr> fresh;
    fresh.reserve(sources_.size());
    for (std::size_t o = 0; o < sources_.size(); ++o) {
        if (old_sources && o < old_sources->size() &&
            (*old_sources)[o].get() == sources_[o].get())
            fresh.push_back(std::move(diag_[o]));
        else
            fresh.emplace_back(sources_[o]);
    }
    diag_ = std::move(fresh);
    diag_args_.clear();
    diag_args_.reserve(sources_.size());
    stats_.naive_ops = 0;
    for (const auto &d : diag_) {
        const auto &names = d.argNames();
        std::vector<std::uint32_t> map;
        map.reserve(names.size());
        for (const auto &name : names) {
            const auto it = std::lower_bound(args_.begin(),
                                             args_.end(), name);
            map.push_back(
                static_cast<std::uint32_t>(it - args_.begin()));
        }
        diag_args_.push_back(std::move(map));
        stats_.naive_ops += d.tapeLength();
    }
}

std::size_t
CompiledProgram::compile()
{
    ops_.clear();
    operand_regs_.clear();
    labels_.clear();
    root_regs_.clear();
    root_direct_.clear();
    root_copy_.clear();
    arg_regs_.clear();
    num_regs_ = 0;

    // Intern the forest into a DAG with the bit-safe rewrites.  The
    // builder is persistent: node ids from earlier compiles remain
    // valid, and freshly interned nodes (the dirty cone on a
    // recompile) append past nodes_before.  Everything downstream --
    // emission order, liveness, register assignment -- is a function
    // of program *structure* reached from the roots, never of node
    // ids, so a recompile through a warm builder lays down a tape
    // op-for-op identical to a cold compile of the same forest.
    Builder &b = state_->b;
    b.args = &args_;
    const std::size_t nodes_before = b.nodes.size();
    std::vector<std::uint32_t> roots;
    roots.reserve(sources_.size());
    for (const auto &e : sources_)
        roots.push_back(b.build(e));

    // Linearize: DFS postorder from each root in output order,
    // emitting every reachable node exactly once.  Nodes orphaned by
    // the rewrites are simply never reached (dead-op elimination).
    // The walk is an explicit two-phase stack (visit children, then a
    // post-marker emits the node) so arbitrarily deep programs cannot
    // overflow the call stack; the emission order is exactly the
    // recursive formulation's.
    const std::size_t nn = b.nodes.size();
    std::vector<std::uint32_t> order;
    order.reserve(nn);
    std::vector<std::uint8_t> seen(nn, 0);
    struct LinItem
    {
        std::uint32_t id;
        bool post;
    };
    std::vector<LinItem> lstack;
    for (const auto r : roots) {
        lstack.push_back({r, false});
        while (!lstack.empty()) {
            const auto [id, post] = lstack.back();
            lstack.pop_back();
            if (post) {
                order.push_back(id);
                continue;
            }
            if (seen[id])
                continue;
            seen[id] = 1;
            lstack.push_back({id, true});
            const auto &kids = b.nodes[id].kids;
            for (std::size_t i = kids.size(); i-- > 0;)
                lstack.push_back({kids[i], false});
        }
    }

    // Liveness: last tape position reading each node.  Output roots
    // stay live to the end (their value is the result).
    constexpr std::size_t kLive = std::numeric_limits<std::size_t>::max();
    std::vector<std::size_t> last(nn, 0);
    for (std::size_t i = 0; i < order.size(); ++i)
        for (const auto kid : b.nodes[order[i]].kids)
            last[kid] = i;
    for (const auto r : roots)
        last[r] = kLive;

    // Linear-scan register allocation.  Argument registers are
    // pinned (in batch mode they may alias caller-owned columns, so
    // no op may ever write them); an accumulating op may reuse its
    // seed operand's dying register in place, but only when that
    // operand does not also appear among the remaining operands.
    std::vector<std::uint32_t> reg_of(nn, 0);
    std::vector<std::uint32_t> free_regs;
    num_regs_ = 0;
    // Argument registers are assigned up front and never recycled.
    // In batch mode the caller's input columns are aliased to these
    // registers for the WHOLE tape (the alias is installed at setup,
    // not at the Arg op's tape position), so no other op may ever
    // claim one -- not even in the gap before the Arg op executes.
    for (const auto id : order) {
        if (b.nodes[id].kind == NK::Arg)
            reg_of[id] = static_cast<std::uint32_t>(num_regs_++);
    }
    const auto alloc = [&]() -> std::uint32_t {
        if (!free_regs.empty()) {
            const auto r = free_regs.back();
            free_regs.pop_back();
            return r;
        }
        return static_cast<std::uint32_t>(num_regs_++);
    };
    const auto dying = [&](std::uint32_t kid, std::size_t i) {
        return last[kid] == i && b.nodes[kid].kind != NK::Arg;
    };
    for (std::size_t i = 0; i < order.size(); ++i) {
        const auto id = order[i];
        const auto &nd = b.nodes[id];
        bool inplace = false;
        std::uint32_t dst = 0;
        switch (nd.kind) {
          case NK::Add:
          case NK::Mul:
          case NK::Max:
          case NK::Min:
            {
                // The seed (last operand) may be accumulated in
                // place; other operands are read mid-fold, after the
                // destination row has already been overwritten.
                const auto seed = nd.kids.back();
                if (dying(seed, i) &&
                    std::find(nd.kids.begin(), nd.kids.end() - 1,
                              seed) == nd.kids.end() - 1) {
                    dst = reg_of[seed];
                    inplace = true;
                }
                break;
            }
          case NK::Pow:
          case NK::Recip:
          case NK::PowHalf:
          case NK::Log:
          case NK::Exp:
          case NK::Gtz:
            // Element-wise ops read every operand at trial t before
            // writing trial t, so the destination may alias any
            // dying operand.
            for (const auto kid : nd.kids) {
                if (dying(kid, i)) {
                    dst = reg_of[kid];
                    inplace = true;
                    break;
                }
            }
            break;
          default:
            break;
        }
        if (nd.kind == NK::Arg)
            dst = reg_of[id]; // pre-assigned, pinned
        else if (!inplace)
            dst = alloc();
        reg_of[id] = dst;
        for (const auto kid : nd.kids) {
            if (dying(kid, i) && reg_of[kid] != dst) {
                free_regs.push_back(reg_of[kid]);
                last[kid] = kLive; // freed once even if repeated
            }
        }
    }

    // Lay down the tape, operand registers, and display labels.
    std::vector<std::string> nlabel(nn);
    const auto toOp = [](NK k) {
        switch (k) {
          case NK::Const: return OpCode::Const;
          case NK::Arg: return OpCode::Arg;
          case NK::Add: return OpCode::Add;
          case NK::Mul: return OpCode::Mul;
          case NK::Pow: return OpCode::Pow;
          case NK::Recip: return OpCode::Recip;
          case NK::PowHalf: return OpCode::PowHalf;
          case NK::Max: return OpCode::Max;
          case NK::Min: return OpCode::Min;
          case NK::Log: return OpCode::Log;
          case NK::Exp: return OpCode::Exp;
          case NK::Gtz: return OpCode::Gtz;
        }
        ar::util::panic("CompiledProgram: bad node kind");
    };
    ops_.reserve(order.size());
    labels_.reserve(order.size());
    for (const auto id : order) {
        const auto &nd = b.nodes[id];
        Op op;
        op.code = toOp(nd.kind);
        op.dst = reg_of[id];
        switch (nd.kind) {
          case NK::Const:
            op.value = nd.value;
            nlabel[id] = clipLabel(toString(Expr::constant(nd.value)));
            break;
          case NK::Arg:
            op.first = nd.arg;
            arg_regs_.emplace_back(op.dst, nd.arg);
            nlabel[id] = args_[nd.arg];
            break;
          default:
            op.first = static_cast<std::uint32_t>(
                operand_regs_.size());
            op.n = static_cast<std::uint32_t>(nd.kids.size());
            for (const auto kid : nd.kids)
                operand_regs_.push_back(reg_of[kid]);
            switch (nd.kind) {
              case NK::Add:
                nlabel[id] = joinLabels(nlabel, nd.kids, " + ", "(", ")");
                break;
              case NK::Mul:
                nlabel[id] = joinLabels(nlabel, nd.kids, " * ", "(", ")");
                break;
              case NK::Pow:
                nlabel[id] = joinLabels(nlabel, nd.kids, " ^ ", "(", ")");
                break;
              case NK::Recip:
                nlabel[id] = clipLabel("1 / " + nlabel[nd.kids[0]]);
                break;
              case NK::PowHalf:
                nlabel[id] =
                    clipLabel("(" + nlabel[nd.kids[0]] + " ^ 0.5)");
                break;
              case NK::Max:
                nlabel[id] = joinLabels(nlabel, nd.kids, ", ", "max(", ")");
                break;
              case NK::Min:
                nlabel[id] = joinLabels(nlabel, nd.kids, ", ", "min(", ")");
                break;
              case NK::Log:
                nlabel[id] = joinLabels(nlabel, nd.kids, ", ", "log(", ")");
                break;
              case NK::Exp:
                nlabel[id] = joinLabels(nlabel, nd.kids, ", ", "exp(", ")");
                break;
              case NK::Gtz:
                nlabel[id] = joinLabels(nlabel, nd.kids, ", ", "gtz(", ")");
                break;
              default:
                break;
            }
            break;
        }
        ops_.push_back(op);
        labels_.push_back(nlabel[id]);
    }

    // Output plumbing: each root either writes its destination
    // column directly (first claimant, non-argument) or is copied
    // out in the epilogue.
    root_regs_.reserve(roots.size());
    std::vector<std::uint8_t> claimed(num_regs_, 0);
    for (std::size_t o = 0; o < roots.size(); ++o) {
        const auto reg = reg_of[roots[o]];
        root_regs_.push_back(reg);
        if (b.nodes[roots[o]].kind != NK::Arg && !claimed[reg]) {
            claimed[reg] = 1;
            root_direct_.emplace_back(
                reg, static_cast<std::uint32_t>(o));
        } else {
            root_copy_.emplace_back(static_cast<std::uint32_t>(o),
                                    reg);
        }
    }

    stats_.program_ops = ops_.size();
    stats_.registers = num_regs_;
    state_->last_emitted = order.size();
    return b.nodes.size() - nodes_before;
}

bool
CompiledProgram::tryPatch(const std::vector<ExprPtr> &new_outputs)
{
    if (new_outputs.size() != sources_.size())
        return false;
    for (const auto &e : new_outputs)
        if (!e)
            ar::util::panic("CompiledProgram: null output expression");

    // Paired structural walk over (old, new).  Pointer-identical
    // pairs are descended too (the pair memo keeps this linear): the
    // retained region then contributes an identity entry for every
    // constant it still uses, which is what catches a hash-consed
    // constant that one edit site changes and another still needs --
    // the two targets conflict and the patch is refused.
    std::unordered_map<std::uint64_t, std::uint64_t> edits;
    std::set<std::pair<const Expr *, const Expr *>> visited;
    std::vector<std::pair<const Expr *, const Expr *>> stack;
    for (std::size_t o = 0; o < sources_.size(); ++o)
        stack.emplace_back(sources_[o].get(), new_outputs[o].get());
    while (!stack.empty()) {
        const auto [oe, ne] = stack.back();
        stack.pop_back();
        if (!visited.insert({oe, ne}).second)
            continue;
        if (oe->kind() != ne->kind())
            return false; // structural edit
        if (oe->kind() == ExprKind::Constant) {
            const auto ob = bitsOf(oe->value());
            const auto nb = bitsOf(ne->value());
            const auto [it, fresh] = edits.try_emplace(ob, nb);
            if (!fresh && it->second != nb)
                return false; // two targets for one shared constant
            continue;
        }
        if (oe->kind() == ExprKind::Symbol) {
            if (oe->name() != ne->name())
                return false; // argument set would change
            continue;
        }
        if (oe->kind() == ExprKind::Func && oe->name() != ne->name())
            return false;
        const auto &ok = oe->operands();
        const auto &nk = ne->operands();
        if (ok.size() != nk.size())
            return false;
        // Value-sensitive rewrite guards: when the old or new value
        // of a changed constant participates in neutral-element
        // pruning, literal-exponent strength reduction, or would
        // newly enable compile-time folding, a fresh compile yields
        // a different tape shape -- the slot write cannot represent
        // the edit and the caller must recompile.
        bool any_changed = false;
        bool all_new_const = true;
        for (std::size_t i = 0; i < ok.size(); ++i) {
            const Expr *oc = ok[i].get();
            const Expr *nc = nk[i].get();
            if (nc->kind() != ExprKind::Constant)
                all_new_const = false;
            if (oc != nc && oc->kind() == ExprKind::Constant &&
                nc->kind() == ExprKind::Constant) {
                any_changed = true;
                const double ov = oc->value();
                const double nv = nc->value();
                switch (oe->kind()) {
                  case ExprKind::Add:
                    if (ov == 0.0 || nv == 0.0) // +-0.0 pruning
                        return false;
                    break;
                  case ExprKind::Mul:
                    if (ov == 1.0 || nv == 1.0) // identity pruning
                        return false;
                    break;
                  case ExprKind::Pow:
                    if (i == 1) {
                        for (const double m :
                             {0.0, 1.0, 2.0, -1.0, 0.5})
                            if (ov == m || nv == m)
                                return false;
                    }
                    break;
                  default:
                    break;
                }
            }
            stack.emplace_back(oc, nc);
        }
        if (any_changed && all_new_const)
            return false; // fresh compile would constant-fold here
    }

    // Locate every Const slot per edit *before* mutating: a new
    // value may equal another edit's old value, and patching in
    // sequence would then corrupt the already-patched slot.  A tape
    // op's value always matches the source constants it serves (the
    // invariant each successful patch re-establishes by updating
    // sources_), so value-bits lookup is exact; repeated patches can
    // leave several slots holding the same value, and all of them
    // belong to the edit.
    std::vector<std::pair<std::size_t, double>> slots;
    for (const auto &[ob, nb] : edits) {
        if (ob == nb)
            continue;
        double nv;
        std::memcpy(&nv, &nb, sizeof nv);
        bool found = false;
        for (std::size_t i = 0; i < ops_.size(); ++i) {
            if (ops_[i].code == OpCode::Const &&
                bitsOf(ops_[i].value) == ob) {
                slots.emplace_back(i, nv);
                found = true;
            }
        }
        if (!found)
            return false; // constant was folded or pruned away
    }
    for (const auto &[i, nv] : slots) {
        ops_[i].value = nv;
        labels_[i] = clipLabel(toString(Expr::constant(nv)));
    }
    const std::vector<ExprPtr> old = std::move(sources_);
    sources_ = new_outputs;
    rebuildDiag(&old);
    return true;
}

std::size_t
CompiledProgram::recompile(std::vector<ExprPtr> new_outputs)
{
    if (new_outputs.empty())
        ar::util::panic("CompiledProgram::recompile: no outputs");
    for (const auto &e : new_outputs)
        if (!e)
            ar::util::panic("CompiledProgram: null output expression");

    std::set<std::string> all;
    for (const auto &e : new_outputs) {
        const auto &syms = e->freeSymbols();
        all.insert(syms.begin(), syms.end());
    }
    std::vector<std::string> new_args(all.begin(), all.end());

    Builder &b = state_->b;
    if (new_args != args_) {
        // Argument indices are baked into interned Arg nodes, so a
        // changed argument set invalidates the whole builder DAG.
        b = Builder{};
    } else if (b.nodes.size() > 4 * state_->last_emitted + 1024) {
        // Dead nodes from past edits dominate; rebuild from scratch
        // rather than let the DAG grow without bound.
        b = Builder{};
    }

    const std::vector<ExprPtr> old = std::move(sources_);
    sources_ = std::move(new_outputs);
    args_ = std::move(new_args);
    rebuildDiag(&old);
    return compile();
}

std::size_t
CompiledProgram::argIndex(const std::string &name) const
{
    const auto it = std::lower_bound(args_.begin(), args_.end(), name);
    if (it == args_.end() || *it != name) {
        ar::util::fatal("CompiledProgram: no argument named '", name,
                        "'");
    }
    return static_cast<std::size_t>(it - args_.begin());
}

const std::string &
CompiledProgram::opLabel(std::size_t i) const
{
    if (i >= labels_.size())
        ar::util::panic("CompiledProgram::opLabel: index ", i,
                        " out of range");
    return labels_[i];
}

const ExprPtr &
CompiledProgram::source(std::size_t o) const
{
    if (o >= sources_.size())
        ar::util::panic("CompiledProgram::source: output ", o,
                        " out of range");
    return sources_[o];
}

const CompiledExpr &
CompiledProgram::diagTape(std::size_t o) const
{
    if (o >= diag_.size())
        ar::util::panic("CompiledProgram::diagTape: output ", o,
                        " out of range");
    return diag_[o];
}

void
CompiledProgram::eval(std::span<const double> args,
                      std::span<double> out) const
{
    eval(args, out, threadEvalWorkspace());
}

void
CompiledProgram::eval(std::span<const double> args,
                      std::span<double> out, EvalWorkspace &ws) const
{
    if (args.size() != args_.size()) {
        ar::util::fatal("CompiledProgram::eval: expected ",
                        args_.size(), " arguments, got ", args.size());
    }
    if (out.size() != root_regs_.size()) {
        ar::util::fatal("CompiledProgram::eval: expected ",
                        root_regs_.size(), " outputs, got ",
                        out.size());
    }
    double *regs = ws.acquire(num_regs_);
    for (const auto &op : ops_) {
        const std::uint32_t *k = operand_regs_.data() + op.first;
        switch (op.code) {
          case OpCode::Const:
            regs[op.dst] = op.value;
            break;
          case OpCode::Arg:
            regs[op.dst] = args[op.first];
            break;
          case OpCode::Add:
            {
                double acc = regs[k[op.n - 1]];
                for (std::uint32_t j = op.n - 1; j-- > 0;)
                    acc = acc + regs[k[j]];
                regs[op.dst] = acc;
                break;
            }
          case OpCode::Mul:
            {
                double acc = regs[k[op.n - 1]];
                for (std::uint32_t j = op.n - 1; j-- > 0;)
                    acc = acc * regs[k[j]];
                regs[op.dst] = acc;
                break;
            }
          case OpCode::Pow:
            regs[op.dst] = std::pow(regs[k[0]], regs[k[1]]);
            break;
          case OpCode::Recip:
            regs[op.dst] = 1.0 / regs[k[0]];
            break;
          case OpCode::PowHalf:
            regs[op.dst] = std::pow(regs[k[0]], 0.5);
            break;
          case OpCode::Max:
            {
                double acc = regs[k[op.n - 1]];
                for (std::uint32_t j = op.n - 1; j-- > 0;)
                    acc = std::max(acc, regs[k[j]]);
                regs[op.dst] = acc;
                break;
            }
          case OpCode::Min:
            {
                double acc = regs[k[op.n - 1]];
                for (std::uint32_t j = op.n - 1; j-- > 0;)
                    acc = std::min(acc, regs[k[j]]);
                regs[op.dst] = acc;
                break;
            }
          case OpCode::Log:
            regs[op.dst] = std::log(regs[k[0]]);
            break;
          case OpCode::Exp:
            regs[op.dst] = std::exp(regs[k[0]]);
            break;
          case OpCode::Gtz:
            regs[op.dst] = regs[k[0]] > 0.0 ? 1.0 : 0.0;
            break;
        }
    }
    for (std::size_t o = 0; o < root_regs_.size(); ++o)
        out[o] = regs[root_regs_[o]];
    ws.release(num_regs_);
}

void
CompiledProgram::evalBatch(std::span<const BatchArg> args,
                           std::size_t n,
                           std::span<double *const> out) const
{
    evalBatch(args, n, out, threadEvalWorkspace());
}

void
CompiledProgram::evalBatch(std::span<const BatchArg> args,
                           std::size_t n,
                           std::span<double *const> out,
                           EvalWorkspace &ws) const
{
    if (args.size() != args_.size()) {
        ar::util::fatal("CompiledProgram::evalBatch: expected ",
                        args_.size(), " arguments, got ", args.size());
    }
    if (out.size() != root_regs_.size()) {
        ar::util::fatal("CompiledProgram::evalBatch: expected ",
                        root_regs_.size(), " outputs, got ",
                        out.size());
    }
    if (n == 0)
        return;
    if (obs::metricsEnabled()) {
        auto &pm = progMetrics();
        pm.batches.add();
        pm.trials.add(n);
        pm.ops.add(ops_.size());
        pm.cse_saved_ops.add(stats_.naive_ops - stats_.program_ops);
        ar::simd::recordBatch(ops_.size());
    }
    // Every per-trial loop below is one ar::simd kernel call,
    // dispatched once per batch to the active SIMD level.
    const ar::simd::KernelTable &kt = ar::simd::kernels();
    double *scratch = ws.acquire(num_regs_ * n);

    // Register -> row pointer indirection.  Non-broadcast argument
    // registers alias the caller's input columns (no copy) and each
    // first-claimant root writes its result column directly; both
    // kinds of register are excluded from reuse by the allocator, so
    // no other op ever writes through those pointers.  The vector is
    // thread-local so steady-state blocks allocate nothing.
    static thread_local std::vector<double *> rowptr_store;
    auto &rowptr = rowptr_store;
    rowptr.resize(num_regs_);
    for (std::size_t r = 0; r < num_regs_; ++r)
        rowptr[r] = scratch + r * n;
    for (const auto &[reg, a] : arg_regs_) {
        if (!args[a].broadcast)
            rowptr[reg] = const_cast<double *>(args[a].values);
    }
    for (const auto &[reg, o] : root_direct_)
        rowptr[reg] = out[o];

    // Column tiles keep the live scratch rows L1-resident: a
    // 61-register program over a 256-trial block spans 122KB, so an
    // untiled sweep streams every operand row through L2.  Kernels
    // are elementwise, so splitting the trial axis is bit-exact; the
    // 64-trial floor bounds per-op dispatch overhead.
    constexpr std::size_t kTileDoubles = 3072; // 24KB hot window
    std::size_t tile = n;
    if (num_regs_ * n > kTileDoubles)
        tile = std::max<std::size_t>(64, kTileDoubles / num_regs_);

    for (std::size_t t0 = 0; t0 < n; t0 += tile) {
    const std::size_t tn = std::min(tile, n - t0);
    for (const auto &op : ops_) {
        const std::uint32_t *k = operand_regs_.data() + op.first;
        switch (op.code) {
          case OpCode::Const:
            {
                double *row = rowptr[op.dst] + t0;
                std::fill(row, row + tn, op.value);
                break;
            }
          case OpCode::Arg:
            {
                // Column arguments are aliased by rowptr; only a
                // broadcast value needs materialising.
                if (args[op.first].broadcast) {
                    double *row = rowptr[op.dst] + t0;
                    std::fill(row, row + tn,
                              args[op.first].values[0]);
                }
                break;
            }
          case OpCode::Add:
            {
                // Seed the fold with a direct two-operand call
                // instead of copy-then-accumulate: same operand
                // order per lane, one less pass over the row.
                double *dst = rowptr[op.dst] + t0;
                const double *seed = rowptr[k[op.n - 1]] + t0;
                if (op.n == 1) {
                    if (dst != seed)
                        std::copy(seed, seed + tn, dst);
                    break;
                }
                kt.add(seed, rowptr[k[op.n - 2]] + t0, dst, tn);
                for (std::uint32_t j = op.n - 2; j-- > 0;)
                    kt.add(dst, rowptr[k[j]] + t0, dst, tn);
                break;
            }
          case OpCode::Mul:
            {
                double *dst = rowptr[op.dst] + t0;
                const double *seed = rowptr[k[op.n - 1]] + t0;
                if (op.n == 1) {
                    if (dst != seed)
                        std::copy(seed, seed + tn, dst);
                    break;
                }
                kt.mul(seed, rowptr[k[op.n - 2]] + t0, dst, tn);
                for (std::uint32_t j = op.n - 2; j-- > 0;)
                    kt.mul(dst, rowptr[k[j]] + t0, dst, tn);
                break;
            }
          case OpCode::Pow:
            kt.pow(rowptr[k[0]] + t0, rowptr[k[1]] + t0,
                   rowptr[op.dst] + t0, tn);
            break;
          case OpCode::Recip:
            kt.recip(rowptr[k[0]] + t0, rowptr[op.dst] + t0, tn);
            break;
          case OpCode::PowHalf:
            kt.pow_half(rowptr[k[0]] + t0, rowptr[op.dst] + t0, tn);
            break;
          case OpCode::Max:
            {
                double *dst = rowptr[op.dst] + t0;
                const double *seed = rowptr[k[op.n - 1]] + t0;
                if (op.n == 1) {
                    if (dst != seed)
                        std::copy(seed, seed + tn, dst);
                    break;
                }
                kt.max(seed, rowptr[k[op.n - 2]] + t0, dst, tn);
                for (std::uint32_t j = op.n - 2; j-- > 0;)
                    kt.max(dst, rowptr[k[j]] + t0, dst, tn);
                break;
            }
          case OpCode::Min:
            {
                double *dst = rowptr[op.dst] + t0;
                const double *seed = rowptr[k[op.n - 1]] + t0;
                if (op.n == 1) {
                    if (dst != seed)
                        std::copy(seed, seed + tn, dst);
                    break;
                }
                kt.min(seed, rowptr[k[op.n - 2]] + t0, dst, tn);
                for (std::uint32_t j = op.n - 2; j-- > 0;)
                    kt.min(dst, rowptr[k[j]] + t0, dst, tn);
                break;
            }
          case OpCode::Log:
            kt.log(rowptr[k[0]] + t0, rowptr[op.dst] + t0, tn);
            break;
          case OpCode::Exp:
            kt.exp(rowptr[k[0]] + t0, rowptr[op.dst] + t0, tn);
            break;
          case OpCode::Gtz:
            kt.gtz(rowptr[k[0]] + t0, rowptr[op.dst] + t0, tn);
            break;
        }
    }
    }
    for (const auto &[o, reg] : root_copy_) {
        const double *src = rowptr[reg];
        if (src != out[o])
            std::copy(src, src + n, out[o]);
    }
    ws.release(num_regs_ * n);
}

double
CompiledProgram::evalDiagnosed(std::size_t o,
                               std::span<const double> args,
                               EvalFault &fault) const
{
    if (o >= diag_.size())
        ar::util::panic("CompiledProgram::evalDiagnosed: output ", o,
                        " out of range");
    if (args.size() != args_.size()) {
        ar::util::fatal("CompiledProgram::evalDiagnosed: expected ",
                        args_.size(), " arguments, got ", args.size());
    }
    // Diagnosis is the cold tier: gather the output's argument
    // subset and replay its own CompiledExpr tape so attribution
    // (op order, labels) matches the unfused path exactly.
    const auto &map = diag_args_[o];
    std::vector<double> sub(map.size());
    for (std::size_t i = 0; i < map.size(); ++i)
        sub[i] = args[map[i]];
    return diag_[o].evalDiagnosed(sub, fault);
}

} // namespace ar::symbolic
