/**
 * @file
 * Recursive algebraic simplification: constant folding, identity
 * elimination, and like-term collection sufficient for the closed-form
 * architecture models the framework targets.
 */

#ifndef AR_SYMBOLIC_SIMPLIFY_HH
#define AR_SYMBOLIC_SIMPLIFY_HH

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/**
 * Simplify an expression bottom-up.
 *
 * Rules applied: full constant folding; x+0, x*1, x*0, x^0, x^1, 1^x
 * identities; flattening of nested sums/products (factory-level);
 * folding of constant max/min/log/exp/gtz; merging of repeated
 * multiplicative factors into powers.
 */
ExprPtr simplify(const ExprPtr &e);

/**
 * Evaluate a closed expression to a double.
 *
 * @param e Expression with no free symbols (fatal otherwise).
 */
double evalConstant(const ExprPtr &e);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_SIMPLIFY_HH
