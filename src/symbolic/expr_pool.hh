/**
 * @file
 * Hash-consing arena for expression nodes.
 *
 * Every Expr is interned here at construction: the pool keeps one
 * canonical node per structural value, so structurally identical
 * expressions are pointer-identical (GiNaC-style hash consing).  That
 * single invariant is what turns the tree passes of the symbolic
 * stack into DAG passes: Expr::equal degenerates to a pointer check,
 * per-call memo tables can key on node identity, and per-node
 * metadata (free symbols, depth, canonical-form flag) is computed
 * once per unique node instead of once per reference.
 *
 * Threading model: one process-wide pool, sharded 16 ways by
 * structural hash, one mutex per shard.  An intern takes one shard
 * lock for one hash lookup; distinct worker threads building
 * disjoint expressions almost never touch the same shard.  This was
 * chosen over a per-Framework pool because expressions flow freely
 * across Framework, EquationSystem, and compiled-tape boundaries
 * (and between test fixtures); a single identity domain keeps
 * pointer equality globally valid.
 *
 * Ownership: the pool holds a strong reference to every interned
 * node.  Nodes therefore live until purge() explicitly evicts the
 * ones no longer referenced anywhere else.  Strong ownership (rather
 * than weak entries) avoids the classic hash-cons resurrection race
 * and guarantees that destroying any user expression never cascades:
 * a dying parent's children are still pool-held, so destruction is
 * O(1) deep no matter how deep the expression is.
 *
 * Telemetry: "symbolic.intern.hits" / "symbolic.intern.misses"
 * counters and a "symbolic.pool.nodes" gauge (see
 * scripts/metrics_schema.json).
 */

#ifndef AR_SYMBOLIC_EXPR_POOL_HH
#define AR_SYMBOLIC_EXPR_POOL_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/** Process-wide hash-consing arena (see file comment). */
class ExprPool
{
  public:
    /** @return the singleton pool. */
    static ExprPool &global();

    /**
     * Return the canonical node for the given structural value,
     * creating it on first sight.  Children must already be interned
     * (they are, by construction: factories are the only way to make
     * nodes).  NaN constant payloads are canonicalized to one quiet
     * NaN so every NaN constant interns to the same node, matching
     * Expr::compare, which treats all NaNs as equal.
     */
    ExprPtr intern(ExprKind kind, double value, std::string name,
                   std::vector<ExprPtr> ops);

    /** @return number of live unique nodes. */
    std::size_t size() const
    {
        return size_.load(std::memory_order_relaxed);
    }

    /**
     * Evict every node referenced only by the pool itself.  A single
     * sweep in descending node id suffices: ids are assigned
     * monotonically at intern time, so every parent has a larger id
     * than its children and is visited (and possibly evicted,
     * releasing its child references) first.
     *
     * @return number of nodes evicted.
     */
    std::size_t purge();

  private:
    ExprPool() = default;

    /** Memoized free-symbol set for a node under construction. */
    static std::shared_ptr<const std::set<std::string>>
    freeSetOf(ExprKind kind, const std::string &name,
              const std::vector<ExprPtr> &ops);

    static constexpr std::size_t kShards = 16;

    struct Shard
    {
        mutable std::mutex mu;
        /// Structural hash -> nodes with that hash (chains are
        /// almost always length 1).
        std::unordered_map<std::size_t, std::vector<ExprPtr>> chains;
    };

    Shard shards_[kShards];
    std::atomic<std::uint64_t> next_id_{1};
    std::atomic<std::size_t> size_{0};
};

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_EXPR_POOL_HH
