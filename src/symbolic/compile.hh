/**
 * @file
 * Expression compilation ("lamdification", Figure 4 step 3): an
 * expression tree is flattened once into a postorder tape of stack
 * operations with a fixed, sorted argument ordering.  Evaluation is
 * then allocation-free and fast enough for millions of Monte-Carlo
 * trials.
 */

#ifndef AR_SYMBOLIC_COMPILE_HH
#define AR_SYMBOLIC_COMPILE_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "symbolic/expr.hh"
#include "symbolic/workspace.hh"
#include "util/fault.hh"

namespace ar::symbolic
{

/**
 * Outcome of a diagnosed evaluation: the first tape op whose result
 * was non-finite (or whose input violated a domain precondition),
 * classified and labelled with the source subexpression.
 */
struct EvalFault
{
    bool faulted = false;
    ar::util::FaultKind kind = ar::util::FaultKind::Nan;
    std::uint32_t op_index = 0; ///< Tape position of the fault.
    std::string op;             ///< Label of the faulting op.
};

/**
 * One positional argument of a batched evaluation: either a column of
 * per-trial values (SoA layout, one value per trial) or a single
 * value broadcast to every trial.
 */
struct BatchArg
{
    const double *values = nullptr; ///< Column base, or one value.
    bool broadcast = false;         ///< values[0] applies to all trials.
};

/** A compiled, callable form of an expression. */
class CompiledExpr
{
  public:
    /**
     * Compile an expression.  Argument order is the sorted list of
     * free symbol names (the "fixed argument ordering" the paper
     * enforces during lamdification).
     */
    explicit CompiledExpr(const ExprPtr &e);

    /**
     * Evaluate with positional arguments.
     *
     * @param args One value per argName(), in order.
     */
    double eval(std::span<const double> args) const;

    /** eval() drawing scratch from an explicit workspace. */
    double eval(std::span<const double> args, EvalWorkspace &ws) const;

    /**
     * Evaluate a contiguous block of trials in one tape pass.
     *
     * Each tape op runs as one ar::simd kernel call over the block
     * (the scratch is a block x max_stack plane of rows), dispatched
     * to the active SIMD level.  At Level::Scalar the per-trial
     * operation order is identical to eval(), making the results
     * bit-identical to n scalar calls; at vector levels results are
     * deterministic (bit-identical across runs, thread counts, and
     * vector widths) but transcendentals may differ from eval()
     * within the ULP policy of DESIGN.md section 5.6.
     *
     * @param args One BatchArg per argName(), in order; column args
     *        must hold at least @p n values.
     * @param n Number of trials in the block.
     * @param out Receives n results.
     */
    void evalBatch(std::span<const BatchArg> args, std::size_t n,
                   double *out) const;

    /** evalBatch() drawing scratch from an explicit workspace. */
    void evalBatch(std::span<const BatchArg> args, std::size_t n,
                   double *out, EvalWorkspace &ws) const;

    /**
     * Evaluate one trial like eval(), additionally diagnosing the
     * first faulting op: a log of a non-positive value, a negative
     * base under a fractional exponent (sqrt), a zero base under a
     * negative exponent (division by zero), or any op whose result is
     * non-finite (including a non-finite argument, attributed to its
     * PushArg op, i.e. the variable itself).  Evaluation always runs
     * to completion -- the fault may be masked downstream (gtz, max),
     * in which case the returned value is still finite.
     *
     * This is the slow, precise tier of fault containment: engines
     * scan batched outputs for non-finite values (cheap) and call
     * this only for the rare faulting trials to attribute the fault.
     *
     * @param args One value per argName(), in order.
     * @param fault Receives the first fault (reset on entry).
     * @return the evaluation result (possibly non-finite).
     */
    double evalDiagnosed(std::span<const double> args,
                         EvalFault &fault) const;

    /** evalDiagnosed() drawing scratch from an explicit workspace. */
    double evalDiagnosed(std::span<const double> args, EvalFault &fault,
                         EvalWorkspace &ws) const;

    /**
     * @return human-readable label of tape op @p i (the source
     * subexpression it computes, truncated for display).
     */
    const std::string &opLabel(std::size_t i) const;

    /** @return argument names in positional order. */
    const std::vector<std::string> &argNames() const { return args_; }

    /** @return index of a named argument; fatal when absent. */
    std::size_t argIndex(const std::string &name) const;

    /** @return number of tape instructions (diagnostics). */
    std::size_t tapeLength() const { return ops.size(); }

  private:
    enum class OpCode : std::uint8_t
    {
        PushConst,
        PushArg,
        Add,   // pops n, pushes sum
        Mul,   // pops n, pushes product
        Pow,     // pops 2
        Sq,      // x^2 with a literal exponent: top = top * top
        Recip,   // x^-1 with a literal exponent: top = 1.0 / top
        PowHalf, // x^0.5 with a literal exponent (sqrt canonical form)
        Max,   // pops n
        Min,   // pops n
        Log,
        Exp,
        Gtz,
    };

    struct Op
    {
        OpCode code;
        std::uint32_t n = 0;   ///< operand count / argument index
        double value = 0.0;    ///< constant payload
    };

    void emit(const ExprPtr &e);

    std::vector<Op> ops;
    std::vector<std::string> labels; ///< Per-op source labels.
    std::vector<std::string> args_;
    std::size_t max_stack = 0;
};

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_COMPILE_HH
