#include "symbolic/expr.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "symbolic/expr_pool.hh"
#include "util/logging.hh"

namespace ar::symbolic
{

Expr::Expr(ExprKind kind, double value, std::string name,
           std::vector<ExprPtr> ops)
    : kind_(kind), value_(value), name_(std::move(name)),
      ops(std::move(ops))
{
}

ExprPtr
Expr::make(ExprKind kind, double value, std::string name,
           std::vector<ExprPtr> ops)
{
    return ExprPool::global().intern(kind, value, std::move(name),
                                     std::move(ops));
}

double
Expr::value() const
{
    if (kind_ != ExprKind::Constant)
        ar::util::panic("Expr::value on non-constant node");
    return value_;
}

const std::string &
Expr::name() const
{
    if (kind_ != ExprKind::Symbol && kind_ != ExprKind::Func)
        ar::util::panic("Expr::name on node without a name");
    return name_;
}

bool
Expr::isConstant(double v) const
{
    return kind_ == ExprKind::Constant && value_ == v;
}

std::size_t
Expr::countSymbol(const std::string &sym) const
{
    // The memoized free-symbol set answers the common "not present"
    // case without any walk, and prunes whole subDAGs below.
    if (!containsSymbol(sym))
        return 0;
    if (kind_ == ExprKind::Symbol)
        return 1;

    // Iterative post-order with a per-call memo: each unique node is
    // counted once, then its count is reused at every reference, so
    // the tree-occurrence total of a heavily shared DAG costs O(DAG)
    // instead of O(tree).
    std::unordered_map<const Expr *, std::size_t> memo;
    std::vector<const Expr *> stack{this};
    while (!stack.empty()) {
        const Expr *e = stack.back();
        if (memo.count(e)) {
            stack.pop_back();
            continue;
        }
        if (e->kind_ == ExprKind::Symbol) {
            memo.emplace(e, e->name_ == sym ? 1 : 0);
            stack.pop_back();
            continue;
        }
        if (!e->containsSymbol(sym)) {
            memo.emplace(e, 0);
            stack.pop_back();
            continue;
        }
        bool ready = true;
        for (const auto &op : e->ops) {
            if (op->containsSymbol(sym) && !memo.count(op.get())) {
                stack.push_back(op.get());
                ready = false;
            }
        }
        if (!ready)
            continue;
        std::size_t n = 0;
        for (const auto &op : e->ops) {
            if (op->containsSymbol(sym))
                n += memo.at(op.get());
        }
        memo.emplace(e, n);
        stack.pop_back();
    }
    return memo.at(this);
}

int
Expr::compare(const ExprPtr &a, const ExprPtr &b)
{
    // Same total order as the original recursive comparator: (kind,
    // payload, arity, children lexicographically).  The walk is an
    // explicit stack so pathologically deep chains cannot overflow,
    // and every shared (pointer-identical) pair prunes immediately --
    // with interned nodes that makes the cost proportional to the
    // path to the first difference, not to the subtree size.
    std::vector<std::pair<const Expr *, const Expr *>> stack;
    stack.emplace_back(a.get(), b.get());
    while (!stack.empty()) {
        const auto [x, y] = stack.back();
        stack.pop_back();
        if (x == y)
            continue;
        const int kx = static_cast<int>(x->kind_);
        const int ky = static_cast<int>(y->kind_);
        if (kx != ky)
            return kx < ky ? -1 : 1;
        switch (x->kind_) {
          case ExprKind::Constant:
            {
                // NaN constants (from folding out-of-domain
                // arithmetic) must compare equal to themselves so
                // canonicalization and idempotence hold.  (The pool
                // interns all NaNs to one node, so this arm is kept
                // for the +0/-0 pair and future-proofing.)
                const bool x_nan = std::isnan(x->value_);
                const bool y_nan = std::isnan(y->value_);
                if (x_nan || y_nan) {
                    if (x_nan && y_nan)
                        continue;
                    return x_nan ? 1 : -1;
                }
                if (x->value_ != y->value_)
                    return x->value_ < y->value_ ? -1 : 1;
                continue;
            }
          case ExprKind::Symbol:
            {
                if (int c = x->name_.compare(y->name_); c != 0)
                    return c;
                continue;
            }
          case ExprKind::Func:
            if (int c = x->name_.compare(y->name_); c != 0)
                return c;
            break;
          default:
            break;
        }
        if (x->ops.size() != y->ops.size())
            return x->ops.size() < y->ops.size() ? -1 : 1;
        // Children compare left to right: push right to left so the
        // leftmost pair pops first.
        for (std::size_t i = x->ops.size(); i-- > 0;)
            stack.emplace_back(x->ops[i].get(), y->ops[i].get());
    }
    return 0;
}

ExprPtr
Expr::constant(double v)
{
    return make(ExprKind::Constant, v, "", {});
}

ExprPtr
Expr::symbol(const std::string &name)
{
    if (name.empty())
        ar::util::fatal("Expr::symbol: empty name");
    return make(ExprKind::Symbol, 0.0, name, {});
}

namespace
{

/** Flatten same-kind children into the operand list and sort. */
std::vector<ExprPtr>
flattenSorted(ExprKind kind, std::vector<ExprPtr> xs)
{
    std::vector<ExprPtr> flat;
    flat.reserve(xs.size());
    for (auto &x : xs) {
        if (!x)
            ar::util::panic("Expr factory received a null operand");
        if (x->kind() == kind) {
            for (const auto &sub : x->operands())
                flat.push_back(sub);
        } else {
            flat.push_back(std::move(x));
        }
    }
    std::stable_sort(flat.begin(), flat.end(),
                     [](const ExprPtr &a, const ExprPtr &b) {
                         return Expr::compare(a, b) < 0;
                     });
    return flat;
}

} // namespace

ExprPtr
Expr::add(std::vector<ExprPtr> terms)
{
    auto flat = flattenSorted(ExprKind::Add, std::move(terms));
    if (flat.empty())
        return constant(0.0);
    if (flat.size() == 1)
        return flat[0];
    return make(ExprKind::Add, 0.0, "", std::move(flat));
}

ExprPtr
Expr::add(ExprPtr a, ExprPtr b)
{
    return add(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr
Expr::sub(ExprPtr a, ExprPtr b)
{
    return add(std::move(a), neg(std::move(b)));
}

ExprPtr
Expr::mul(std::vector<ExprPtr> factors)
{
    auto flat = flattenSorted(ExprKind::Mul, std::move(factors));
    if (flat.empty())
        return constant(1.0);
    if (flat.size() == 1)
        return flat[0];
    return make(ExprKind::Mul, 0.0, "", std::move(flat));
}

ExprPtr
Expr::mul(ExprPtr a, ExprPtr b)
{
    return mul(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr
Expr::div(ExprPtr a, ExprPtr b)
{
    return mul(std::move(a), pow(std::move(b), constant(-1.0)));
}

ExprPtr
Expr::pow(ExprPtr base, ExprPtr exponent)
{
    if (!base || !exponent)
        ar::util::panic("Expr::pow received a null operand");
    return make(ExprKind::Pow, 0.0, "",
                {std::move(base), std::move(exponent)});
}

ExprPtr
Expr::sqrt(ExprPtr x)
{
    return pow(std::move(x), constant(0.5));
}

ExprPtr
Expr::neg(ExprPtr x)
{
    if (!x)
        ar::util::panic("Expr::neg received a null operand");
    // Fold a negated nonzero constant (see the header for why zeros
    // are excluded).  Negation is exact in IEEE-754, and simplify()
    // folds Mul(-1, c) to the identical constant, so downstream
    // canonical forms are unchanged.
    if (x->isConstant() && !x->isConstant(0.0))
        return constant(-x->value());
    return mul(constant(-1.0), std::move(x));
}

ExprPtr
Expr::max(std::vector<ExprPtr> xs)
{
    auto flat = flattenSorted(ExprKind::Max, std::move(xs));
    if (flat.empty())
        ar::util::fatal("Expr::max: needs at least one operand");
    if (flat.size() == 1)
        return flat[0];
    return make(ExprKind::Max, 0.0, "", std::move(flat));
}

ExprPtr
Expr::min(std::vector<ExprPtr> xs)
{
    auto flat = flattenSorted(ExprKind::Min, std::move(xs));
    if (flat.empty())
        ar::util::fatal("Expr::min: needs at least one operand");
    if (flat.size() == 1)
        return flat[0];
    return make(ExprKind::Min, 0.0, "", std::move(flat));
}

ExprPtr
Expr::func(const std::string &name, ExprPtr arg)
{
    if (name != "log" && name != "exp" && name != "gtz")
        ar::util::fatal("Expr::func: unknown function '", name, "'");
    if (!arg)
        ar::util::panic("Expr::func received a null operand");
    return make(ExprKind::Func, 0.0, name, {std::move(arg)});
}

ExprPtr
operator+(const ExprPtr &a, const ExprPtr &b)
{
    return Expr::add(a, b);
}

ExprPtr
operator-(const ExprPtr &a, const ExprPtr &b)
{
    return Expr::sub(a, b);
}

ExprPtr
operator*(const ExprPtr &a, const ExprPtr &b)
{
    return Expr::mul(a, b);
}

ExprPtr
operator/(const ExprPtr &a, const ExprPtr &b)
{
    return Expr::div(a, b);
}

ExprPtr
operator+(const ExprPtr &a, double b)
{
    return Expr::add(a, Expr::constant(b));
}

ExprPtr
operator-(const ExprPtr &a, double b)
{
    return Expr::sub(a, Expr::constant(b));
}

ExprPtr
operator*(const ExprPtr &a, double b)
{
    return Expr::mul(a, Expr::constant(b));
}

ExprPtr
operator/(const ExprPtr &a, double b)
{
    return Expr::div(a, Expr::constant(b));
}

ExprPtr
operator+(double a, const ExprPtr &b)
{
    return Expr::add(Expr::constant(a), b);
}

ExprPtr
operator-(double a, const ExprPtr &b)
{
    return Expr::sub(Expr::constant(a), b);
}

ExprPtr
operator*(double a, const ExprPtr &b)
{
    return Expr::mul(Expr::constant(a), b);
}

ExprPtr
operator/(double a, const ExprPtr &b)
{
    return Expr::div(Expr::constant(a), b);
}

ExprPtr
operator-(const ExprPtr &a)
{
    return Expr::neg(a);
}

} // namespace ar::symbolic
