#include "symbolic/expr.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ar::symbolic
{

Expr::Expr(ExprKind kind, double value, std::string name,
           std::vector<ExprPtr> ops)
    : kind_(kind), value_(value), name_(std::move(name)),
      ops(std::move(ops))
{
}

ExprPtr
Expr::make(ExprKind kind, double value, std::string name,
           std::vector<ExprPtr> ops)
{
    return ExprPtr(new Expr(kind, value, std::move(name),
                            std::move(ops)));
}

double
Expr::value() const
{
    if (kind_ != ExprKind::Constant)
        ar::util::panic("Expr::value on non-constant node");
    return value_;
}

const std::string &
Expr::name() const
{
    if (kind_ != ExprKind::Symbol && kind_ != ExprKind::Func)
        ar::util::panic("Expr::name on node without a name");
    return name_;
}

bool
Expr::isConstant(double v) const
{
    return kind_ == ExprKind::Constant && value_ == v;
}

std::set<std::string>
Expr::freeSymbols() const
{
    std::set<std::string> out;
    if (kind_ == ExprKind::Symbol) {
        out.insert(name_);
        return out;
    }
    for (const auto &op : ops) {
        auto sub = op->freeSymbols();
        out.insert(sub.begin(), sub.end());
    }
    return out;
}

std::size_t
Expr::countSymbol(const std::string &sym) const
{
    if (kind_ == ExprKind::Symbol)
        return name_ == sym ? 1 : 0;
    std::size_t n = 0;
    for (const auto &op : ops)
        n += op->countSymbol(sym);
    return n;
}

bool
Expr::equal(const ExprPtr &a, const ExprPtr &b)
{
    return compare(a, b) == 0;
}

int
Expr::compare(const ExprPtr &a, const ExprPtr &b)
{
    if (a.get() == b.get())
        return 0;
    const int ka = static_cast<int>(a->kind_);
    const int kb = static_cast<int>(b->kind_);
    if (ka != kb)
        return ka < kb ? -1 : 1;
    switch (a->kind_) {
      case ExprKind::Constant:
        {
            // NaN constants (from folding out-of-domain arithmetic)
            // must compare equal to themselves so canonicalization
            // and idempotence hold.
            const bool a_nan = std::isnan(a->value_);
            const bool b_nan = std::isnan(b->value_);
            if (a_nan || b_nan)
                return a_nan && b_nan ? 0 : (a_nan ? 1 : -1);
            if (a->value_ != b->value_)
                return a->value_ < b->value_ ? -1 : 1;
            return 0;
        }
      case ExprKind::Symbol:
        return a->name_.compare(b->name_);
      case ExprKind::Func:
        if (int c = a->name_.compare(b->name_); c != 0)
            return c;
        break;
      default:
        break;
    }
    if (a->ops.size() != b->ops.size())
        return a->ops.size() < b->ops.size() ? -1 : 1;
    for (std::size_t i = 0; i < a->ops.size(); ++i) {
        if (int c = compare(a->ops[i], b->ops[i]); c != 0)
            return c;
    }
    return 0;
}

ExprPtr
Expr::constant(double v)
{
    return make(ExprKind::Constant, v, "", {});
}

ExprPtr
Expr::symbol(const std::string &name)
{
    if (name.empty())
        ar::util::fatal("Expr::symbol: empty name");
    return make(ExprKind::Symbol, 0.0, name, {});
}

namespace
{

/** Flatten same-kind children into the operand list and sort. */
std::vector<ExprPtr>
flattenSorted(ExprKind kind, std::vector<ExprPtr> xs)
{
    std::vector<ExprPtr> flat;
    flat.reserve(xs.size());
    for (auto &x : xs) {
        if (!x)
            ar::util::panic("Expr factory received a null operand");
        if (x->kind() == kind) {
            for (const auto &sub : x->operands())
                flat.push_back(sub);
        } else {
            flat.push_back(std::move(x));
        }
    }
    std::stable_sort(flat.begin(), flat.end(),
                     [](const ExprPtr &a, const ExprPtr &b) {
                         return Expr::compare(a, b) < 0;
                     });
    return flat;
}

} // namespace

ExprPtr
Expr::add(std::vector<ExprPtr> terms)
{
    auto flat = flattenSorted(ExprKind::Add, std::move(terms));
    if (flat.empty())
        return constant(0.0);
    if (flat.size() == 1)
        return flat[0];
    return make(ExprKind::Add, 0.0, "", std::move(flat));
}

ExprPtr
Expr::add(ExprPtr a, ExprPtr b)
{
    return add(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr
Expr::sub(ExprPtr a, ExprPtr b)
{
    return add(std::move(a), neg(std::move(b)));
}

ExprPtr
Expr::mul(std::vector<ExprPtr> factors)
{
    auto flat = flattenSorted(ExprKind::Mul, std::move(factors));
    if (flat.empty())
        return constant(1.0);
    if (flat.size() == 1)
        return flat[0];
    return make(ExprKind::Mul, 0.0, "", std::move(flat));
}

ExprPtr
Expr::mul(ExprPtr a, ExprPtr b)
{
    return mul(std::vector<ExprPtr>{std::move(a), std::move(b)});
}

ExprPtr
Expr::div(ExprPtr a, ExprPtr b)
{
    return mul(std::move(a), pow(std::move(b), constant(-1.0)));
}

ExprPtr
Expr::pow(ExprPtr base, ExprPtr exponent)
{
    if (!base || !exponent)
        ar::util::panic("Expr::pow received a null operand");
    return make(ExprKind::Pow, 0.0, "",
                {std::move(base), std::move(exponent)});
}

ExprPtr
Expr::sqrt(ExprPtr x)
{
    return pow(std::move(x), constant(0.5));
}

ExprPtr
Expr::neg(ExprPtr x)
{
    return mul(constant(-1.0), std::move(x));
}

ExprPtr
Expr::max(std::vector<ExprPtr> xs)
{
    auto flat = flattenSorted(ExprKind::Max, std::move(xs));
    if (flat.empty())
        ar::util::fatal("Expr::max: needs at least one operand");
    if (flat.size() == 1)
        return flat[0];
    return make(ExprKind::Max, 0.0, "", std::move(flat));
}

ExprPtr
Expr::min(std::vector<ExprPtr> xs)
{
    auto flat = flattenSorted(ExprKind::Min, std::move(xs));
    if (flat.empty())
        ar::util::fatal("Expr::min: needs at least one operand");
    if (flat.size() == 1)
        return flat[0];
    return make(ExprKind::Min, 0.0, "", std::move(flat));
}

ExprPtr
Expr::func(const std::string &name, ExprPtr arg)
{
    if (name != "log" && name != "exp" && name != "gtz")
        ar::util::fatal("Expr::func: unknown function '", name, "'");
    if (!arg)
        ar::util::panic("Expr::func received a null operand");
    return make(ExprKind::Func, 0.0, name, {std::move(arg)});
}

ExprPtr
operator+(const ExprPtr &a, const ExprPtr &b)
{
    return Expr::add(a, b);
}

ExprPtr
operator-(const ExprPtr &a, const ExprPtr &b)
{
    return Expr::sub(a, b);
}

ExprPtr
operator*(const ExprPtr &a, const ExprPtr &b)
{
    return Expr::mul(a, b);
}

ExprPtr
operator/(const ExprPtr &a, const ExprPtr &b)
{
    return Expr::div(a, b);
}

ExprPtr
operator+(const ExprPtr &a, double b)
{
    return Expr::add(a, Expr::constant(b));
}

ExprPtr
operator-(const ExprPtr &a, double b)
{
    return Expr::sub(a, Expr::constant(b));
}

ExprPtr
operator*(const ExprPtr &a, double b)
{
    return Expr::mul(a, Expr::constant(b));
}

ExprPtr
operator/(const ExprPtr &a, double b)
{
    return Expr::div(a, Expr::constant(b));
}

ExprPtr
operator+(double a, const ExprPtr &b)
{
    return Expr::add(Expr::constant(a), b);
}

ExprPtr
operator-(double a, const ExprPtr &b)
{
    return Expr::sub(Expr::constant(a), b);
}

ExprPtr
operator*(double a, const ExprPtr &b)
{
    return Expr::mul(Expr::constant(a), b);
}

ExprPtr
operator/(double a, const ExprPtr &b)
{
    return Expr::div(Expr::constant(a), b);
}

ExprPtr
operator-(const ExprPtr &a)
{
    return Expr::neg(a);
}

} // namespace ar::symbolic
