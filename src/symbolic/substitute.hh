/**
 * @file
 * Symbol substitution.
 */

#ifndef AR_SYMBOLIC_SUBSTITUTE_HH
#define AR_SYMBOLIC_SUBSTITUTE_HH

#include <map>
#include <string>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/** Mapping from symbol names to replacement expressions. */
using Bindings = std::map<std::string, ExprPtr>;

/**
 * Replace every occurrence of the bound symbols and simplify.
 *
 * @param e Expression to rewrite.
 * @param bindings Replacements; symbols not bound stay free.
 */
ExprPtr substitute(const ExprPtr &e, const Bindings &bindings);

/** Convenience: bind symbols to numeric values. */
ExprPtr substitute(const ExprPtr &e,
                   const std::map<std::string, double> &values);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_SUBSTITUTE_HH
