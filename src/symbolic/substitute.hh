/**
 * @file
 * Symbol substitution.
 */

#ifndef AR_SYMBOLIC_SUBSTITUTE_HH
#define AR_SYMBOLIC_SUBSTITUTE_HH

#include <map>
#include <string>

#include "symbolic/expr.hh"

namespace ar::symbolic
{

/** Mapping from symbol names to replacement expressions. */
using Bindings = std::map<std::string, ExprPtr>;

/**
 * Replace every occurrence of the bound symbols and simplify.
 *
 * @param e Expression to rewrite.
 * @param bindings Replacements; symbols not bound stay free.
 */
ExprPtr substitute(const ExprPtr &e, const Bindings &bindings);

/** Convenience: bind symbols to numeric values. */
ExprPtr substitute(const ExprPtr &e,
                   const std::map<std::string, double> &values);

/**
 * Rename free symbols WITHOUT simplifying.
 *
 * Unlike substitute(), which runs the simplifier and may therefore
 * re-fold constants and change evaluation order, this rebuilds the
 * tree through the raw factories only.  When every new name keeps
 * the lexicographic order of the old ones relative to all other
 * symbols in the expression (e.g. appending a suffix that starts
 * with '!', which sorts before every identifier character), the
 * renamed tree has the same shape and operand order as the source,
 * so its compiled tape computes bit-identical values.
 *
 * @param e Expression to rewrite.
 * @param renames Old name to new name; unlisted symbols stay.
 */
ExprPtr renameSymbols(const ExprPtr &e,
                      const std::map<std::string, std::string> &renames);

} // namespace ar::symbolic

#endif // AR_SYMBOLIC_SUBSTITUTE_HH
