#include "symbolic/expr_pool.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "obs/telemetry.hh"

namespace ar::symbolic
{

namespace
{

struct InternMetrics
{
    obs::Counter hits = obs::MetricsRegistry::global().counter(
        "symbolic.intern.hits");
    obs::Counter misses = obs::MetricsRegistry::global().counter(
        "symbolic.intern.misses");
    obs::Gauge nodes =
        obs::MetricsRegistry::global().gauge("symbolic.pool.nodes");
};

InternMetrics &
internMetrics()
{
    static InternMetrics m;
    return m;
}

std::uint64_t
bitsOf(double v)
{
    std::uint64_t b;
    std::memcpy(&b, &v, sizeof b);
    return b;
}

/** FNV-1a over the structural identity of a prospective node. */
std::size_t
hashNode(ExprKind kind, double value, const std::string &name,
         const std::vector<ExprPtr> &ops)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](std::uint64_t w) {
        h ^= w;
        h *= 0x100000001b3ull;
    };
    mix(static_cast<std::uint64_t>(kind) + 1);
    if (kind == ExprKind::Constant)
        mix(bitsOf(value));
    if (!name.empty())
        mix(std::hash<std::string>{}(name));
    for (const auto &op : ops)
        mix(reinterpret_cast<std::uintptr_t>(op.get()));
    return static_cast<std::size_t>(h);
}

/**
 * Structural identity against an interned candidate.  Children are
 * themselves interned, so child comparison is pointer equality;
 * constants compare by bit pattern (NaNs were canonicalized before
 * hashing, and +0.0 / -0.0 stay deliberately distinct nodes).
 */
bool
matches(const Expr &c, ExprKind kind, double value,
        const std::string &name, const std::vector<ExprPtr> &ops)
{
    if (c.kind() != kind)
        return false;
    if (kind == ExprKind::Constant)
        return bitsOf(c.value()) == bitsOf(value);
    if (kind == ExprKind::Symbol || kind == ExprKind::Func) {
        if (c.name() != name)
            return false;
    }
    const auto &cops = c.operands();
    if (cops.size() != ops.size())
        return false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (cops[i].get() != ops[i].get())
            return false;
    }
    return true;
}

using FreeSet = std::shared_ptr<const std::set<std::string>>;

const FreeSet &
emptyFreeSet()
{
    static const FreeSet empty =
        std::make_shared<const std::set<std::string>>();
    return empty;
}

} // namespace

/**
 * Memoized free-symbol set for a node under construction.  Shares a
 * child's set object whenever the union adds nothing to it, which
 * covers the overwhelmingly common shapes (Pow with a constant
 * exponent, Mul with a coefficient, n-ary nodes over one variable).
 */
FreeSet
ExprPool::freeSetOf(ExprKind kind, const std::string &name,
                    const std::vector<ExprPtr> &ops)
{
    if (kind == ExprKind::Symbol)
        return std::make_shared<const std::set<std::string>>(
            std::set<std::string>{name});
    if (ops.empty())
        return emptyFreeSet();

    const FreeSet *first = nullptr;
    bool all_same = true;
    for (const auto &op : ops) {
        const FreeSet &f = op->free_;
        if (f->empty())
            continue;
        if (!first)
            first = &f;
        else if (f != *first)
            all_same = false;
    }
    if (!first)
        return emptyFreeSet();
    if (all_same)
        return *first;

    std::set<std::string> merged;
    const FreeSet *largest = nullptr;
    for (const auto &op : ops) {
        const FreeSet &f = op->free_;
        merged.insert(f->begin(), f->end());
        if (!largest || f->size() > (*largest)->size())
            largest = &f;
    }
    if (merged.size() == (*largest)->size())
        return *largest; // the union IS the largest child's set
    return std::make_shared<const std::set<std::string>>(
        std::move(merged));
}

ExprPool &
ExprPool::global()
{
    static ExprPool pool;
    return pool;
}

ExprPtr
ExprPool::intern(ExprKind kind, double value, std::string name,
                 std::vector<ExprPtr> ops)
{
    // One canonical NaN constant: Expr::compare treats every NaN as
    // equal, so distinct NaN payloads must not produce distinct
    // "equal" nodes.
    if (kind == ExprKind::Constant && std::isnan(value))
        value = std::numeric_limits<double>::quiet_NaN();

    const std::size_t h = hashNode(kind, value, name, ops);
    Shard &shard = shards_[h % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto &chain = shard.chains[h];
    for (const auto &c : chain) {
        if (matches(*c, kind, value, name, ops)) {
            if (obs::metricsEnabled())
                internMetrics().hits.add();
            return c;
        }
    }

    Expr *raw =
        new Expr(kind, value, std::move(name), std::move(ops));
    raw->hash_ = h;
    raw->id_ = next_id_.fetch_add(1, std::memory_order_relaxed);
    std::uint32_t depth = 1;
    for (const auto &op : raw->ops)
        depth = std::max(depth, op->depth_ + 1);
    raw->depth_ = depth;
    raw->free_ = freeSetOf(raw->kind_, raw->name_, raw->ops);

    ExprPtr node(raw);
    chain.push_back(node);
    const std::size_t live =
        size_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (obs::metricsEnabled()) {
        internMetrics().misses.add();
        internMetrics().nodes.set(static_cast<double>(live));
    }
    return node;
}

std::size_t
ExprPool::purge()
{
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(kShards);
    for (auto &shard : shards_)
        locks.emplace_back(shard.mu);

    // Snapshot raw pointers sorted by descending id: every parent
    // precedes its children, so releasing a dying parent's operand
    // references happens before those children are examined, and one
    // sweep evicts entire dead subDAGs.
    struct Ref
    {
        std::uint64_t id;
        Shard *shard;
        std::size_t hash;
        const Expr *node;
    };
    std::vector<Ref> refs;
    refs.reserve(size_.load(std::memory_order_relaxed));
    for (auto &shard : shards_) {
        for (const auto &[hash, chain] : shard.chains) {
            for (const auto &c : chain)
                refs.push_back({c->id(), &shard, hash, c.get()});
        }
    }
    std::sort(refs.begin(), refs.end(),
              [](const Ref &a, const Ref &b) { return a.id > b.id; });

    std::size_t evicted = 0;
    for (const auto &ref : refs) {
        auto chain_it = ref.shard->chains.find(ref.hash);
        auto &chain = chain_it->second;
        for (auto it = chain.begin(); it != chain.end(); ++it) {
            if (it->get() != ref.node)
                continue;
            // use_count() == 1 means the pool holds the only
            // reference: with every shard locked, nobody can copy it
            // concurrently, so eviction is race-free.
            if (it->use_count() == 1) {
                chain.erase(it);
                ++evicted;
            }
            break;
        }
        if (chain.empty())
            ref.shard->chains.erase(chain_it);
    }
    const std::size_t live =
        size_.fetch_sub(evicted, std::memory_order_relaxed) - evicted;
    if (obs::metricsEnabled())
        internMetrics().nodes.set(static_cast<double>(live));
    return evicted;
}

} // namespace ar::symbolic
